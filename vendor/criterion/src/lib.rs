//! Vendored mini stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, `Criterion`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, `BatchSize` and
//! `Throughput` — enough to compile and run the workspace's benches offline.
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until the configured measurement time elapses, reporting mean ns/iter
//! (no statistics, plots or regression history).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Hints how expensive batched inputs are to set up. All variants behave the
/// same in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declares how many logical items one iteration processes, for ops/s-style
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the time budget for measuring each benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up time before measuring.
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, None, name, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the logical throughput of one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut config = self.criterion.clone();
        if let Some(samples) = self.sample_size {
            config.sample_size = samples;
        }
        run_one(&config, self.throughput, name, f);
        self
    }

    /// Finishes the group (no-op; reports are printed eagerly).
    pub fn finish(&mut self) {}
}

fn run_one<F>(config: &Criterion, throughput: Option<Throughput>, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        deadline: Instant::now() + config.warm_up_time,
        max_samples: config.sample_size,
        samples: Vec::new(),
        warmup: true,
    };
    // Warm-up pass: run the closure without recording.
    f(&mut bencher);
    // Measurement pass.
    bencher.warmup = false;
    bencher.deadline = Instant::now() + config.measurement_time;
    bencher.samples.clear();
    f(&mut bencher);

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("  {name}: no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mean_ns = mean.as_nanos();
    match throughput {
        Some(Throughput::Bytes(bytes)) if mean_ns > 0 => {
            let rate = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            println!(
                "  {name}: {mean_ns} ns/iter ({rate:.1} MiB/s, {} samples)",
                samples.len()
            );
        }
        Some(Throughput::Elements(elements)) if mean_ns > 0 => {
            let rate = elements as f64 / mean.as_secs_f64();
            println!(
                "  {name}: {mean_ns} ns/iter ({rate:.0} elem/s, {} samples)",
                samples.len()
            );
        }
        _ => println!("  {name}: {mean_ns} ns/iter ({} samples)", samples.len()),
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    deadline: Instant,
    max_samples: usize,
    samples: Vec<Duration>,
    warmup: bool,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.warmup {
            // One warm-up iteration is enough for the shim.
            black_box(routine());
            return;
        }
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline || self.samples.len() >= self.max_samples {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.warmup {
            black_box(routine(setup()));
            return;
        }
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline || self.samples.len() >= self.max_samples {
                break;
            }
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group binding a configuration to target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut group = criterion.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut criterion = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        criterion.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
