//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! re-implements the (small) subset of the `parking_lot` API the workspace
//! uses on top of `std::sync`.  Semantics match `parking_lot` where the
//! workspace depends on them: `lock()` never returns a poison error (a
//! poisoned lock is recovered transparently) and `Condvar` operates on this
//! module's `MutexGuard`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait`] / [`Condvar::wait_for`], which need to move the std
/// guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard vacated")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard vacated")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread. Returns whether a thread may have been woken.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads. The count of woken threads is not tracked.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    /// Atomically releases the guard's mutex and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard vacated");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard vacated");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_wakeup_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait_for(&mut ready, Duration::from_millis(50));
        }
        handle.join().unwrap();
        assert!(*ready);
    }
}
