//! Vendored stand-in for the `bytes` crate.
//!
//! Implements cheaply-cloneable immutable byte buffers ([`Bytes`]) backed by
//! an `Arc<[u8]>` plus a window, and a growable builder ([`BytesMut`]).  Only
//! the API surface the workspace uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a static slice (copied; the shim does not keep
    /// the `'static` reference, which only costs an allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length of the byte window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a new `Bytes` sharing the same backing storage, restricted to
    /// `range` (interpreted relative to this window).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the window into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let len = vec.len();
        Bytes {
            data: Arc::from(vec),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.vec.push(byte);
    }

    /// Length of the buffer.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[1], 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_shares_storage_and_windows() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = a.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
    }

    #[test]
    fn bytes_mut_freeze_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.put_u8(b'c');
        assert_eq!(m.len(), 3);
        assert_eq!(&m.freeze()[..], b"abc");
    }
}
