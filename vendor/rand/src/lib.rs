//! Vendored stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`thread_rng`].  `StdRng` is a xoshiro256++ generator seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for the
//! simulation/workload purposes this workspace uses it for.  It makes no
//! cryptographic claims (neither does the workspace: key material uses it
//! only via `thread_rng()` for test keys and nonces).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // 128-bit multiply-shift keeps the modulo bias below 2^-64.
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                self.start + draw as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                start + draw as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding a `u64` through SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, slot) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *slot = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// A lazily-seeded per-thread generator handle.
pub struct ThreadRng {
    inner: rngs::StdRng,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// Returns a generator seeded from environmental entropy (time, thread id,
/// ASLR). Not cryptographically secure; sufficient for test keys and nonces.
pub fn thread_rng() -> ThreadRng {
    use std::hash::{BuildHasher, Hash, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};

    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // RandomState carries process-level entropy; thread id separates threads.
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    std::thread::current().id().hash(&mut hasher);
    nanos.hash(&mut hasher);
    let seed = hasher.finish() ^ nanos.rotate_left(32);
    ThreadRng {
        inner: SeedableRng::seed_from_u64(seed),
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let matches = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(matches < 4);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &count in &counts {
            assert!((700..1300).contains(&count), "skewed bucket: {count}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_produces_distinct_streams() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }
}
