//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided: a
//! multi-producer multi-consumer unbounded channel built on a mutexed
//! `VecDeque` plus a condvar.  Receivers observe disconnection once every
//! sender has been dropped and the queue has drained — the semantics the
//! ORAM worker pool relies on for shutdown.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    ///
    /// This shim never produces it (receivers are never tracked) but the
    /// type exists so `send(..)` call sites type-check against the real API.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.push_back(value);
            drop(queue);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all receivers so they observe the
                // disconnection.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        /// Returns `Err(RecvError)` once empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_cross_threads_in_order_per_sender() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            tx.send(7).unwrap();
            tx.send(8).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![7, 8]);
        }
    }
}
