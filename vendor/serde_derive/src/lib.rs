//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace only uses serde derives as forward-looking annotations on
//! configuration types; nothing serializes them yet (on-storage encodings use
//! hand-rolled codecs).  With no network access to vendor real serde, these
//! derives expand to nothing, which type-checks everywhere the annotations
//! appear while adding zero behavior.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same position as serde's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the same position as serde's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
