//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = TestRng::from_seed(4);
        let strategy = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::from_seed(5);
        let strategy = vec(vec((any::<u8>(), any::<bool>()), 0..3), 1..4);
        let outer = strategy.sample(&mut rng);
        assert!(!outer.is_empty() && outer.len() < 4);
        for inner in outer {
            assert!(inner.len() < 3);
        }
    }
}
