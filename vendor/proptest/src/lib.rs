//! Vendored mini re-implementation of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! subset of proptest the workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, [`Strategy`] with `prop_map`,
//! range / tuple / [`Just`] / [`any`] strategies, `prop::collection::vec`,
//! [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! case number and seed instead of a minimized input) and derandomization is
//! per-test-name deterministic rather than persisted to a regressions file.

#![forbid(unsafe_code)]

use std::fmt;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Controls how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: no shrinking means failures are
        // only as readable as their inputs, and the workspace's properties
        // are integration-heavy.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

impl From<String> for TestCaseError {
    fn from(reason: String) -> Self {
        TestCaseError::Fail(reason)
    }
}

impl From<&str> for TestCaseError {
    fn from(reason: &str) -> Self {
        TestCaseError::Fail(reason.to_string())
    }
}

/// The deterministic generator strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seeds a generator from an arbitrary label (typically the test name),
    /// so every test owns an independent, reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0x0B1A_D150_1D57_EED5 ^ label.len() as u64;
        for byte in label.bytes() {
            seed = seed.rotate_left(7) ^ byte as u64;
            seed = seed.wrapping_mul(0x100_0000_01B3);
        }
        TestRng::from_seed(seed)
    }

    /// Seeds a generator from a `u64` (SplitMix64 expansion).
    pub fn from_seed(mut seed: u64) -> Self {
        let mut state = [0u64; 4];
        for slot in &mut state {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if state == [0, 0, 0, 0] {
            state[0] = 1;
        }
        TestRng { state }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Everything the generated tests and call sites need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
    // Lets call sites write `prop::collection::vec(...)` as with real
    // proptest, whose prelude exposes the crate under the alias `prop`.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut executed = 0u32;
                let mut attempts = 0u32;
                while executed < config.cases && attempts < config.cases.saturating_mul(8).max(16) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                            panic!(
                                "property {} failed at case {} of {}: {}",
                                stringify!($name),
                                executed,
                                config.cases,
                                reason
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports a proptest case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case (it is re-drawn) when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
