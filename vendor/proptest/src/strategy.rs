//! Strategies: composable descriptions of how to generate random values.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the same value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (full bit-range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + rng.below(span + 1) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-4i64..4).sample(&mut rng);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::from_seed(2);
        let strategy = crate::prop_oneof![
            (0u8..10).prop_map(|v| v as u64),
            Just(99u64),
            any::<bool>().prop_map(|b| b as u64),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!(v < 10 || v == 99 || v <= 1);
            saw_just |= v == 99;
        }
        assert!(saw_just, "one-of should visit every arm eventually");
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::from_seed(3);
        let (a, b) = (any::<u8>(), 5u64..6).sample(&mut rng);
        let _: u8 = a;
        assert_eq!(b, 5);
    }
}
