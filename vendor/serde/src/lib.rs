//! Vendored stand-in for the `serde` crate.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros (see
//! `serde_derive` in this vendor tree) plus empty marker traits of the same
//! names, so both `#[derive(Serialize)]` and `T: Serialize` bounds compile.
//! No serialization machinery exists — the workspace's durable formats use
//! hand-rolled codecs.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
