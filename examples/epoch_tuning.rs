//! Epoch tuning: why §6.4 sizes batches and epochs per application.
//!
//! The paper's Figure 10f shows that applications are very sensitive to the
//! epoch configuration: too few read batches and transactions cannot finish
//! their read chains (they abort repeatedly); too large an epoch and the
//! system sits idle waiting for batch timers, inflating latency.  This
//! example runs the same small read-modify-write workload under three
//! configurations and prints the resulting throughput, latency and abort
//! rate so the trade-off is visible end to end.
//!
//! Run with: `cargo run --release --example epoch_tuning`

use obladi::common::rng::DetRng;
use obladi::prelude::*;
use std::time::{Duration, Instant};

/// One configuration under test.
struct Tuning {
    label: &'static str,
    read_batches: u32,
    read_batch_size: usize,
    batch_interval: Duration,
}

/// A transaction that reads two dependent keys then updates one of them —
/// it needs at least two read batches to complete.
fn run_one(db: &ObladiDb, rng: &mut DetRng) -> Result<bool> {
    let first = rng.below(256);
    let mut txn = db.begin()?;
    let head = match txn.read(first) {
        Ok(value) => value,
        Err(_) => {
            txn.rollback();
            return Ok(false);
        }
    };
    // The second key depends on the first value (a pointer chase).
    let second = head
        .and_then(|v| v.first().copied())
        .map(|b| b as u64)
        .unwrap_or(first)
        % 256;
    if txn.read(second).is_err() {
        txn.rollback();
        return Ok(false);
    }
    if txn.write(second, vec![rng.below(250) as u8; 16]).is_err() {
        txn.rollback();
        return Ok(false);
    }
    Ok(txn.commit()?.is_committed())
}

fn run_tuning(tuning: &Tuning) -> Result<()> {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = tuning.read_batches;
    config.epoch.read_batch_size = tuning.read_batch_size;
    config.epoch.write_batch_size = 64;
    config.epoch.batch_interval = tuning.batch_interval;
    let db = ObladiDb::open(config)?;

    // Preload.
    for chunk in (0..256u64).collect::<Vec<_>>().chunks(32) {
        let mut txn = db.begin()?;
        for &k in chunk {
            txn.write(k, vec![(k % 250) as u8; 16])?;
        }
        txn.commit()?;
    }

    let mut rng = DetRng::new(7);
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latencies = Vec::new();
    let window = Duration::from_millis(1500);
    let start = Instant::now();
    while start.elapsed() < window {
        let txn_start = Instant::now();
        match run_one(&db, &mut rng) {
            Ok(true) => {
                committed += 1;
                latencies.push(txn_start.elapsed().as_secs_f64() * 1000.0);
            }
            Ok(false) => aborted += 1,
            Err(err) if err.is_retryable() => aborted += 1,
            Err(err) => return Err(err),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mean_latency = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let abort_rate = aborted as f64 / (committed + aborted).max(1) as f64;
    println!(
        "{:<28} {:>10.1} txn/s {:>10.1} ms latency {:>8.2} abort rate ({} epochs)",
        tuning.label,
        committed as f64 / elapsed,
        mean_latency,
        abort_rate,
        db.stats().epochs,
    );
    db.shutdown();
    Ok(())
}

fn main() -> Result<()> {
    println!("pointer-chasing workload (2 dependent reads + 1 write per transaction)\n");
    let tunings = [
        Tuning {
            label: "starved (R = 1)",
            read_batches: 1,
            read_batch_size: 32,
            batch_interval: Duration::from_millis(2),
        },
        Tuning {
            label: "balanced (R = 3)",
            read_batches: 3,
            read_batch_size: 32,
            batch_interval: Duration::from_millis(2),
        },
        Tuning {
            label: "oversized epoch (R = 12)",
            read_batches: 12,
            read_batch_size: 32,
            batch_interval: Duration::from_millis(8),
        },
    ];
    for tuning in &tunings {
        run_tuning(tuning)?;
    }
    println!(
        "\nwith a single read batch the pointer chase almost never finishes (nearly every \
         transaction aborts); with an oversized epoch the same work commits \
         but each transaction waits for a long epoch to close, inflating latency"
    );
    Ok(())
}
