//! Crash a proxy mid-epoch and recover it (§8).
//!
//! Demonstrates epoch fate sharing: everything the application was told had
//! committed survives the crash; everything in the doomed epoch disappears;
//! and recovery replays the aborted epoch's read paths so the storage server
//! observes a deterministic pattern.
//!
//! Run with: `cargo run --example crash_recovery`

use obladi::prelude::*;
use std::time::Duration;

fn main() -> Result<()> {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 32;
    config.epoch.batch_interval = Duration::from_millis(2);
    config.epoch.checkpoint_every = 4;
    let db = ObladiDb::open(config)?;

    // Phase 1: commit some durable state.
    for account in 0..10u64 {
        let mut txn = db.begin()?;
        txn.write(account, format!("balance:{}", 100 * account).into_bytes())?;
        let outcome = txn.commit()?;
        assert!(outcome.is_committed());
    }
    println!("committed 10 account records across several epochs");

    // Phase 2: leave a transaction in flight and crash the proxy.
    let mut doomed = db.begin()?;
    doomed.write(999, b"this write must not survive".to_vec())?;
    println!("proxy crash! (volatile state dropped: version cache, stash, position map)");
    db.crash();
    let outcome = doomed.commit()?;
    println!("in-flight transaction outcome after crash: {outcome:?}");

    // Phase 3: recover from the write-ahead log + checkpoints.
    let report = db.recover()?;
    println!(
        "recovered to epoch {} in {:.1} ms (network {:.1} ms, position map {:.1} ms, \
         permutations {:.1} ms, path replay {:.1} ms, {} reads replayed)",
        report.recovered_epoch,
        report.total_ms,
        report.network_ms,
        report.position_ms,
        report.permutation_ms,
        report.paths_ms,
        report.reads_replayed,
    );

    // Phase 4: verify durability and atomicity.  A single closed-loop
    // client advances roughly one dependent read per batch, so one
    // transaction cannot chain 11 fresh reads through a 3-batch epoch
    // (§6.4) — each account is checked in its own (retried) transaction.
    for account in 0..10u64 {
        let value = db
            .execute_with_retries(10, &mut |txn| txn.read(account))?
            .expect("committed balance lost!");
        assert_eq!(value, format!("balance:{}", 100 * account).into_bytes());
    }
    let ghost = db.execute_with_retries(10, &mut |txn| txn.read(999))?;
    println!("all 10 committed balances survived; uncommitted key 999 = {ghost:?}");
    println!("epoch fate sharing held: committed epochs are durable, the doomed epoch vanished");

    db.shutdown();
    Ok(())
}
