//! Quickstart: open an Obladi database, run a few transactions, observe
//! delayed visibility and what the storage server gets to see.
//!
//! Run with: `cargo run --example quickstart`

use obladi::prelude::*;
use std::time::Duration;

fn main() -> Result<()> {
    // Configure a small deployment: a 4K-object ORAM over a simulated
    // low-latency storage server, with short epochs so the example is snappy.
    let mut config = ObladiConfig::small_for_tests(4_096);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 32;
    config.epoch.batch_interval = Duration::from_millis(2);
    config.backend = BackendKind::Server;

    let db = ObladiDb::open(config)?;
    println!("opened Obladi proxy (epochs of 3 read batches + 1 write batch)");

    // --- A simple read-modify-write transaction. ---
    let mut txn = db.begin()?;
    let before = txn.read(42)?;
    println!("key 42 before: {before:?}");
    txn.write(42, b"hello, oblivious world".to_vec())?;
    let outcome = txn.commit()?;
    println!("first transaction outcome: {outcome:?}");

    // --- The write is visible to later transactions. ---
    let mut txn = db.begin()?;
    let value = txn.read(42)?;
    println!(
        "key 42 after commit: {:?}",
        value.as_deref().map(String::from_utf8_lossy)
    );
    txn.commit()?;

    // --- Concurrent transactions within one epoch see each other's
    //     uncommitted writes (MVTSO), and commit together at the epoch end.
    let mut writer = db.begin()?;
    writer.write(7, b"uncommitted".to_vec())?;
    let mut reader = db.begin()?;
    let observed = reader.read(7)?;
    println!(
        "concurrent reader observed: {:?}",
        observed.as_deref().map(String::from_utf8_lossy)
    );
    let (w, r) = (writer.commit()?, reader.commit()?);
    println!("writer: {w:?}, reader: {r:?}");

    // --- What did the adversary (the storage server) actually see? ---
    let stats = db.stats();
    let store_stats = db.store().stats();
    println!();
    println!("proxy statistics:");
    println!("  epochs completed      : {}", stats.epochs);
    println!("  transactions committed: {}", stats.committed);
    println!("  real read slots       : {}", stats.real_reads);
    println!("  padded read slots     : {}", stats.padded_reads);
    println!("untrusted storage observed:");
    println!("  slot reads    : {}", store_stats.slot_reads);
    println!("  bucket writes : {}", store_stats.bucket_writes);
    println!(
        "  bytes moved   : {:.1} KiB",
        store_stats.total_bytes() as f64 / 1024.0
    );
    println!();
    println!(
        "note: every batch is padded to a fixed size, so these numbers do not \
         depend on which keys the transactions above touched"
    );

    db.shutdown();
    Ok(())
}
