//! SmallBank on Obladi vs the NoPriv baseline.
//!
//! Runs the same banking workload on the oblivious proxy and on the
//! non-private baseline (same concurrency control, plain storage) and
//! prints the throughput/latency gap — a miniature version of Figure 9.
//!
//! Run with: `cargo run --release --example banking`

use obladi::prelude::*;
use obladi::workloads::{run_closed_loop, SmallBankConfig, SmallBankWorkload, Workload};
use obladi_common::config::BackendKind;
use obladi_common::latency::LatencyProfile;
use obladi_storage::{InMemoryStore, LatencyStore};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_accounts: 200,
        hotspot_fraction: 0.1,
        hotspot_probability: 0.25,
    });
    let duration = Duration::from_secs(2);
    let clients = 16;

    // --- Obladi over a simulated 0.3 ms storage server. ---
    let mut config = ObladiConfig::small_for_tests(4_096);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 48;
    config.epoch.write_batch_size = 96;
    config.epoch.batch_interval = Duration::from_millis(3);
    config.epoch.executor_threads = 16;
    config.backend = BackendKind::Server;
    config.latency_scale = 0.05;
    let obladi = ObladiDb::open(config)?;
    workload.setup(&obladi)?;
    let obladi_stats = run_closed_loop(&obladi, &workload, clients, duration, 1);
    obladi.shutdown();

    // --- NoPriv over the same storage latency profile. ---
    let profile = LatencyProfile::for_backend(BackendKind::Server).scaled(0.05);
    let store = Arc::new(LatencyStore::new(
        Arc::new(InMemoryStore::new()),
        profile,
        1,
    ));
    let nopriv = NoPrivDb::new(store);
    workload.setup(&nopriv)?;
    let nopriv_stats = run_closed_loop(&nopriv, &workload, clients, duration, 1);

    println!("SmallBank, {clients} closed-loop clients, {duration:?} measurement window");
    println!(
        "  Obladi : {:>9.1} txn/s, mean latency {:>7.2} ms, {:.1}% aborts",
        obladi_stats.throughput(),
        obladi_stats.latency.mean().as_secs_f64() * 1000.0,
        obladi_stats.abort_rate() * 100.0
    );
    println!(
        "  NoPriv : {:>9.1} txn/s, mean latency {:>7.2} ms, {:.1}% aborts",
        nopriv_stats.throughput(),
        nopriv_stats.latency.mean().as_secs_f64() * 1000.0,
        nopriv_stats.abort_rate() * 100.0
    );
    if obladi_stats.throughput() > 0.0 {
        println!(
            "  privacy cost: {:.1}x throughput, {:.1}x latency",
            nopriv_stats.throughput() / obladi_stats.throughput(),
            (obladi_stats.latency.mean().as_secs_f64()
                / nopriv_stats.latency.mean().as_secs_f64().max(1e-9))
        );
    }
    println!();
    println!(
        "Obladi pays with latency (commits wait for the epoch boundary) and some \
         throughput; in exchange the storage provider learns nothing about which \
         accounts move money."
    );
    Ok(())
}
