//! A miniature electronic-health-record service on Obladi.
//!
//! This is the paper's motivating scenario (§1): a medical practice keeps
//! its records in the cloud, but access patterns — *which* patient chart is
//! opened, *how often* a patient shows up for chemotherapy — are themselves
//! sensitive.  The example runs the FreeHealth-style workload on Obladi and
//! shows that the storage trace is indistinguishable between two very
//! different clinical days.
//!
//! Run with: `cargo run --example medical_records`

use obladi::prelude::*;
use obladi::workloads::{FreeHealthConfig, FreeHealthTxn, FreeHealthWorkload};
use obladi_common::rng::DetRng;
use std::time::Duration;

fn open_clinic(seed: u64) -> Result<(ObladiDb, FreeHealthWorkload)> {
    let workload = FreeHealthWorkload::new(FreeHealthConfig {
        users: 4,
        patients: 64,
        drugs: 32,
        episodes_per_patient: 1,
        list_limit: 3,
    });
    let mut config = ObladiConfig::small_for_tests(8_192);
    // FreeHealth rows (a handful of u64 fields plus framing) need more room
    // than the 32-byte test default; a too-small block fails the write-back
    // and fate-shares the epoch into a crash.
    config.oram.block_size = 160;
    config.epoch.read_batches = 4;
    config.epoch.read_batch_size = 32;
    config.epoch.write_batch_size = 64;
    config.epoch.batch_interval = Duration::from_millis(2);
    config.seed = seed;
    let db = ObladiDb::open(config)?;
    workload.setup(&db)?;
    // Reset storage counters so we only measure the "clinical day".
    db.store().reset_stats();
    Ok((db, workload))
}

use obladi::workloads::Workload;

fn run_day(db: &ObladiDb, workload: &FreeHealthWorkload, day: &[(FreeHealthTxn, u32)], seed: u64) {
    let mut rng = DetRng::new(seed);
    for (kind, count) in day {
        for _ in 0..*count {
            // Retry aborted transactions, as a clinical front-end would.
            for _ in 0..5 {
                match workload.run_txn(db, *kind, &mut rng) {
                    Ok(true) => break,
                    Ok(false) => continue,
                    Err(err) => {
                        eprintln!("transaction error: {err}");
                        break;
                    }
                }
            }
        }
    }
}

fn main() -> Result<()> {
    // Day A: an ordinary clinic day — mostly lookups, a few new episodes.
    let day_a: Vec<(FreeHealthTxn, u32)> = vec![
        (FreeHealthTxn::PatientSummary, 12),
        (FreeHealthTxn::ListEpisodes, 8),
        (FreeHealthTxn::CreateEpisode, 4),
        (FreeHealthTxn::CreatePrescription, 3),
        (FreeHealthTxn::CheckDrugInteractions, 3),
    ];
    // Day B: one oncology patient visited repeatedly — exactly the kind of
    // frequency pattern the paper argues must stay hidden.
    let day_b: Vec<(FreeHealthTxn, u32)> = vec![
        (FreeHealthTxn::ReadEpisodeContents, 20),
        (FreeHealthTxn::CreateEpisode, 8),
        (FreeHealthTxn::PrescribeWithInteractionCheck, 2),
    ];

    let mut observations = Vec::new();
    for (label, day) in [("ordinary day", &day_a), ("chemo-heavy day", &day_b)] {
        let (db, workload) = open_clinic(7)?;
        run_day(&db, &workload, day, 99);
        let store = db.store().stats();
        let proxy = db.stats();
        println!(
            "{label:>16}: {} txns committed, storage saw {} slot reads / {} bucket writes \
             across {} epochs",
            proxy.committed, store.slot_reads, store.bucket_writes, proxy.epochs,
        );
        observations.push((store.slot_reads, proxy.epochs));
        db.shutdown();
    }

    println!();
    println!(
        "The storage trace is a fixed rhythm of padded batches: per-epoch request \
         counts are identical across the two days ({} vs {} slot reads per epoch), \
         so the provider cannot tell the chemotherapy schedule from an ordinary day.",
        observations[0].0 / observations[0].1.max(1),
        observations[1].0 / observations[1].1.max(1),
    );
    Ok(())
}
