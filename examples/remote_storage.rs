//! Out-of-process untrusted storage: the proxy on one side of a socket,
//! `obladi-stored` daemons on the other.
//!
//! The paper's trust split — a trusted proxy, untrusted cloud storage
//! across a network — becomes physical here:
//!
//! 1. open a 2-shard deployment with `StorageBackend::RemoteSpawned`: each
//!    shard's ORAM pipeline talks framed, pipelined RPC to its own spawned
//!    storage daemon;
//! 2. commit transactions through the front door and read them back —
//!    every bucket, checkpoint and WAL record is crossing a socket;
//! 3. `kill -9` one shard's daemon, watch the shard fate-share into a
//!    crash while the other keeps serving, respawn the daemon (its op-log
//!    replays), recover the shard, and verify nothing acknowledged
//!    was lost;
//! 4. shut everything down cleanly (the daemons exit on request).
//!
//! Needs the daemon binary: `cargo build --release -p obladi-transport`
//! first (or let the fallback message tell you).  Run with
//! `cargo run --release --example remote_storage`.

use obladi::common::config::StorageBackend;
use obladi::prelude::*;
use std::time::{Duration, Instant};

fn must_commit(db: &ShardedDb, body: &mut dyn FnMut(&mut ShardedTxn<'_>) -> Result<()>) {
    let mut jitter = obladi::common::rng::DetRng::new(0x5eed_50cc);
    for attempt in 0..200 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(1 + jitter.below(8)));
        }
        let mut txn = db.begin().expect("front door refused a transaction");
        match body(&mut txn) {
            Ok(()) => {}
            Err(err) if err.is_retryable() => continue,
            Err(err) => panic!("transaction failed: {err}"),
        }
        match txn.commit() {
            Ok(outcome) if outcome.is_committed() => return,
            Ok(_) => continue,
            Err(err) if err.is_retryable() => continue,
            Err(err) => panic!("commit failed: {err}"),
        }
    }
    panic!("transaction kept aborting");
}

fn read_back(db: &ShardedDb, key: Key) -> Option<Value> {
    let mut result = None;
    must_commit(db, &mut |txn| {
        result = txn.read(key)?;
        Ok(())
    });
    result
}

fn main() {
    // ---- 1. Spawn the deployment: 2 shards, 2 storage daemons. ----
    let mut config =
        ShardConfig::small_for_tests(2, 1_024).with_storage(StorageBackend::RemoteSpawned);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    let db = match ShardedDb::open(config) {
        Ok(db) => db,
        Err(err) => {
            eprintln!("could not open a RemoteSpawned deployment: {err}");
            eprintln!("hint: build the daemon first with `cargo build -p obladi-transport`");
            std::process::exit(1);
        }
    };
    println!(
        "opened {} shards with {} storage, each against its own obladi-stored daemon:",
        db.shards(),
        db.config().storage.name()
    );
    for shard in 0..db.shards() {
        println!(
            "  shard {shard}: storage daemon pid {}",
            db.storage_daemon_pid(shard).expect("daemon running")
        );
    }

    // ---- 2. Ordinary transactions; all storage I/O crosses sockets. ----
    for key in 0..8u64 {
        must_commit(&db, &mut |txn| {
            txn.write(key, format!("value-{key}").into_bytes())
        });
    }
    assert_eq!(read_back(&db, 3), Some(b"value-3".to_vec()));
    println!("committed and read back 8 keys across the socket boundary");

    // ---- 3. kill -9 one shard's daemon; recover; nothing is lost. ----
    let victim = 0usize;
    let pid = db.storage_daemon_pid(victim).unwrap();
    db.kill_shard_storage(victim).expect("SIGKILL failed");
    println!("killed shard {victim}'s storage daemon (pid {pid}) with SIGKILL");

    // The shard's next storage operation fails and the proxy fate-shares
    // into a crash; poke it with traffic until that lands.
    let deadline = Instant::now() + Duration::from_secs(20);
    while !db.is_shard_crashed(victim) {
        if Instant::now() > deadline {
            panic!("shard never fate-shared the daemon kill");
        }
        std::thread::sleep(Duration::from_millis(5));
        let Ok(mut txn) = db.begin() else { continue };
        for key in 0..8u64 {
            let _ = txn.read(key);
        }
        let _ = txn.commit();
    }
    println!("shard {victim} fate-shared the storage loss into a crash; respawning its daemon");

    db.respawn_shard_storage(victim).expect("respawn failed");
    let new_pid = db.storage_daemon_pid(victim).unwrap();
    assert_ne!(pid, new_pid);
    let report = db.recover_shard(victim).expect("recovery failed");
    println!(
        "daemon respawned as pid {new_pid}; WAL recovery replayed {} epochs",
        report.epochs_replayed
    );

    for key in 0..8u64 {
        assert_eq!(
            read_back(&db, key),
            Some(format!("value-{key}").into_bytes()),
            "key {key} lost across the kill"
        );
    }
    println!("all 8 committed values survived the kill -9");

    // ---- 4. What the transport saw: the socket story in numbers. ----
    // Every RemoteStore feeds the global metrics registry, so the whole
    // kill/respawn episode is visible without plumbing stats by hand.
    let snapshot = obladi::obs::global().snapshot();
    println!("\ntransport counters across the episode:");
    println!("  requests:   {}", snapshot.counter("remote.requests"));
    println!("  responses:  {}", snapshot.counter("remote.responses"));
    println!("  flushes:    {}", snapshot.counter("remote.flushes"));
    println!("  reconnects: {}", snapshot.counter("remote.reconnects"));
    println!("  bytes tx:   {}", snapshot.counter("remote.bytes_tx"));
    println!("  bytes rx:   {}", snapshot.counter("remote.bytes_rx"));
    if let Some(batch) = snapshot.histogram("remote.batch_per_flush") {
        println!(
            "  requests per flush: p50={} p99={} (pipelining depth the \
             writer thread achieved)",
            batch.p50(),
            batch.p99()
        );
    }
    assert!(
        snapshot.counter("remote.reconnects") >= 1,
        "the respawn must have shown up as a transport reconnect"
    );

    // ---- 5. Clean shutdown: daemons exit on request. ----
    db.shutdown();
    println!("deployment and daemons shut down cleanly");
}
