//! Integrity audit: what happens when the storage server turns malicious.
//!
//! Appendix A of the paper extends Obladi from an honest-but-curious server
//! to a fully malicious one: every block is encrypted and MACed with a
//! binding to its location and freshness counter, so the worst a misbehaving
//! server can do is deny service.  This example stages that attack:
//!
//! 1. a medical-records-style working set is committed while the server is
//!    honest;
//! 2. the server starts corrupting every block it returns — transactions
//!    abort, none of them observes tampered bytes;
//! 3. the proxy treats the episode like a crash, recovers from its durable
//!    checkpoint once the server behaves again, and every committed record
//!    is still intact.
//!
//! Run with: `cargo run --release --example integrity_audit`

use obladi::crypto::KeyMaterial;
use obladi::prelude::*;
use obladi::storage::{FaultPlan, FaultyStore, InMemoryStore};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<()> {
    // The untrusted server, wrapped so this example can script its
    // misbehaviour.
    let server = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        1,
    ));

    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 2;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 32;
    config.epoch.batch_interval = Duration::from_millis(2);
    let db = ObladiDb::open_with(
        config,
        server.clone(),
        TrustedCounter::new(),
        KeyMaterial::for_tests(2024),
    )?;

    // --- Phase 1: honest server, commit some records. ---
    let records = 48u64;
    for patient in 0..records {
        let mut txn = db.begin()?;
        txn.write(patient, format!("chart for patient {patient}").into_bytes())?;
        txn.commit()?;
    }
    println!("phase 1: committed {records} patient records while the server was honest");

    // --- Phase 2: the server corrupts everything it returns. ---
    server.set_plan(FaultPlan::corrupt(1.0));
    let mut aborted = 0u32;
    let mut tampered = 0u32;
    for patient in 0..16u64 {
        let Ok(mut txn) = db.begin() else {
            aborted += 1;
            continue;
        };
        match txn.read(patient) {
            Ok(Some(value)) => {
                if value != format!("chart for patient {patient}").into_bytes() {
                    tampered += 1;
                }
            }
            Ok(None) | Err(_) => aborted += 1,
        }
        let _ = txn.commit();
    }
    println!(
        "phase 2: server corrupted every block -> {aborted} lookups aborted, \
         {tampered} returned tampered bytes (must be 0), \
         {} faults injected by the server",
        server.injected_faults()
    );
    assert_eq!(tampered, 0, "MAC verification let tampered data through");

    // --- Phase 3: server behaves again; recover and verify. ---
    server.set_plan(FaultPlan::none());
    db.crash();
    let report = db.recover()?;
    println!(
        "phase 3: recovered from the durable checkpoint in {:.1} ms",
        report.total_ms
    );

    let mut intact = 0u64;
    for patient in 0..records {
        // Retry reads that land on an epoch boundary.
        for _ in 0..20 {
            let mut txn = db.begin()?;
            match txn.read(patient) {
                Ok(value) => {
                    if value == Some(format!("chart for patient {patient}").into_bytes()) {
                        intact += 1;
                    }
                    let _ = txn.commit();
                    break;
                }
                Err(err) if err.is_retryable() => continue,
                Err(err) => return Err(err),
            }
        }
    }
    println!("phase 3: {intact}/{records} records intact after the attack");
    assert_eq!(intact, records);

    db.shutdown();
    println!(
        "\nthe malicious server was reduced to denial of service — no data was lost or forged"
    );
    Ok(())
}
