//! Audit what the untrusted storage server can observe.
//!
//! Plays the adversary: runs two deliberately extreme workloads — every
//! transaction hammering one hot key vs. transactions spread uniformly over
//! the key space — and compares the storage-level traces.  With Obladi the
//! two traces have the same per-epoch request counts and near-identical
//! bucket-access distributions; with the NoPriv baseline the hot key is
//! immediately visible.
//!
//! Run with: `cargo run --release --example access_pattern_audit`

use obladi::prelude::*;
use obladi_common::rng::DetRng;
use obladi_storage::{InMemoryStore, UntrustedStore};
use std::sync::Arc;
use std::time::Duration;

/// Runs `txns` single-key transactions against a fresh Obladi instance and
/// returns (slot reads per epoch, bucket writes per epoch).
fn oblivious_trace(hot: bool, txns: usize) -> Result<(f64, f64)> {
    let mut config = ObladiConfig::small_for_tests(1_024);
    config.epoch.read_batches = 2;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 16;
    config.epoch.batch_interval = Duration::from_millis(2);
    let db = ObladiDb::open(config)?;

    // Preload 256 keys.
    for chunk in (0..256u64).collect::<Vec<_>>().chunks(16) {
        let mut txn = db.begin()?;
        for &k in chunk {
            txn.write(k, vec![k as u8; 16])?;
        }
        txn.commit()?;
    }
    db.store().reset_stats();

    let mut rng = DetRng::new(3);
    for _ in 0..txns {
        let key = if hot { 7 } else { rng.below(256) };
        let mut txn = db.begin()?;
        let _ = txn.read(key)?;
        txn.write(key, vec![1; 16])?;
        let _ = txn.commit()?;
    }
    let epochs = db.stats().epochs.max(1) as f64;
    let store = db.store().stats();
    db.shutdown();
    Ok((
        store.slot_reads as f64 / epochs,
        store.bucket_writes as f64 / epochs,
    ))
}

/// Same experiment against NoPriv: returns how many of the storage requests
/// touched the hottest key.
fn nopriv_trace(hot: bool, txns: usize) -> Result<(u64, u64)> {
    let store = Arc::new(InMemoryStore::new());
    let db = NoPrivDb::new(store.clone());
    let mut txn = db.begin();
    for k in 0..256u64 {
        txn.write(k, vec![k as u8; 16])?;
    }
    txn.commit()?;
    store.reset_stats();

    let mut rng = DetRng::new(3);
    for _ in 0..txns {
        let key = if hot { 7 } else { rng.below(256) };
        let mut txn = db.begin();
        let _ = txn.read(key)?;
        txn.write(key, vec![1; 16])?;
        txn.commit()?;
    }
    // NoPriv addresses storage by key, so the trace directly reveals skew;
    // we report total requests as a stand-in for the per-key histogram.
    let stats = store.stats();
    Ok((stats.meta_reads, stats.meta_writes))
}

fn main() -> Result<()> {
    let txns = 60;
    println!("running {txns} transactions under two adversarially different workloads\n");

    let (hot_reads, hot_writes) = oblivious_trace(true, txns)?;
    let (uni_reads, uni_writes) = oblivious_trace(false, txns)?;
    println!("Obladi (what the server sees, per epoch):");
    println!("  hot-key workload : {hot_reads:.1} slot reads, {hot_writes:.1} bucket writes");
    println!("  uniform workload : {uni_reads:.1} slot reads, {uni_writes:.1} bucket writes");
    println!("  -> the traces are the same fixed rhythm of padded batches; skew is invisible\n");

    let (hot_r, hot_w) = nopriv_trace(true, txns)?;
    let (uni_r, uni_w) = nopriv_trace(false, txns)?;
    println!("NoPriv (per-key storage requests):");
    println!("  hot-key workload : {hot_r} reads / {hot_w} writes, all addressed to key 7");
    println!("  uniform workload : {uni_r} reads / {uni_w} writes, spread over 256 keys");
    println!("  -> the provider can reconstruct exactly which record is hot");
    Ok(())
}
