//! Sharded scale-out: four independent ORAM pipelines behind one front door.
//!
//! Demonstrates the `obladi-shard` deployment end to end:
//!
//! 1. open a 4-shard deployment and inspect where the router places keys;
//! 2. run transactions that span several shards and commit atomically in
//!    one global epoch (delayed visibility, lifted to the deployment);
//! 3. crash a single shard — the rest keep serving — and recover it with
//!    every committed value intact.
//!
//! Run with `cargo run --example sharded_scaleout`.

use obladi::common::rng::DetRng;
use obladi::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn must_commit(db: &ShardedDb, body: &mut dyn FnMut(&mut ShardedTxn<'_>) -> Result<()>) {
    // Pseudorandom pauses between attempts de-phase the retry from the
    // epoch cycle: with the pipelined barrier, a cross-shard read needs
    // every touched shard outside its deciding window at once, and a
    // deterministic retry cadence can lock onto the epoch rhythm and hit
    // the same window forever.
    let mut jitter = DetRng::new(0x000b_1ad1);
    for attempt in 0..100 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(1 + jitter.below(8)));
        }
        let mut txn = db.begin().expect("front door refused a transaction");
        match body(&mut txn) {
            Ok(()) => {}
            Err(err) if err.is_retryable() => continue,
            Err(err) => panic!("transaction failed: {err}"),
        }
        match txn.commit() {
            Ok(outcome) if outcome.is_committed() => return,
            Ok(_) => continue,
            Err(err) if err.is_retryable() => continue,
            Err(err) => panic!("commit failed: {err}"),
        }
    }
    panic!("transaction kept aborting");
}

fn main() {
    // ---- 1. Open four shards behind one front door. ----
    let mut config = ShardConfig::small_for_tests(4, 1_024);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    // Transfers chain dependent reads across two shards; as with TPC-C in
    // the paper (§11.1), the number of read batches per epoch must cover
    // the longest read chain with room to spare.
    config.shard.epoch.read_batches = 8;
    let db = ShardedDb::open(config).expect("failed to open the sharded deployment");
    println!("opened {} shards behind one front door", db.shards());

    // The router spreads the key space uniformly by keyed hash.
    let mut histogram: HashMap<usize, u32> = HashMap::new();
    for key in 0..64u64 {
        *histogram.entry(db.router().route(key)).or_default() += 1;
    }
    let mut shares: Vec<(usize, u32)> = histogram.into_iter().collect();
    shares.sort_unstable();
    println!("placement of keys 0..64 across shards: {shares:?}");

    // ---- 2. Cross-shard transactions with atomic visibility. ----
    // An account ledger whose accounts live on different shards: transfers
    // must never be half-visible.
    let accounts: Vec<Key> = (0..8u64).collect();
    must_commit(&db, &mut |txn| {
        for &account in &accounts {
            txn.write(account, 100u64.to_le_bytes().to_vec())?;
        }
        Ok(())
    });

    for round in 0..5u64 {
        let from = accounts[(round as usize) % accounts.len()];
        let to = accounts[(round as usize + 3) % accounts.len()];
        must_commit(&db, &mut |txn| {
            let mut balance_from = u64::from_le_bytes(
                txn.read(from)?.expect("account exists")[..8]
                    .try_into()
                    .unwrap(),
            );
            let mut balance_to = u64::from_le_bytes(
                txn.read(to)?.expect("account exists")[..8]
                    .try_into()
                    .unwrap(),
            );
            balance_from -= 10;
            balance_to += 10;
            txn.write(from, balance_from.to_le_bytes().to_vec())?;
            txn.write(to, balance_to.to_le_bytes().to_vec())?;
            Ok(())
        });
    }

    // Conservation check: the total must be exactly 8 * 100.
    let mut total = 0u64;
    must_commit(&db, &mut |txn| {
        total = 0;
        for &account in &accounts {
            total += u64::from_le_bytes(
                txn.read(account)?.expect("account exists")[..8]
                    .try_into()
                    .unwrap(),
            );
        }
        Ok(())
    });
    assert_eq!(total, 800, "transfers must conserve the ledger total");
    let stats = db.stats();
    println!(
        "ledger conserved at {total}; {} commits ({} cross-shard) over {} global epochs",
        stats.committed, stats.cross_shard_committed, stats.global_epochs
    );

    // ---- 3. Crash and recover a single shard. ----
    let victim = db.router().route(accounts[0]);
    db.crash_shard(victim);
    println!("crashed shard {victim}; deployment keeps serving the others");

    let mut served = 0;
    for &account in &accounts {
        if db.router().route(account) != victim {
            must_commit(&db, &mut |txn| {
                txn.read(account)?;
                Ok(())
            });
            served += 1;
        }
    }
    println!("served {served} accounts while shard {victim} was down");

    let report = db.recover_shard(victim).expect("shard recovery failed");
    println!(
        "recovered shard {victim} to epoch {} in {:.1} ms (replayed {} reads)",
        report.recovered_epoch, report.total_ms, report.reads_replayed
    );

    // Every account — including those on the recovered shard — is intact.
    let mut total = 0u64;
    must_commit(&db, &mut |txn| {
        total = 0;
        for &account in &accounts {
            total += u64::from_le_bytes(
                txn.read(account)?.expect("account survived recovery")[..8]
                    .try_into()
                    .unwrap(),
            );
        }
        Ok(())
    });
    assert_eq!(total, 800, "recovery must preserve every committed balance");
    println!("ledger still conserved at {total} after recovery");

    // ---- 4. Observability: where did the time and the aborts go? ----
    // Per-shard proxy statistics show the oblivious padding at work (every
    // batch is padded to a fixed size regardless of load) …
    let stats = db.stats();
    println!("\nper-shard proxy statistics:");
    for (shard, proxy) in stats.shards.iter().enumerate() {
        println!(
            "  shard {shard}: {} epochs, {} committed / {} aborted, \
             {} real + {} padded read slots, {} real writes",
            proxy.epochs,
            proxy.committed,
            proxy.aborted,
            proxy.real_reads,
            proxy.padded_reads,
            proxy.real_writes
        );
    }
    // … and the global metrics registry attributes milliseconds to pipeline
    // phases and aborts to causes (`shard.{i}.abort.{cause}` counters).
    let snapshot = obladi::obs::global().snapshot();
    println!("pipeline phase timings (process-wide):");
    for (name, h) in &snapshot.histograms {
        if h.count > 0 && (name.starts_with("proxy.phase.") || name.starts_with("oram.split.")) {
            println!(
                "  {name}: n={} total={:.1}ms p50={}us p99={}us",
                h.count,
                h.sum as f64 / 1000.0,
                h.p50(),
                h.p99()
            );
        }
    }
    println!("abort causes:");
    for (name, count) in &snapshot.counters {
        if name.contains(".abort.") && *count > 0 {
            println!("  {name}: {count}");
        }
    }

    db.shutdown();
}
