//! Serializability and isolation tests for the Obladi proxy (§6.1).
//!
//! These tests exercise the anomalies MVTSO must prevent and the epoch
//! semantics of Figure 5: uncommitted reads create commit dependencies,
//! writes that arrive "too late" abort, aborts cascade, and concurrent
//! money transfers never create or destroy value.

use obladi::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn test_db() -> ObladiDb {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 32;
    config.epoch.write_batch_size = 64;
    config.epoch.batch_interval = Duration::from_millis(1);
    ObladiDb::open(config).unwrap()
}

fn amount(value: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&value[..8]);
    u64::from_le_bytes(bytes)
}

#[test]
fn lost_update_is_prevented() {
    // Two transactions read-modify-write the same counter concurrently; at
    // most one of them may commit per epoch, and the final value must equal
    // the number of successful commits.
    let db = Arc::new(test_db());
    {
        let mut txn = db.begin().unwrap();
        txn.write(1, 0u64.to_le_bytes().to_vec()).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }

    let total_attempts = 24;
    let successes = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let db = db.clone();
            let successes = &successes;
            scope.spawn(move || {
                for _ in 0..total_attempts / 4 {
                    let mut txn = match db.begin() {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let current = match txn.read(1) {
                        Ok(Some(v)) => amount(&v),
                        _ => continue,
                    };
                    if txn.write(1, (current + 1).to_le_bytes().to_vec()).is_err() {
                        continue;
                    }
                    if let Ok(outcome) = txn.commit() {
                        if outcome.is_committed() {
                            successes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });

    let committed = successes.load(std::sync::atomic::Ordering::SeqCst);
    let mut txn = db.begin().unwrap();
    let final_value = amount(&txn.read(1).unwrap().unwrap());
    txn.commit().unwrap();
    assert_eq!(
        final_value, committed,
        "counter must equal the number of committed increments (no lost updates)"
    );
    db.shutdown();
}

#[test]
fn transfers_preserve_total_balance() {
    let db = Arc::new(test_db());
    let accounts = 8u64;
    let initial = 1_000u64;
    {
        let mut txn = db.begin().unwrap();
        for account in 0..accounts {
            txn.write(account, initial.to_le_bytes().to_vec()).unwrap();
        }
        assert!(txn.commit().unwrap().is_committed());
    }

    std::thread::scope(|scope| {
        for thread in 0..4u64 {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = obladi_common::rng::DetRng::new(thread + 1);
                for _ in 0..10 {
                    let from = rng.below(accounts);
                    let mut to = rng.below(accounts);
                    if to == from {
                        to = (to + 1) % accounts;
                    }
                    let transfer = 1 + rng.below(50);
                    let mut txn = match db.begin() {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let result = (|| -> Result<bool> {
                        let (Some(from_raw), Some(to_raw)) = (txn.read(from)?, txn.read(to)?)
                        else {
                            // The epoch rolled over underneath us; retry the
                            // transfer as a fresh transaction.
                            return Ok(false);
                        };
                        let from_balance = amount(&from_raw);
                        let to_balance = amount(&to_raw);
                        if from_balance < transfer {
                            return Ok(true);
                        }
                        txn.write(from, (from_balance - transfer).to_le_bytes().to_vec())?;
                        txn.write(to, (to_balance + transfer).to_le_bytes().to_vec())?;
                        Ok(true)
                    })();
                    match result {
                        Ok(true) => {
                            let _ = txn.commit();
                        }
                        _ => {
                            txn.rollback();
                        }
                    }
                }
            });
        }
    });

    // Read the final balances one account per transaction (a long chain of
    // sequential reads would not fit into a single epoch), retrying reads
    // that straddle an epoch boundary.
    let mut total = 0u64;
    for account in 0..accounts {
        let mut balance = None;
        for _ in 0..10 {
            let mut txn = db.begin().unwrap();
            match txn.read(account) {
                Ok(value) => {
                    balance = value;
                    let _ = txn.commit();
                    break;
                }
                Err(err) if err.is_retryable() => continue,
                Err(err) => panic!("unexpected error reading account {account}: {err}"),
            }
        }
        total += amount(&balance.expect("account vanished"));
    }
    assert_eq!(
        total,
        accounts * initial,
        "serializable transfers must conserve the total balance"
    );
    db.shutdown();
}

#[test]
fn write_skew_style_interleaving_does_not_violate_invariant() {
    // Classic write-skew setup: two values must never both become zero.
    // Under serializable execution one of the two withdrawals must observe
    // the other (or abort).
    let db = test_db();
    {
        let mut txn = db.begin().unwrap();
        txn.write(10, 1u64.to_le_bytes().to_vec()).unwrap();
        txn.write(11, 1u64.to_le_bytes().to_vec()).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }

    // Both transactions read both keys, then each zeroes a different key if
    // the sum is >= 2.  MVTSO's read markers force one of them to abort when
    // they interleave within an epoch.
    let run_withdraw = |zero_key: u64, other_key: u64| -> bool {
        let mut txn = match db.begin() {
            Ok(t) => t,
            Err(_) => return false,
        };
        let result = (|| -> Result<bool> {
            let a = amount(&txn.read(zero_key)?.unwrap());
            let b = amount(&txn.read(other_key)?.unwrap());
            if a + b < 2 {
                return Ok(false);
            }
            txn.write(zero_key, 0u64.to_le_bytes().to_vec())?;
            Ok(true)
        })();
        match result {
            Ok(true) => txn.commit().map(|o| o.is_committed()).unwrap_or(false),
            _ => false,
        }
    };

    // Run both withdrawals repeatedly; whatever interleaving the epochs
    // produce, the invariant "not both zero unless a withdrawal observed the
    // other's effect" reduces to: sum >= 0 and at least one key is zero only
    // if a withdrawal committed.  The strongest checkable statement is that
    // the two committed withdrawals cannot *both* have started from the
    // initial state: if both keys are zero, the second withdrawal must have
    // seen sum >= 2, i.e. it read a non-zero value written before it.
    let first = run_withdraw(10, 11);
    let second = run_withdraw(11, 10);

    let mut txn = db.begin().unwrap();
    let a = amount(&txn.read(10).unwrap().unwrap());
    let b = amount(&txn.read(11).unwrap().unwrap());
    txn.commit().unwrap();

    if a == 0 && b == 0 {
        assert!(
            first && second,
            "both keys zeroed but not both withdrawals committed"
        );
    }
    db.shutdown();
}

#[test]
fn aborted_transaction_effects_never_become_visible() {
    let db = test_db();
    {
        let mut txn = db.begin().unwrap();
        txn.write(5, b"committed".to_vec()).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }
    // Abort a transaction that overwrote the key.
    {
        let mut txn = db.begin().unwrap();
        txn.write(5, b"aborted".to_vec()).unwrap();
        txn.rollback();
    }
    // Even many epochs later the aborted value must never surface.
    for _ in 0..3 {
        let mut txn = db.begin().unwrap();
        assert_eq!(txn.read(5).unwrap(), Some(b"committed".to_vec()));
        txn.commit().unwrap();
    }
    db.shutdown();
}

#[test]
fn reads_within_a_transaction_are_repeatable() {
    let db = test_db();
    {
        let mut txn = db.begin().unwrap();
        txn.write(3, b"v1".to_vec()).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }
    let mut reader = db.begin().unwrap();
    let first = reader.read(3).unwrap();
    // A concurrent writer with a larger timestamp updates the key; the
    // reader's snapshot (timestamp order) must not change mid-transaction.
    // (The writer's commit ends the reader's epoch, so the reader may be
    // aborted instead — that is also serializable; what must never happen is
    // a successful second read returning a different value.)
    {
        let mut writer = db.begin().unwrap();
        let _ = writer.write(3, b"v2".to_vec());
        let _ = writer.commit();
    }
    match reader.read(3) {
        Ok(second) => assert_eq!(first, second, "non-repeatable read within a transaction"),
        Err(err) => assert!(err.is_retryable(), "unexpected error: {err}"),
    }
    let _ = reader.commit();
    db.shutdown();
}
