//! Crash / recovery integration tests (§8): durability of committed epochs,
//! atomicity of uncommitted ones, repeated crashes, and recovery determinism.

use obladi::prelude::*;
use std::time::Duration;

fn test_db() -> ObladiDb {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 48;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.checkpoint_every = 3;
    ObladiDb::open(config).unwrap()
}

fn put(db: &ObladiDb, key: Key, value: &[u8]) -> bool {
    let mut txn = match db.begin() {
        Ok(t) => t,
        Err(_) => return false,
    };
    if txn.write(key, value.to_vec()).is_err() {
        return false;
    }
    txn.commit().map(|o| o.is_committed()).unwrap_or(false)
}

fn get(db: &ObladiDb, key: Key) -> Option<Value> {
    let mut txn = db.begin().unwrap();
    let value = txn.read(key).unwrap();
    let _ = txn.commit();
    value
}

#[test]
fn committed_data_survives_a_crash() {
    let db = test_db();
    for k in 0..20u64 {
        assert!(put(&db, k, format!("value-{k}").as_bytes()));
    }
    db.crash();
    db.recover().unwrap();
    for k in 0..20u64 {
        assert_eq!(
            get(&db, k),
            Some(format!("value-{k}").into_bytes()),
            "key {k} lost after crash"
        );
    }
    db.shutdown();
}

#[test]
fn uncommitted_data_disappears_after_a_crash() {
    let db = test_db();
    assert!(put(&db, 1, b"durable"));
    // Start a transaction whose commit decision is still pending when the
    // proxy crashes.
    let mut doomed = db.begin().unwrap();
    doomed.write(2, b"ephemeral".to_vec()).unwrap();
    db.crash();
    assert!(!doomed.commit().unwrap().is_committed());
    db.recover().unwrap();
    assert_eq!(get(&db, 1), Some(b"durable".to_vec()));
    assert_eq!(get(&db, 2), None, "uncommitted write resurfaced");
    db.shutdown();
}

#[test]
fn repeated_crash_recover_cycles_preserve_all_committed_epochs() {
    let db = test_db();
    let mut expected = Vec::new();
    for round in 0..4u64 {
        for i in 0..5u64 {
            let key = round * 100 + i;
            if put(&db, key, &key.to_le_bytes()) {
                expected.push(key);
            }
        }
        db.crash();
        let report = db.recover().unwrap();
        assert!(report.total_ms >= 0.0);
    }
    for key in expected {
        assert_eq!(
            get(&db, key),
            Some(key.to_le_bytes().to_vec()),
            "key {key} lost across crash cycles"
        );
    }
    db.shutdown();
}

#[test]
fn recovery_rejects_operations_while_crashed_and_resumes_after() {
    let db = test_db();
    assert!(put(&db, 9, b"before"));
    db.crash();
    assert!(db.is_crashed());
    assert!(
        db.begin().is_err(),
        "crashed proxy must refuse transactions"
    );
    // Recovering twice in a row is an error the second time (not crashed).
    db.recover().unwrap();
    assert!(db.recover().is_err());
    // Normal service resumes.
    assert!(put(&db, 10, b"after"));
    assert_eq!(get(&db, 9), Some(b"before".to_vec()));
    assert_eq!(get(&db, 10), Some(b"after".to_vec()));
    db.shutdown();
}

#[test]
fn overwrites_recover_to_the_latest_committed_version() {
    let db = test_db();
    assert!(put(&db, 5, b"v1"));
    assert!(put(&db, 5, b"v2"));
    assert!(put(&db, 5, b"v3"));
    db.crash();
    db.recover().unwrap();
    assert_eq!(get(&db, 5), Some(b"v3".to_vec()));
    // And the database remains writable with correct semantics afterwards.
    assert!(put(&db, 5, b"v4"));
    assert_eq!(get(&db, 5), Some(b"v4".to_vec()));
    db.shutdown();
}

#[test]
fn crash_during_activity_from_multiple_threads_is_safe() {
    let db = std::sync::Arc::new(test_db());
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let db = db.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let key = 1_000 + t * 50 + (i % 50);
                    let _ = put(&db, key, &key.to_le_bytes());
                    i += 1;
                }
            });
        }
        // Let the writers make progress, then crash under them.
        std::thread::sleep(Duration::from_millis(80));
        db.crash();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    db.recover().unwrap();
    // The database must be consistent and serviceable; we don't know exactly
    // which writes committed, but every readable value must be well-formed.
    // Scan in small chunks so each verification transaction fits within one
    // epoch's read batches.
    for key in 1_000..1_150u64 {
        // Retry reads that straddle an epoch boundary.
        let mut value = None;
        for _ in 0..10 {
            let mut txn = db.begin().unwrap();
            match txn.read(key) {
                Ok(v) => {
                    value = v;
                    let _ = txn.commit();
                    break;
                }
                Err(err) if err.is_retryable() => continue,
                Err(err) => panic!("unexpected error reading key {key}: {err}"),
            }
        }
        if let Some(value) = value {
            assert_eq!(value, key.to_le_bytes().to_vec(), "torn value at key {key}");
        }
    }
    db.shutdown();
}
