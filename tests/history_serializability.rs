//! Black-box serializability checking of concurrent executions.
//!
//! The tests in `serializability.rs` check specific anomalies; these tests
//! take the complementary approach of §6's correctness claim: run an
//! adversarially contended workload, record every read and write each
//! transaction performed, and feed the whole history to the Adya-style
//! serialization-graph checker in `obladi-testkit`.  The same harness runs
//! against the Obladi proxy and against both evaluation baselines (NoPriv
//! and the MySQL-like 2PL engine), since Figure 9's comparison is only
//! meaningful if all three enforce the same isolation level.

use obladi::prelude::*;
use obladi::storage::InMemoryStore;
use obladi_testkit::{check_serializable, HistoryRecorder, TxnTrace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEY_SPACE: u64 = 10;
const THREADS: u64 = 4;

fn obladi_db() -> ObladiDb {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 32;
    config.epoch.write_batch_size = 64;
    config.epoch.batch_interval = Duration::from_millis(1);
    ObladiDb::open(config).unwrap()
}

/// One randomised read-modify-write transaction: read up to two keys, write
/// up to two keys with recorder-tagged (unique) values.
fn txn_shape(rng: &mut obladi::common::rng::DetRng) -> (Vec<Key>, Vec<Key>) {
    let read_count = 1 + rng.below(2);
    let write_count = rng.below(3);
    let reads = (0..read_count).map(|_| rng.below(KEY_SPACE)).collect();
    let writes = (0..write_count).map(|_| rng.below(KEY_SPACE)).collect();
    (reads, writes)
}

#[test]
fn concurrent_obladi_execution_is_serializable() {
    let db = Arc::new(obladi_db());
    let recorder = Arc::new(HistoryRecorder::new());

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let db = db.clone();
            let recorder = recorder.clone();
            scope.spawn(move || {
                let mut rng = obladi::common::rng::DetRng::new(1000 + thread);
                for _ in 0..12 {
                    let (reads, writes) = txn_shape(&mut rng);
                    let mut txn = match db.begin() {
                        Ok(txn) => txn,
                        Err(_) => continue,
                    };
                    let mut trace = TxnTrace::new(txn.id());
                    let mut failed = false;
                    for key in reads {
                        match txn.read(key) {
                            Ok(value) => {
                                trace.observe(key, value);
                            }
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if !failed {
                        for key in writes {
                            let value = trace.next_write(key, b"obladi");
                            if txn.write(key, value).is_err() {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        txn.rollback();
                        recorder.finish_aborted(trace);
                        continue;
                    }
                    let id = trace.id();
                    match txn.commit() {
                        Ok(outcome) if outcome.is_committed() => {
                            // MVTSO: the transaction timestamp is the
                            // serialization order.
                            recorder.finish_committed(trace, id);
                        }
                        _ => recorder.finish_aborted(trace),
                    }
                }
            });
        }
    });
    db.shutdown();

    let recorder = Arc::into_inner(recorder).expect("recorder still shared");
    let history = recorder.into_history();
    assert!(
        history.committed_count() > 0,
        "nothing committed — harness broken"
    );
    let report = check_serializable(&history)
        .unwrap_or_else(|violation| panic!("obladi execution not serializable: {violation}"));
    assert_eq!(report.committed + report.aborted, history.len());
}

#[test]
fn concurrent_nopriv_execution_is_serializable() {
    let db = Arc::new(NoPrivDb::new(Arc::new(InMemoryStore::new())));
    let recorder = Arc::new(HistoryRecorder::new());

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let db = db.clone();
            let recorder = recorder.clone();
            scope.spawn(move || {
                let mut rng = obladi::common::rng::DetRng::new(2000 + thread);
                for _ in 0..50 {
                    let (reads, writes) = txn_shape(&mut rng);
                    let mut txn = db.begin();
                    let mut trace = TxnTrace::new(txn.id());
                    let mut failed = false;
                    for key in reads {
                        match txn.read(key) {
                            Ok(value) => {
                                trace.observe(key, value);
                            }
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if !failed {
                        for key in writes {
                            let value = trace.next_write(key, b"nopriv");
                            if txn.write(key, value).is_err() {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        txn.rollback();
                        recorder.finish_aborted(trace);
                        continue;
                    }
                    let id = trace.id();
                    match txn.commit() {
                        Ok(()) => recorder.finish_committed(trace, id),
                        Err(_) => recorder.finish_aborted(trace),
                    }
                }
            });
        }
    });

    let recorder = Arc::into_inner(recorder).expect("recorder still shared");
    let history = recorder.into_history();
    assert!(history.committed_count() > 0);
    check_serializable(&history)
        .unwrap_or_else(|violation| panic!("nopriv execution not serializable: {violation}"));
}

#[test]
fn concurrent_two_phase_locking_execution_is_serializable() {
    let db = Arc::new(TwoPhaseLockingDb::new());
    let recorder = Arc::new(HistoryRecorder::new());
    let trace_ids = AtomicU64::new(1);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let db = db.clone();
            let recorder = recorder.clone();
            let trace_ids = &trace_ids;
            scope.spawn(move || {
                let mut rng = obladi::common::rng::DetRng::new(3000 + thread);
                for _ in 0..50 {
                    let (reads, writes) = txn_shape(&mut rng);
                    let mut txn = db.begin();
                    let mut trace = TxnTrace::new(trace_ids.fetch_add(1, Ordering::SeqCst));
                    let mut failed = false;
                    for key in reads {
                        match txn.read(key) {
                            Ok(value) => {
                                trace.observe(key, value);
                            }
                            Err(_) => {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if !failed {
                        for key in writes {
                            let value = trace.next_write(key, b"2pl");
                            if txn.write(key, value).is_err() {
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        txn.rollback();
                        recorder.finish_aborted(trace);
                        continue;
                    }
                    // Strict 2PL holds every lock until commit returns, so a
                    // sequence number drawn here is consistent with the
                    // serialization (lock) order for all conflicting peers.
                    let commit_ts = recorder.next_commit_seq();
                    match txn.commit() {
                        Ok(()) => recorder.finish_committed(trace, commit_ts),
                        Err(_) => recorder.finish_aborted(trace),
                    }
                }
            });
        }
    });

    let recorder = Arc::into_inner(recorder).expect("recorder still shared");
    let history = recorder.into_history();
    assert!(history.committed_count() > 0);
    check_serializable(&history)
        .unwrap_or_else(|violation| panic!("2PL execution not serializable: {violation}"));
}
