//! Integrity tests for the malicious-server extension (Appendix A).
//!
//! The honest-but-curious model of the main paper assumes storage returns
//! what was written; Appendix A drops that assumption and reduces a
//! malicious server to denial of service by MACing every block with a
//! binding to its location and freshness counter.  These tests point the
//! ORAM client and the full proxy at a [`FaultyStore`] that corrupts,
//! replays or drops data, and verify the two properties that matter:
//!
//! 1. tampered data is *detected* (an `Integrity`/abort error, never a
//!    successful read of wrong bytes), and
//! 2. once the server behaves again, the data the client wrote is intact.

use obladi::crypto::KeyMaterial;
use obladi::oram::{ExecOptions, NoopPathLogger, RingOram};
use obladi::prelude::*;
use obladi::storage::{FaultPlan, FaultyStore, InMemoryStore, UntrustedStore};
use std::sync::Arc;
use std::time::Duration;

fn small_oram_over(store: Arc<dyn UntrustedStore>, seed: u64) -> RingOram {
    let config = OramConfig::small_for_tests(256).with_max_stash(2_048);
    let keys = KeyMaterial::for_tests(seed);
    RingOram::new(config, &keys, store, ExecOptions::parallel(2), seed).unwrap()
}

fn load(oram: &mut RingOram, keys: u64) {
    let writes: Vec<(Key, Value)> = (0..keys).map(|k| (k, vec![k as u8; 8])).collect();
    for chunk in writes.chunks(32) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
}

#[test]
fn corrupted_slots_are_detected_and_never_served_as_data() {
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        1,
    ));
    let mut oram = small_oram_over(faulty.clone(), 1);
    load(&mut oram, 64);

    // The server turns malicious: every slot read is corrupted.
    faulty.set_plan(FaultPlan::corrupt(1.0));
    let mut detected = 0;
    for key in 0..16u64 {
        match oram.read_batch(&[Some(key)], &NoopPathLogger) {
            Ok(values) => {
                // A successful read must still return the correct bytes
                // (e.g. served from the stash / epoch buffer, which the
                // adversary cannot touch).
                if let Some(value) = &values[0] {
                    assert_eq!(
                        value,
                        &vec![key as u8; 8],
                        "tampered data served for key {key}"
                    );
                }
            }
            Err(err) => {
                assert!(
                    matches!(err, ObladiError::Integrity(_) | ObladiError::Storage(_)),
                    "unexpected error kind for key {key}: {err}"
                );
                detected += 1;
            }
        }
    }
    assert!(detected > 0, "no corruption was detected across 16 reads");
    assert!(faulty.injected_faults() > 0);
}

#[test]
fn stale_replays_are_detected_by_the_freshness_binding() {
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        2,
    ));
    let mut oram = small_oram_over(faulty.clone(), 2);
    // Honest phase: load the tree.
    load(&mut oram, 64);

    // Malicious phase: the server starts answering slot reads with the
    // previous version of the bucket whenever it has one.  Operations may
    // legitimately fail from here on; what must never happen is a read
    // returning bytes other than the ones the client wrote.  Once an
    // operation has failed, the client state may no longer be usable (in
    // the full system the proxy aborts the epoch and recovers), so the test
    // stops at the first detection.
    faulty.set_plan(FaultPlan::stale(1.0));
    let mut detected = false;

    // Overwrite a few keys so buckets get rewritten and the faulty store
    // retains stale versions it can replay.
    let writes: Vec<(Key, Value)> = (0..16).map(|k| (k, vec![k as u8; 8])).collect();
    let write_result = oram
        .write_batch(&writes, &NoopPathLogger)
        .and_then(|()| oram.flush_writes(&NoopPathLogger));
    match write_result {
        Ok(()) => {
            for key in 0..64u64 {
                match oram.read_batch(&[Some(key)], &NoopPathLogger) {
                    Ok(values) => {
                        if let Some(value) = &values[0] {
                            assert_eq!(
                                value,
                                &vec![key as u8; 8],
                                "stale data served for key {key}"
                            );
                        }
                    }
                    Err(err) => {
                        assert!(
                            matches!(err, ObladiError::Integrity(_) | ObladiError::Storage(_)),
                            "unexpected error kind: {err}"
                        );
                        detected = true;
                        break;
                    }
                }
            }
        }
        Err(err) => {
            // The eviction read phase already tripped the freshness check.
            assert!(
                matches!(err, ObladiError::Integrity(_) | ObladiError::Storage(_)),
                "unexpected error kind: {err}"
            );
            detected = true;
        }
    }

    // The freshness binding must have tripped whenever a replay was
    // actually injected.
    assert!(
        detected || faulty.injected_faults() == 0,
        "stale replays were injected ({}) but never detected",
        faulty.injected_faults()
    );
}

#[test]
fn proxy_aborts_transactions_instead_of_returning_tampered_data() {
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        3,
    ));
    let mut config = ObladiConfig::small_for_tests(1_024);
    config.epoch.read_batches = 2;
    config.epoch.read_batch_size = 8;
    config.epoch.write_batch_size = 16;
    config.epoch.batch_interval = Duration::from_millis(1);
    let db = ObladiDb::open_with(
        config,
        faulty.clone(),
        obladi::storage::TrustedCounter::new(),
        KeyMaterial::for_tests(3),
    )
    .unwrap();

    // Honest phase: load and verify.
    for key in 0..32u64 {
        let mut txn = db.begin().unwrap();
        txn.write(key, vec![key as u8; 8]).unwrap();
        assert!(txn.commit().unwrap().is_committed());
    }

    // Malicious phase: every slot read is corrupted.  Transactions that
    // need storage must abort; none may observe wrong bytes.
    faulty.set_plan(FaultPlan::corrupt(1.0));
    let mut aborted = 0;
    for key in 0..16u64 {
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(_) => {
                aborted += 1;
                continue;
            }
        };
        match txn.read(key) {
            Ok(Some(value)) => assert_eq!(value, vec![key as u8; 8], "tampered read at key {key}"),
            Ok(None) => {}
            Err(_) => aborted += 1,
        }
        let _ = txn.commit();
    }
    assert!(aborted > 0, "corruption never surfaced as an abort");

    // Honest again: after the malicious interlude the proxy's volatile ORAM
    // state may be arbitrarily out of sync with storage (failed epochs were
    // aborted mid-flight), so the proxy does what §8 prescribes — it treats
    // the episode like a crash and recovers from the durable checkpoint —
    // and every committed write must still be there.
    faulty.set_plan(FaultPlan::none());
    db.crash();
    db.recover().unwrap();
    for key in 0..32u64 {
        let mut value = None;
        for _ in 0..20 {
            let mut txn = db.begin().unwrap();
            match txn.read(key) {
                Ok(v) => {
                    value = v;
                    let _ = txn.commit();
                    break;
                }
                Err(err) if err.is_retryable() => continue,
                Err(err) => panic!("unexpected error after server recovered: {err}"),
            }
        }
        assert_eq!(
            value,
            Some(vec![key as u8; 8]),
            "key {key} damaged by the malicious phase"
        );
    }
    db.shutdown();
}

#[test]
fn storage_outage_is_reduced_to_denial_of_service() {
    // After `fail_after` operations the server refuses everything; the proxy
    // must degrade to aborting transactions, and resume correctly once the
    // outage ends (here: never, so we only check the abort path), without
    // panicking or wedging.
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(InMemoryStore::new()),
        FaultPlan::none(),
        4,
    ));
    let mut config = ObladiConfig::small_for_tests(512);
    config.epoch.read_batches = 2;
    config.epoch.read_batch_size = 8;
    config.epoch.write_batch_size = 16;
    config.epoch.batch_interval = Duration::from_millis(1);
    let db = ObladiDb::open_with(
        config,
        faulty.clone(),
        obladi::storage::TrustedCounter::new(),
        KeyMaterial::for_tests(4),
    )
    .unwrap();

    for key in 0..8u64 {
        let mut txn = db.begin().unwrap();
        txn.write(key, vec![1; 4]).unwrap();
        let _ = txn.commit();
    }

    // Cut the server off entirely.
    faulty.set_plan(FaultPlan::fail_after(0));
    let mut committed = 0;
    for key in 0..8u64 {
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(_) => continue,
        };
        let _ = txn.read(key);
        if let Ok(outcome) = txn.commit() {
            if outcome.is_committed() {
                committed += 1;
            }
        }
    }
    // Read-only transactions can only commit if they were served entirely
    // from client-side state; they must never manufacture data.
    assert!(committed <= 8);
    db.shutdown();
}
