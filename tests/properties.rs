//! Property-based tests (proptest) over the core data structures and the
//! ORAM: read-your-writes under arbitrary operation sequences, codec
//! roundtrips, stash/position-map invariants and MVTSO conflict rules.

use obladi_common::config::OramConfig;
use obladi_common::types::AbortReason;
use obladi_core::concurrency::{MvtsoManager, ReadOutcome};
use obladi_crypto::{Envelope, KeyMaterial};
use obladi_oram::{Block, ExecOptions, NoopPathLogger, PositionMap, RingOram};
use obladi_storage::{InMemoryStore, UntrustedStore};
use obladi_workloads::Row;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// An operation in the ORAM model test.
#[derive(Debug, Clone)]
enum Op {
    Write(u8, u8),
    Read(u8),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Write(k % 64, v)),
        any::<u8>().prop_map(|k| Op::Read(k % 64)),
        Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ORAM behaves like a plain map under any sequence of reads, writes
    /// and epoch flushes (read-your-writes, no lost or phantom values).
    #[test]
    fn oram_matches_reference_map(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let config = OramConfig::small_for_tests(128).with_max_stash(1_024);
        let keys = KeyMaterial::for_tests(11);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let mut oram = RingOram::new(config, &keys, store, ExecOptions::parallel(2), 5).unwrap();
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Write(k, v) => {
                    let key = k as u64;
                    let value = vec![v; 8];
                    oram.write_batch(&[(key, value.clone())], &NoopPathLogger).unwrap();
                    reference.insert(key, value);
                }
                Op::Read(k) => {
                    let key = k as u64;
                    let got = oram.read_batch(&[Some(key)], &NoopPathLogger).unwrap();
                    prop_assert_eq!(got[0].clone(), reference.get(&key).cloned());
                }
                Op::Flush => {
                    oram.flush_writes(&NoopPathLogger).unwrap();
                }
            }
        }
        // Final sweep: every key the reference knows must be readable.
        oram.flush_writes(&NoopPathLogger).unwrap();
        for (key, value) in &reference {
            let got = oram.read_batch(&[Some(*key)], &NoopPathLogger).unwrap();
            prop_assert_eq!(got[0].as_ref(), Some(value));
        }
    }

    /// Envelope seal/open roundtrips for arbitrary payloads and bindings, and
    /// never opens under a different location or counter.
    #[test]
    fn envelope_roundtrip_and_binding(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        location in any::<u64>(),
        counter in any::<u64>(),
    ) {
        let envelope = Envelope::new(&KeyMaterial::for_tests(3));
        let capacity = payload.len().max(1) + 16;
        let sealed = envelope.seal(location, counter, &payload, capacity).unwrap();
        prop_assert_eq!(envelope.open(location, counter, &sealed).unwrap(), payload);
        prop_assert!(envelope.open(location ^ 1, counter, &sealed).is_err());
        prop_assert!(envelope.open(location, counter.wrapping_add(1), &sealed).is_err());
    }

    /// Block and Row encodings are lossless for arbitrary contents.
    #[test]
    fn block_and_row_roundtrip(
        key in 0u64..u64::MAX - 1,
        leaf in any::<u64>(),
        value in prop::collection::vec(any::<u8>(), 0..128),
        nums in prop::collection::vec(any::<u64>(), 0..12),
        blob in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let block = Block::real(key, leaf, value);
        prop_assert_eq!(Block::decode(&block.encode()).unwrap(), block);

        let row = Row::with_blob(nums, blob);
        prop_assert_eq!(Row::decode(&row.encode()).unwrap(), row);
    }

    /// Position-map deltas reconstruct the map regardless of the update
    /// sequence, and padded encodings have workload-independent length.
    #[test]
    fn position_map_delta_reconstruction(
        updates in prop::collection::vec((0u64..64, 0u64..32), 1..100),
    ) {
        let mut original = PositionMap::new();
        let mut replica = PositionMap::new();
        for chunk in updates.chunks(10) {
            for (key, leaf) in chunk {
                original.set(*key, *leaf);
            }
            let delta = original.take_delta();
            let encoded = PositionMap::encode_delta(&delta, 16);
            // Padded length is a function of the pad size only.
            prop_assert_eq!(encoded.len(), PositionMap::encode_delta(&[], 16).len());
            let decoded = PositionMap::decode_delta(&encoded).unwrap();
            replica.apply_delta(&decoded);
        }
        for (key, leaf) in original.iter() {
            prop_assert_eq!(replica.get(key), Some(leaf));
        }
    }

    /// MVTSO never lets two transactions both commit after writing the same
    /// key when one of them should have been rejected, and committed tail
    /// writes always come from committed transactions.
    #[test]
    fn mvtso_conflicting_writers_resolve_consistently(
        txn_count in 2u64..8,
        key_count in 1u64..4,
        ops in prop::collection::vec((1u64..8, 0u64..4, any::<bool>()), 1..40),
    ) {
        let mut manager = MvtsoManager::new();
        for txn in 1..=txn_count {
            manager.begin(txn);
        }
        for key in 0..key_count {
            manager.register_base(key, Some(vec![0u8]));
        }
        for (txn, key, is_write) in ops {
            let txn = (txn % txn_count) + 1;
            let key = key % key_count;
            if !matches!(manager.status(txn), Some(obladi_core::TxnStatus::Active)) {
                continue;
            }
            if is_write {
                let _ = manager.write(txn, key, vec![txn as u8]);
            } else if let Ok(ReadOutcome::NeedsFetch) = manager.read(txn, key) {
                manager.register_base(key, Some(vec![0u8]));
            }
        }
        for txn in 1..=txn_count {
            if matches!(manager.status(txn), Some(obladi_core::TxnStatus::Active)) {
                let _ = manager.request_commit(txn);
            }
        }
        let (committed, aborted) = manager.finalize();
        // Every transaction ends in exactly one of the two sets.
        for txn in 1..=txn_count {
            let in_committed = committed.contains(&txn);
            let in_aborted = aborted.contains(&txn);
            prop_assert!(in_committed ^ in_aborted,
                "transaction {} is in neither or both of committed/aborted", txn);
        }
        // Tail writes must come from committed transactions only.
        for (_, value) in manager.committed_tail_writes() {
            let writer = value[0] as u64;
            prop_assert!(committed.contains(&writer) || writer == 0);
        }
    }

    /// Cascading aborts never leave a committed transaction that observed an
    /// aborted writer.
    #[test]
    fn cascading_aborts_are_transitive(chain_len in 2usize..8) {
        let mut manager = MvtsoManager::new();
        manager.register_base(0, Some(vec![0]));
        for txn in 1..=(chain_len as u64) {
            manager.begin(txn);
            // Each transaction reads the previous writer's value then writes.
            let _ = manager.read(txn, 0);
            let _ = manager.write(txn, 0, vec![txn as u8]);
        }
        // Abort the first writer; everything downstream must abort.
        let aborted = manager.abort(1, AbortReason::UserRequested);
        prop_assert_eq!(aborted.len(), chain_len);
    }
}
