//! Statistical checks on the physical access trace (§4 invariants, §9).
//!
//! `obliviousness.rs` checks coarse properties (request counts, no
//! slot reuse, broad leaf coverage) with hand-rolled thresholds; these tests
//! use the `obladi-testkit` oracles to make the statistical claims precise:
//! the leaf-level access histogram of a long trace is consistent with a
//! uniform distribution (chi-square), the bucket invariant holds, and the
//! traces produced by two adversarially different workloads are close in
//! total-variation distance.

use obladi::crypto::KeyMaterial;
use obladi::oram::{ExecOptions, NoopPathLogger, RingOram, SlotRead};
use obladi::prelude::*;
use obladi::storage::{InMemoryStore, UntrustedStore};
use obladi_testkit::{
    is_plausibly_uniform, leaf_histogram_of, total_variation_distance, TraceRecorder,
};
use std::sync::Arc;

fn build_oram(seed: u64) -> RingOram {
    let config = OramConfig::small_for_tests(512).with_max_stash(4_096);
    let keys = KeyMaterial::for_tests(seed);
    let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
    let mut oram = RingOram::new(config, &keys, store, ExecOptions::parallel(2), seed).unwrap();
    let writes: Vec<(Key, Value)> = (0..256).map(|k| (k, vec![k as u8; 8])).collect();
    for chunk in writes.chunks(64) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
    oram
}

/// Runs `batches` batches of `batch_size` reads picked by `pick`.
///
/// Returns the access-phase reads (the first log entry of every
/// `read_batch`, whose paths the path invariant makes uniform), the
/// maintenance reads (eviction / reshuffle logs, which are deterministic),
/// and the full recorder for invariant checks.
fn trace_of(
    oram: &mut RingOram,
    batches: usize,
    batch_size: usize,
    mut pick: impl FnMut(usize, &mut obladi::common::rng::DetRng) -> Key,
    seed: u64,
) -> (Vec<SlotRead>, Vec<SlotRead>, TraceRecorder) {
    let full = TraceRecorder::new();
    let mut access_phase = Vec::new();
    let mut maintenance = Vec::new();
    let mut rng = obladi::common::rng::DetRng::new(seed);
    for batch in 0..batches {
        let requests: Vec<Option<Key>> = (0..batch_size)
            .map(|i| Some(pick(batch * batch_size + i, &mut rng)))
            .collect();
        let recorder = TraceRecorder::new();
        oram.read_batch(&requests, &recorder).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        for (index, logged) in recorder.batches().into_iter().enumerate() {
            use obladi::oram::PathLogger;
            full.log_reads(&logged).unwrap();
            if index == 0 {
                access_phase.extend(logged);
            } else {
                maintenance.extend(logged);
            }
        }
    }
    (access_phase, maintenance, full)
}

#[test]
fn leaf_access_histogram_is_chi_square_uniform_even_for_a_hot_key() {
    // Every request hammers one key; the path invariant still spreads the
    // access-phase reads uniformly over the leaves.  (Eviction reads follow
    // the deterministic reverse-lexicographic schedule and are therefore
    // excluded: they are public information, not a function of the
    // workload.)
    let mut oram = build_oram(41);
    let (access_phase, _, full) = trace_of(&mut oram, 40, 16, |_, _| 99, 5);

    let geometry = oram.geometry();
    full.check_bucket_invariant().unwrap();
    let histogram = leaf_histogram_of(&access_phase, &geometry);
    assert!(
        histogram.iter().sum::<u64>() > 0,
        "trace recorded no leaf-level accesses"
    );
    assert!(
        is_plausibly_uniform(&histogram),
        "hot-key access-phase trace is not uniform over leaves: {histogram:?}"
    );
}

#[test]
fn hot_and_uniform_workload_traces_are_statistically_close() {
    let mut hot_oram = build_oram(42);
    let mut uniform_oram = build_oram(42);

    // Both workloads issue batches of 16 *distinct* keys (the proxy's
    // deduplication guarantees this in the full system); the hot workload
    // only ever touches 16 keys while the uniform one cycles over all 256.
    let (hot_access, _, hot_full) =
        trace_of(&mut hot_oram, 40, 16, |index, _| (index % 16) as Key, 11);
    let (uniform_access, _, uniform_full) = trace_of(
        &mut uniform_oram,
        40,
        16,
        |index, _| ((index * 97) % 256) as Key,
        12,
    );

    // The bucket invariant holds for both traces.  (Raw request *volume*
    // differs here because the hot working set is served from the stash —
    // the client-side caching of §6.3; the proxy restores a fixed volume by
    // padding its batches, which `proxy_level_trace_stays_uniform…` below
    // checks end to end.)
    hot_full.check_bucket_invariant().unwrap();
    uniform_full.check_bucket_invariant().unwrap();

    // The paths that *are* physically read stay uniformly distributed for
    // both workloads, so their access-phase leaf histograms are close in
    // total-variation distance.  (Two independent uniform samples of this
    // size typically land around 0.15–0.2; a workload-revealing skew pushes
    // the distance towards 1.)
    let geometry = hot_oram.geometry();
    let distance = total_variation_distance(
        &leaf_histogram_of(&hot_access, &geometry),
        &leaf_histogram_of(&uniform_access, &geometry),
    );
    assert!(
        distance < 0.35,
        "hot vs uniform traces diverge (total variation distance {distance:.3})"
    );
}

#[test]
fn proxy_level_trace_stays_uniform_across_workload_skew() {
    // End-to-end: drive the full proxy with a heavily skewed workload and
    // check the per-epoch storage request counts are flat (the batch
    // structure is fixed) regardless of the skew.
    use std::time::Duration;

    let run = |hot: bool| -> Vec<u64> {
        let mut config = ObladiConfig::small_for_tests(1_024);
        config.epoch.read_batches = 2;
        config.epoch.read_batch_size = 8;
        config.epoch.write_batch_size = 16;
        config.epoch.batch_interval = Duration::from_millis(1);
        let db = ObladiDb::open(config).unwrap();
        for chunk in (0..64u64).collect::<Vec<_>>().chunks(8) {
            let mut txn = db.begin().unwrap();
            for &k in chunk {
                txn.write(k, vec![k as u8; 8]).unwrap();
            }
            txn.commit().unwrap();
        }
        db.store().reset_stats();
        let mut rng = obladi::common::rng::DetRng::new(9);
        let mut samples = Vec::new();
        for _ in 0..8 {
            let key = if hot { 5 } else { rng.below(64) };
            let mut txn = db.begin().unwrap();
            let _ = txn.read(key);
            let _ = txn.write(key, vec![2; 8]);
            let _ = txn.commit();
            let stats = db.store().stats();
            samples.push(stats.slot_reads + stats.bucket_writes);
        }
        db.shutdown();
        samples
    };

    let hot = run(true);
    let uniform = run(false);
    // Cumulative request counts grow at the same rate for both workloads;
    // compare the totals after the same number of transactions.
    let hot_total = *hot.last().unwrap() as f64;
    let uniform_total = *uniform.last().unwrap() as f64;
    let ratio = hot_total.max(uniform_total) / hot_total.min(uniform_total).max(1.0);
    assert!(
        ratio < 1.4,
        "storage request volume depends on key skew (hot {hot_total}, uniform {uniform_total})"
    );
}
