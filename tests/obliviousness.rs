//! Workload-independence (obliviousness) tests.
//!
//! The security argument of §9 rests on the storage-visible behaviour being
//! generatable without knowledge of the workload: fixed-size padded batches,
//! uniformly distributed paths, every slot read at most once between bucket
//! rewrites.  These tests check those properties empirically by recording
//! the physical trace under adversarially different workloads.

use obladi_common::config::OramConfig;
use obladi_common::rng::DetRng;
use obladi_common::types::Key;
use obladi_crypto::KeyMaterial;
use obladi_oram::client::PathLogger;
use obladi_oram::{ExecOptions, NoopPathLogger, RingOram, SlotRead};
use obladi_storage::{InMemoryStore, UntrustedStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A `PathLogger` that records every physical read for later analysis.
#[derive(Default)]
struct TraceLogger {
    reads: Mutex<Vec<SlotRead>>,
}

impl PathLogger for TraceLogger {
    fn log_reads(&self, reads: &[SlotRead]) -> obladi_common::error::Result<()> {
        self.reads.lock().extend_from_slice(reads);
        Ok(())
    }
}

fn build_oram(seed: u64) -> RingOram {
    let config = OramConfig::small_for_tests(512).with_max_stash(2_048);
    let keys = KeyMaterial::for_tests(seed);
    let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
    let mut oram = RingOram::new(config, &keys, store, ExecOptions::parallel(2), seed).unwrap();
    let writes: Vec<(Key, Vec<u8>)> = (0..256).map(|k| (k, vec![k as u8; 8])).collect();
    for chunk in writes.chunks(64) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
    oram
}

/// Runs `batches` fixed-size read batches drawn from `pick` and returns the
/// physical trace plus per-batch physical read counts.
fn run_trace(
    oram: &mut RingOram,
    batches: usize,
    batch_size: usize,
    mut pick: impl FnMut(usize, &mut DetRng) -> Key,
    seed: u64,
) -> (Vec<SlotRead>, Vec<u64>) {
    let logger = TraceLogger::default();
    let mut rng = DetRng::new(seed);
    let mut per_batch = Vec::new();
    for b in 0..batches {
        let before = oram.stats().physical_reads;
        let requests: Vec<Option<Key>> = (0..batch_size)
            .map(|i| Some(pick(b * batch_size + i, &mut rng)))
            .collect();
        oram.read_batch(&requests, &logger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        per_batch.push(oram.stats().physical_reads - before);
    }
    (logger.reads.into_inner(), per_batch)
}

#[test]
fn hot_and_uniform_workloads_issue_identical_request_counts() {
    // A workload hammering one key and a uniform workload must generate the
    // same number of physical requests per batch — the count depends only on
    // the (fixed) batch structure, not on the keys.
    let mut hot_oram = build_oram(1);
    let mut uni_oram = build_oram(1);

    let (_, hot_counts) = run_trace(&mut hot_oram, 6, 16, |_, _| 7, 42);
    let (_, uni_counts) = run_trace(&mut uni_oram, 6, 16, |_, rng| rng.below(256), 43);

    assert_eq!(hot_counts.len(), uni_counts.len());
    for (batch, (h, u)) in hot_counts.iter().zip(uni_counts.iter()).enumerate() {
        let diff = (*h as i64 - *u as i64).abs() as f64;
        let scale = (*h).max(*u) as f64;
        assert!(
            diff / scale < 0.25,
            "batch {batch}: physical request counts diverge too much (hot={h}, uniform={u})"
        );
    }
}

#[test]
fn no_slot_is_read_twice_between_bucket_writes() {
    // The bucket invariant (§4): between two writes of a bucket, every
    // physical slot is read at most once.
    let mut oram = build_oram(2);
    let logger = TraceLogger::default();
    let mut rng = DetRng::new(9);

    // Interleave reads and flushes; track bucket versions to scope the check
    // to "since the bucket was last written".
    let mut seen: HashMap<(u64, u64, u32), u64> = HashMap::new();
    for _ in 0..8 {
        let requests: Vec<Option<Key>> = (0..16).map(|_| Some(rng.below(256))).collect();
        oram.read_batch(&requests, &logger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
    for read in logger.reads.lock().iter() {
        let entry = seen
            .entry((read.bucket, read.version, read.slot))
            .or_insert(0);
        *entry += 1;
        assert_eq!(
            *entry, 1,
            "slot {} of bucket {} (version {}) was read twice between rewrites",
            read.slot, read.bucket, read.version
        );
    }
}

#[test]
fn accessed_buckets_cover_the_tree_uniformly() {
    // Repeated accesses to a *single* key must still touch leaves uniformly
    // (each access remaps the key to a fresh random leaf).  We check that
    // leaf-level buckets of the trace are spread over many distinct buckets
    // rather than concentrating on one path.
    let mut oram = build_oram(3);
    let (trace, _) = run_trace(&mut oram, 12, 16, |_, _| 42, 77);

    let geometry = oram.geometry();
    let leaf_level_start = geometry.num_leaves() - 1; // first leaf bucket id
    let mut leaf_bucket_hits: HashMap<u64, u64> = HashMap::new();
    for read in &trace {
        if read.bucket >= leaf_level_start {
            *leaf_bucket_hits.entry(read.bucket).or_insert(0) += 1;
        }
    }
    let distinct = leaf_bucket_hits.len() as u64;
    assert!(
        distinct >= geometry.num_leaves() / 3,
        "accesses concentrated on {distinct} of {} leaf buckets — paths are not uniform",
        geometry.num_leaves()
    );
    // No single leaf bucket should dominate the trace.
    let max_hits = leaf_bucket_hits.values().copied().max().unwrap_or(0);
    let total_hits: u64 = leaf_bucket_hits.values().sum();
    assert!(
        (max_hits as f64) < 0.35 * total_hits as f64,
        "one leaf bucket absorbed {max_hits}/{total_hits} accesses"
    );
}

#[test]
fn storage_request_volume_is_independent_of_key_skew() {
    // End-to-end variant through the proxy: the number of storage requests
    // per epoch must not depend on which keys transactions touch.
    use obladi::prelude::*;
    use std::time::Duration;

    let run = |hot: bool| -> (u64, u64) {
        let mut config = ObladiConfig::small_for_tests(1_024);
        config.epoch.read_batches = 2;
        config.epoch.read_batch_size = 8;
        config.epoch.write_batch_size = 16;
        config.epoch.batch_interval = Duration::from_millis(1);
        let db = ObladiDb::open(config).unwrap();
        // Preload.
        for chunk in (0..64u64).collect::<Vec<_>>().chunks(8) {
            let mut txn = db.begin().unwrap();
            for &k in chunk {
                txn.write(k, vec![k as u8; 8]).unwrap();
            }
            txn.commit().unwrap();
        }
        db.store().reset_stats();
        let mut rng = DetRng::new(5);
        for _ in 0..20 {
            let key = if hot { 3 } else { rng.below(64) };
            let mut txn = db.begin().unwrap();
            let _ = txn.read(key);
            let _ = txn.write(key, vec![9; 8]);
            let _ = txn.commit();
        }
        let epochs = db.stats().epochs.max(1);
        let reads = db.store().stats().slot_reads;
        db.shutdown();
        (reads / epochs, epochs)
    };

    let (hot_rate, _) = run(true);
    let (uni_rate, _) = run(false);
    let diff = (hot_rate as f64 - uni_rate as f64).abs();
    let scale = hot_rate.max(uni_rate) as f64;
    assert!(
        diff / scale < 0.3,
        "per-epoch storage request rate leaks skew: hot={hot_rate}, uniform={uni_rate}"
    );
}
