//! End-to-end adversary-view audit: a sharded deployment over recording
//! stores must produce indistinguishable traces under contrasting
//! workloads, and the auditor must catch an injected obliviousness leak.
//!
//! Complements `tests/obliviousness.rs` (which checks the logical path
//! trace inside one ORAM client): here the recorder sits at the storage
//! boundary — the op kinds, physical addresses, sealed payload lengths,
//! wire-frame sizes and timing the *cloud* would see — and the
//! differential comparison is the testkit's standing oracle.

use obladi_common::config::{ObladiConfig, ShardConfig};
use obladi_obs::audit::{AuditTolerances, TraceShape};
use obladi_shard::ShardedDb;
use obladi_testkit::audit::{cross_check, level_profile, recording_stores};
use obladi_workloads::{run_deployment, YcsbConfig, YcsbWorkload};
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const MAX_LEVEL_TVD: f64 = 0.12;

fn audit_config() -> ShardConfig {
    // Mirrors the bench sweep's shard template: 64-byte YCSB values (plus
    // row framing) need 192-byte blocks, and the epoch batches must be
    // large enough to absorb the workload's load phase.
    let mut shard = ObladiConfig::small_for_tests(2_048);
    shard.oram.block_size = 192;
    shard.oram.max_stash = 4_096;
    shard.epoch.batch_interval = Duration::from_millis(1);
    shard.epoch.read_batches = 4;
    shard.epoch.read_batch_size = 32;
    shard.epoch.write_batch_size = 64;
    ShardConfig {
        shards: SHARDS,
        shard,
        ..ShardConfig::default()
    }
}

/// Runs one recorded cell: a short YCSB burst against a fresh deployment
/// whose stores share an audit ring, reduced to the adversary-view shape.
fn run_cell(label: &str, read_proportion: f64, zipf_theta: f64) -> (TraceShape, Vec<u64>) {
    let (stores, ring) = recording_stores(SHARDS);
    let db = ShardedDb::open_with_stores(audit_config(), stores).unwrap();
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 512,
        read_proportion,
        ops_per_txn: 1,
        zipf_theta,
        value_size: 64,
    });
    let start = Instant::now();
    run_deployment(&db, &workload, 4, Duration::from_millis(700), 7).unwrap();
    let stats = db.stats();
    db.shutdown();
    let wall_us = start.elapsed().as_micros() as u64;
    let ops = ring.ops();
    assert!(!ops.is_empty(), "recorder captured nothing for {label}");
    (
        TraceShape::from_ops(label, &ops, wall_us, stats.global_epochs),
        level_profile(&ops),
    )
}

/// One sequential test on purpose: the mutation phase arms a process-wide
/// leak knob, so it must not overlap the clean differential phase.
#[test]
fn adversary_view_audit_end_to_end() {
    let tol = AuditTolerances::default();

    // Phase 1 — differential: contrasting workloads (uniform read-only,
    // 50/50 read-write, skewed read-only) must be indistinguishable.
    let shapes = vec![
        run_cell("read", 1.0, 0.6),
        run_cell("rw50", 0.5, 0.6),
        run_cell("zipf", 1.0, 0.95),
    ];
    let failures = cross_check(&shapes, &tol, MAX_LEVEL_TVD);
    assert!(
        failures.is_empty(),
        "contrasting workloads are distinguishable:\n  {}",
        failures.join("\n  ")
    );

    // Phase 2 — mutation: skipping dummy pads makes the physical read
    // rate occupancy-dependent; the auditor must catch it, proving the
    // differential check has teeth.
    let clean = run_cell("read", 1.0, 0.6);
    obladi_oram::set_leak_skip_dummy_pads(true);
    let mut leaky = run_cell("read", 1.0, 0.6);
    obladi_oram::set_leak_skip_dummy_pads(false);
    leaky.0.label = "read-leaky".to_string();
    let failures = cross_check(&[clean, leaky], &tol, MAX_LEVEL_TVD);
    assert!(
        !failures.is_empty(),
        "auditor missed the injected dummy-pad leak"
    );
}
