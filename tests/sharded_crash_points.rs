//! Crash-point sweep over the sharded 2PC commit path.
//!
//! `tests/crash_points.rs` sweeps crash points over a single proxy; this
//! suite does the same for the cross-shard commit protocol.  The testkit's
//! `shard_chaos` explorer drives a 2-of-3-shard transaction into a chosen
//! point of the prepare/vote/write-back/checkpoint/commit sequence on one
//! participant (via a deterministic `FaultyStore` trigger), recovers the
//! victim, and checks all-or-nothing visibility, acknowledged-implies-
//! durable, recovery idempotence, and serializability of the full recorded
//! history.
//!
//! The fast test below covers the three qualitatively distinct regions
//! (before the durable vote / between vote and commit record / after full
//! durability); the `#[ignore]`d sweep runs every enumerated point on both
//! participants and is exercised by the release chaos CI job
//! (`cargo test --release -- --ignored`).

use obladi_testkit::shard_chaos::{
    crash_schedule, overlap_crash_schedule, run_overlap_crash_case, run_shard_crash_case, Expected,
};

fn run_case_by_name(name: &str, seed: u64) -> obladi_testkit::ShardCrashReport {
    let schedule = crash_schedule();
    let case = schedule
        .iter()
        .find(|case| case.name == name)
        .unwrap_or_else(|| panic!("case {name} missing from the schedule"));
    run_shard_crash_case(case, seed).unwrap_or_else(|err| panic!("{err}"))
}

#[test]
fn crash_before_the_durable_vote_aborts_everywhere() {
    let report = run_case_by_name("prepare-append-fails/first", 0xA11CE);
    assert!(!report.acknowledged_commit, "{report:?}");
    assert!(!report.committed_visible, "{report:?}");
    assert!(report.tripped, "the crash point never fired: {report:?}");
    assert_eq!(
        report.in_doubt, 0,
        "a failed prepare append must leave nothing in doubt: {report:?}"
    );
}

#[test]
fn crash_between_vote_and_commit_record_is_finished_by_recovery() {
    // The exact ROADMAP window: the victim's vote is durable and the peer
    // commits, but the victim loses its epoch-commit record.
    let report = run_case_by_name("commit-record-lost/second", 0xB0B);
    assert!(report.acknowledged_commit, "{report:?}");
    assert!(report.committed_visible, "{report:?}");
    assert!(report.tripped, "{report:?}");
    assert!(
        report.in_doubt >= 1 && report.replayed_commits >= 1,
        "recovery must replay the in-doubt prepared commit: {report:?}"
    );
}

#[test]
fn crash_after_early_ack_before_write_back_replays_the_decision() {
    // The early-acknowledgement window: the epoch's decision record is
    // durable — the commit has been acknowledged to the parked client —
    // but the crash eats the write-back.  Recovery must replay the decided
    // epoch from the decision record alone so the acked writes survive.
    let report = run_case_by_name("acked-before-write-back/second", 0xDEC1);
    assert!(report.committed_visible, "{report:?}");
    assert!(report.tripped, "{report:?}");
    assert!(
        report.replayed_commits >= 1,
        "recovery must replay the decided epoch: {report:?}"
    );
}

#[test]
fn crash_after_full_durability_changes_nothing() {
    let report = run_case_by_name("after-durable-commit/first", 0xCAFE);
    assert!(report.acknowledged_commit, "{report:?}");
    assert!(report.committed_visible, "{report:?}");
    assert_eq!(
        report.replayed_commits, 0,
        "nothing is in doubt once the epoch is durable: {report:?}"
    );
}

#[test]
fn overlapping_epoch_crash_smoke() {
    // Fast tier of the overlapping-epoch sweep: one crash point inside the
    // decide/execute overlap window (pipelined epoch barrier).  The runner
    // checks all-or-nothing per epoch, acknowledged-implies-durable with
    // in-epoch-order durability, recovery idempotence across both in-doubt
    // epochs, serializability, and 2PC decision drain.
    let schedule = overlap_crash_schedule();
    let case = schedule
        .iter()
        .find(|case| case.name == "deciding-while-next-reads/first")
        .expect("the overlap schedule names its cases");
    let report = run_overlap_crash_case(case, 0x0E0E).unwrap_or_else(|err| panic!("{err}"));
    assert!(
        report.attempts.iter().sum::<usize>() > 0,
        "the hammers never drove a transaction: {report:?}"
    );
}

#[test]
fn writeback_engine_crash_smoke() {
    // Fast tier of the split-client crash points: a slot-read outage inside
    // the decide/execute overlap window — the engine's eviction fetches
    // (limbo keys in flight) or the read plane's batch fetches, whichever
    // the outage hits first — and require the same invariant battery to
    // hold through the two-epoch recovery.
    let schedule = overlap_crash_schedule();
    let case = schedule
        .iter()
        .find(|case| case.name == "engine-eviction-reads-vs-next-reads/first")
        .expect("the overlap schedule names the split-client cases");
    let report = run_overlap_crash_case(case, 0x5B11).unwrap_or_else(|err| panic!("{err}"));
    assert!(
        report.attempts.iter().sum::<usize>() > 0,
        "the hammers never drove a transaction: {report:?}"
    );
}

#[test]
#[ignore = "overlapping-epoch crash sweep (~16 deployments); run via the chaos CI job"]
fn every_overlapping_epoch_crash_point_recovers_cleanly() {
    let schedule = overlap_crash_schedule();
    assert!(
        schedule.len() >= 16,
        "the overlap sweep must cover at least 16 crash points (incl. the split-client \
         slot-read and flush-write points), got {}",
        schedule.len()
    );
    let mut two_epoch_replays = 0u32;
    for (index, case) in schedule.iter().enumerate() {
        let report = run_overlap_crash_case(case, 0xBEEF ^ ((index as u64) << 5))
            .unwrap_or_else(|err| panic!("{err}"));
        if report.epochs_replayed >= 2 {
            two_epoch_replays += 1;
        }
    }
    // The sweep's reason to exist: at least one point must catch the crash
    // with *both* pipeline stages holding logged work, so recovery proves
    // it can resolve two in-doubt epochs in order.
    assert!(
        two_epoch_replays > 0,
        "no case caught both in-doubt epochs; the overlap window was never hit"
    );
}

#[test]
#[ignore = "full crash-point sweep (~16 deployments); run via the chaos CI job"]
fn every_crash_point_recovers_to_an_all_or_nothing_outcome() {
    let schedule = crash_schedule();
    assert!(
        schedule.len() >= 16,
        "the sweep must cover at least 16 distinct crash points (incl. the \
         early-acknowledgement windows), got {}",
        schedule.len()
    );
    for (index, case) in schedule.iter().enumerate() {
        let report = run_shard_crash_case(case, 0xC0FFEE ^ (index as u64) << 4)
            .unwrap_or_else(|err| panic!("{err}"));
        assert!(report.tripped, "{}: crash point never fired", case.name);
        match case.expected {
            Expected::Commit => assert!(
                report.committed_visible,
                "{}: durable vote lost: {report:?}",
                case.name
            ),
            Expected::Abort => assert!(
                !report.committed_visible,
                "{}: unvoted transaction surfaced: {report:?}",
                case.name
            ),
        }
        // Points between the durable vote and the commit record must
        // actually exercise the in-doubt replay path.
        if case.trigger.is_some() && case.expected == Expected::Commit {
            assert!(
                report.replayed_commits >= 1,
                "{}: expected an in-doubt replay: {report:?}",
                case.name
            );
        }
    }
}
