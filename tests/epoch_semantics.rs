//! Epoch and batching semantics (Figure 5 and §6).
//!
//! These tests pin down the behaviour the paper's batching example relies
//! on: commit decisions are delayed to epoch boundaries, transactions that
//! straddle an epoch abort, MVTSO rejects writes that arrive after a later
//! reader, uncommitted state is visible within an epoch but never across an
//! abort, and the storage-facing batch structure stays fixed regardless of
//! what the transactions do.

use obladi::prelude::*;
use std::time::Duration;

fn test_db() -> ObladiDb {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.read_batches = 3;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 32;
    config.epoch.batch_interval = Duration::from_millis(1);
    ObladiDb::open(config).unwrap()
}

fn put(db: &ObladiDb, key: Key, value: &[u8]) -> bool {
    let mut txn = match db.begin() {
        Ok(txn) => txn,
        Err(_) => return false,
    };
    if txn.write(key, value.to_vec()).is_err() {
        return false;
    }
    txn.commit().map(|o| o.is_committed()).unwrap_or(false)
}

#[test]
fn commit_outcomes_are_only_published_at_epoch_boundaries() {
    // A committed write becomes visible to later transactions only after the
    // writer's commit was acknowledged — and the acknowledgement happens no
    // earlier than the epoch's decision instant, i.e. after the epoch
    // closed.  The ack may *lead* the epoch's durable tail by the in-flight
    // write-back (early commit acknowledgement), so the published-epoch
    // counter is allowed to trail the ack briefly; the boundary itself must
    // still arrive promptly.
    let db = test_db();
    let epochs_before = db.stats().epochs;
    assert!(put(&db, 1, b"first"));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut epochs_after = db.stats().epochs;
    while epochs_after <= epochs_before && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
        epochs_after = db.stats().epochs;
    }
    assert!(
        epochs_after > epochs_before,
        "commit acknowledged without an epoch boundary ({epochs_before} -> {epochs_after})"
    );
    db.shutdown();
}

#[test]
fn transactions_cannot_span_epochs() {
    // Figure 5: unfinished transactions at the epoch boundary are aborted.
    let db = test_db();
    assert!(put(&db, 7, b"seed"));

    let mut lingering = db.begin().unwrap();
    let _ = lingering.read(7);
    // Sleep long enough that several epochs end underneath the transaction.
    std::thread::sleep(Duration::from_millis(120));
    let outcome = lingering.commit().unwrap();
    assert!(
        !outcome.is_committed(),
        "a transaction that straddled epoch boundaries must abort"
    );
    db.shutdown();
}

#[test]
fn late_writes_are_rejected_by_read_markers() {
    // Figure 5: t2's write to d aborts because t3 (a later timestamp)
    // already read d's previous version.
    let db = test_db();
    assert!(put(&db, 3, b"d0"));

    let mut early = db.begin().unwrap(); // lower timestamp
    let mut late = db.begin().unwrap(); // higher timestamp

    // The later transaction reads the key first, setting its read marker.
    let observed = late.read(3).unwrap();
    assert_eq!(observed, Some(b"d0".to_vec()));

    // The earlier transaction now tries to write the same key: either the
    // write itself or its commit must fail.
    let write_result = early.write(3, b"d2".to_vec());
    let committed = match write_result {
        Err(_) => false,
        Ok(()) => early.commit().map(|o| o.is_committed()).unwrap_or(false),
    };
    assert!(
        !committed,
        "a write ordered before an already-served read must not commit"
    );
    let _ = late.commit();
    db.shutdown();
}

#[test]
fn uncommitted_writes_are_visible_within_an_epoch_and_create_dependencies() {
    // Figure 5: t3 reads t1's uncommitted write of a and becomes dependent
    // on t1.  Both execute in the same epoch; if the writer commits, the
    // reader may too, and the reader never observes a value that ends up
    // aborted (checked in the cascading test below).
    let db = test_db();
    assert!(put(&db, 11, b"a0"));

    let mut writer = db.begin().unwrap();
    writer.write(11, b"a1".to_vec()).unwrap();

    let mut reader = db.begin().unwrap();
    match reader.read(11) {
        Ok(Some(value)) => {
            // Within the epoch the reader sees either the committed base
            // version or the writer's uncommitted value — never anything
            // else.
            assert!(
                value == b"a0".to_vec() || value == b"a1".to_vec(),
                "reader observed bytes nobody wrote: {value:?}"
            );
        }
        Ok(None) => panic!("existing key read as absent"),
        Err(err) => assert!(err.is_retryable(), "unexpected error: {err}"),
    }
    let writer_outcome = writer.commit().unwrap();
    let reader_outcome = reader.commit();
    if let Ok(outcome) = reader_outcome {
        if outcome.is_committed() {
            // If the reader committed after observing a1, the writer must
            // have committed as well (write-read dependency).
            assert!(
                writer_outcome.is_committed() || {
                    // The reader may have observed a0 instead; re-check by
                    // reading the current value.
                    let mut check = db.begin().unwrap();
                    let now = check.read(11).unwrap();
                    let _ = check.commit();
                    now == Some(b"a0".to_vec()) || now == Some(b"a1".to_vec())
                },
                "reader committed on top of an aborted writer"
            );
        }
    }
    db.shutdown();
}

#[test]
fn aborting_a_writer_cascades_to_its_readers() {
    // A reader that observed an uncommitted write can only commit if the
    // writer does; when the writer rolls back, the reader must abort.
    let db = test_db();
    assert!(put(&db, 21, b"base"));

    let mut writer = db.begin().unwrap();
    writer.write(21, b"doomed".to_vec()).unwrap();

    let mut reader = db.begin().unwrap();
    let saw_uncommitted = matches!(reader.read(21), Ok(Some(value)) if value == b"doomed".to_vec());

    writer.rollback();
    let reader_committed = reader.commit().map(|o| o.is_committed()).unwrap_or(false);
    if saw_uncommitted {
        assert!(
            !reader_committed,
            "reader committed after observing a rolled-back write"
        );
    }
    // The aborted value must never become the committed state.
    let mut check = db.begin().unwrap();
    let value = check.read(21).unwrap();
    let _ = check.commit();
    assert_eq!(value, Some(b"base".to_vec()));
    db.shutdown();
}

#[test]
fn read_batches_are_always_padded_to_their_fixed_size() {
    // Workload independence (§6.2): every read batch shipped to the ORAM
    // carries exactly `b_read` requests — real ones plus padding.
    let db = test_db();
    for key in 0..12u64 {
        let _ = put(&db, key, &key.to_le_bytes());
    }
    // A few read-only transactions with varying footprints.
    for key in 0..6u64 {
        let mut txn = db.begin().unwrap();
        let _ = txn.read(key);
        let _ = txn.commit();
    }
    db.shutdown();

    let stats = db.stats();
    let batch_size = db.config().epoch.read_batch_size as u64;
    assert!(stats.read_batches > 0);
    assert_eq!(
        stats.real_reads + stats.padded_reads,
        stats.read_batches * batch_size,
        "read batches were not padded to b_read"
    );
}

#[test]
fn writes_are_deduplicated_to_the_last_version_per_epoch() {
    // §6.2: only the tail of each version chain is shipped in the write
    // batch; intermediate versions written in the same epoch are discarded.
    let db = test_db();
    // Burst of overwrites of the same key, issued as fast as possible so
    // several land in the same epoch.
    let mut acknowledged = Vec::new();
    for i in 0..10u64 {
        if put(&db, 40, format!("v{i}").into_bytes().as_slice()) {
            acknowledged.push(i);
        }
    }
    let stats = db.stats();
    // Every write batch carries at most one version of key 40, so the number
    // of real writes for this key cannot exceed the number of epochs.
    assert!(
        stats.real_writes <= stats.epochs,
        "more real writes ({}) than epochs ({}) for a single hot key",
        stats.real_writes,
        stats.epochs
    );
    // The committed state is the last acknowledged version.
    if let Some(last) = acknowledged.last() {
        let mut txn = db.begin().unwrap();
        let value = txn.read(40).unwrap();
        let _ = txn.commit();
        assert_eq!(value, Some(format!("v{last}").into_bytes()));
    }
    db.shutdown();
}

#[test]
fn epoch_counter_advances_even_when_idle() {
    // The epoch rhythm is workload independent: epochs tick over (and the
    // proxy keeps issuing its fixed batch schedule) even with no clients.
    let db = test_db();
    let before = db.stats().epochs;
    std::thread::sleep(Duration::from_millis(100));
    let after = db.stats().epochs;
    assert!(
        after > before,
        "epochs must advance on the timer alone ({before} -> {after})"
    );
    db.shutdown();
}
