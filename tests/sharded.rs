//! End-to-end tests of the sharded deployment: cross-shard atomic
//! visibility, serializability of concurrent multi-shard histories (checked
//! by the testkit oracle), and single-shard crash / recovery behind the
//! front door.

use obladi::prelude::*;
use obladi_testkit::cross_shard_pair;
use obladi_testkit::history::{check_serializable, tag_value, History, TxnRecord};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sharded_config(shards: usize) -> ShardConfig {
    let mut config = ShardConfig::small_for_tests(shards, 1_024);
    config.shard.epoch.batch_interval = Duration::from_millis(1);
    config
}

/// Commits `body` with retries on retryable aborts, returning the
/// transaction id it committed under (shared testkit helper).
use obladi_testkit::shard_chaos::commit_with_retries;

#[test]
fn cross_shard_transaction_commits_and_reads_back() {
    let db = ShardedDb::open(sharded_config(4)).unwrap();
    let (a, b) = cross_shard_pair(&db);

    commit_with_retries(&db, |txn| {
        txn.write(a, b"left".to_vec())?;
        txn.write(b, b"right".to_vec())
    })
    .unwrap();

    commit_with_retries(&db, |txn| {
        assert_eq!(txn.read(a)?, Some(b"left".to_vec()));
        assert_eq!(txn.read(b)?, Some(b"right".to_vec()));
        Ok(())
    })
    .unwrap();

    let stats = db.stats();
    assert!(stats.cross_shard_committed >= 1, "{stats:?}");
    assert!(stats.global_epochs >= 1);
    assert_eq!(stats.shards.len(), 4);
    db.shutdown();
}

#[test]
fn cross_shard_writes_become_visible_atomically() {
    // A writer repeatedly updates a two-shard pair to matching values while
    // a reader hammers both keys in one transaction.  Delayed-visibility
    // atomicity across shards means the reader must never observe a torn
    // pair (one shard's half updated, the other's not).
    let db = Arc::new(ShardedDb::open(sharded_config(3)).unwrap());
    let (a, b) = cross_shard_pair(&db);

    commit_with_retries(&db, |txn| {
        txn.write(a, vec![0])?;
        txn.write(b, vec![0])
    })
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    type Observation = (Option<Value>, Option<Value>);
    let torn: Arc<Mutex<Vec<Observation>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        let reader_db = db.clone();
        let reader_stop = stop.clone();
        let reader_torn = torn.clone();
        let reader = scope.spawn(move || {
            while !reader_stop.load(Ordering::SeqCst) {
                let mut txn = match reader_db.begin() {
                    Ok(txn) => txn,
                    Err(_) => continue,
                };
                let left = match txn.read(a) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let right = match txn.read(b) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let _ = txn.commit();
                if left != right {
                    reader_torn.lock().push((left, right));
                }
            }
        });

        // Writer: bump both halves in lockstep.
        for round in 1..=10u8 {
            commit_with_retries(&db, |txn| {
                txn.write(a, vec![round])?;
                txn.write(b, vec![round])
            })
            .unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
    });

    let torn = torn.lock();
    assert!(
        torn.is_empty(),
        "reader observed torn cross-shard states: {torn:?}"
    );
    let epoch_after = db.global_epoch();
    assert!(epoch_after >= 10, "ten commits need at least ten epochs");
    db.shutdown();
}

#[test]
fn concurrent_cross_shard_history_is_serializable() {
    // Several client threads run read-modify-write transactions over a small
    // hot key set that straddles all shards; every observed read and write
    // is recorded and the full history handed to the serializability oracle.
    let db = Arc::new(ShardedDb::open(sharded_config(3)).unwrap());
    let keys: Vec<Key> = (0..12u64).collect();
    {
        let shards_hit: std::collections::HashSet<usize> =
            keys.iter().map(|&k| db.router().route(k)).collect();
        assert!(shards_hit.len() >= 2, "key set must straddle shards");
    }

    let history = Arc::new(Mutex::new(History::new()));
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let db = db.clone();
            let history = history.clone();
            let keys = keys.clone();
            scope.spawn(move || {
                for round in 0..12u32 {
                    // Each attempt is a fresh transaction with a fresh record;
                    // only the final (committed or cleanly aborted) attempt
                    // is pushed into the history.
                    for _attempt in 0..25 {
                        let mut txn = match db.begin() {
                            Ok(txn) => txn,
                            Err(_) => continue,
                        };
                        let base = (client as usize * 31 + round as usize) % keys.len();
                        let read_key = keys[base];
                        let write_key = keys[(base + 5) % keys.len()];
                        let second_key = keys[(base + 7) % keys.len()];

                        // A virgin transaction may be transparently
                        // re-stamped, so the id is sampled only after the
                        // first successful operation pins it.
                        let observed = match txn.read(read_key) {
                            Ok(v) => v,
                            Err(_) => continue,
                        };
                        let mut record = TxnRecord::new(txn.id());
                        record.read(read_key, observed);

                        // From here on every attempt's record is pushed
                        // (committed or aborted): a concurrent transaction
                        // may observe an aborted attempt's buffered write,
                        // and the oracle can only attribute it if the
                        // writer is recorded.

                        let seq = round * 2;
                        let value = tag_value(record.id, seq, b"shard");
                        record.write(write_key, value.clone());
                        if txn.write(write_key, value).is_err() {
                            record.abort();
                            history.lock().push(record);
                            continue;
                        }

                        let value2 = tag_value(record.id, seq + 1, b"shard");
                        record.write(second_key, value2.clone());
                        if txn.write(second_key, value2).is_err() {
                            record.abort();
                            history.lock().push(record);
                            continue;
                        }

                        match txn.commit_reported() {
                            // The id the transaction finally serialized
                            // under is the version-order timestamp: a twin
                            // rebuild may have moved the transaction past
                            // the id its value tags carry.
                            Ok((final_id, outcome)) if outcome.is_committed() => {
                                record.commit(final_id);
                                history.lock().push(record);
                                break;
                            }
                            Ok(_) | Err(_) => {
                                record.abort();
                                history.lock().push(record);
                                // Retry with a fresh timestamp.
                                continue;
                            }
                        }
                    }
                }
            });
        }
    });

    let history = Arc::try_unwrap(history)
        .map_err(|_| ())
        .unwrap()
        .into_inner();
    assert!(
        history.committed_count() >= 20,
        "too few commits to be meaningful: {}",
        history.committed_count()
    );
    let report = check_serializable(&history).expect("sharded history must be serializable");
    assert_eq!(report.committed, history.committed_count());
    assert!(report.edges > 0, "the history must actually contend");
    db.shutdown();
}

#[test]
fn single_shard_crash_and_recovery_behind_the_front_door() {
    let db = ShardedDb::open(sharded_config(3)).unwrap();

    // Spread committed data over all shards.
    for key in 0..24u64 {
        commit_with_retries(&db, |txn| txn.write(key, vec![key as u8; 4])).unwrap();
    }

    // Crash the shard owning key 0; the others must keep serving.
    let victim = db.router().route(0);
    db.crash_shard(victim);
    assert!(db.is_shard_crashed(victim));

    let mut served = 0;
    let mut refused = 0;
    for key in 0..24u64 {
        if db.router().route(key) == victim {
            // Keys on the crashed shard abort retryably.
            let mut txn = db.begin().unwrap();
            match txn.read(key) {
                Err(err) => {
                    assert!(err.is_retryable(), "unexpected error: {err}");
                    refused += 1;
                }
                Ok(_) => panic!("crashed shard served key {key}"),
            }
        } else {
            commit_with_retries(&db, |txn| {
                assert_eq!(txn.read(key)?, Some(vec![key as u8; 4]), "key {key}");
                Ok(())
            })
            .unwrap();
            served += 1;
        }
    }
    assert!(served > 0, "no key landed on a surviving shard");
    assert!(refused > 0, "no key landed on the crashed shard");

    // Cross-shard transactions touching the crashed shard abort retryably.
    let (a, b) = cross_shard_pair(&db);
    if db.router().route(a) == victim || db.router().route(b) == victim {
        let mut txn = db.begin().unwrap();
        let outcome = txn.read(a).and_then(|_| txn.read(b));
        if let Err(err) = outcome {
            assert!(err.is_retryable());
        }
    }

    // Recover the shard; every committed value must still be there.
    let report = db.recover_shard(victim).unwrap();
    assert!(report.recovered_epoch >= 1);
    for key in 0..24u64 {
        commit_with_retries(&db, |txn| {
            assert_eq!(txn.read(key)?, Some(vec![key as u8; 4]), "key {key}");
            Ok(())
        })
        .unwrap();
    }
    db.shutdown();
}

#[test]
fn shard_crash_between_commit_vote_and_epoch_commit_is_atomic_after_recovery() {
    // The exact ROADMAP scenario the durable-prepare protocol closes: a
    // shard votes to commit a cross-shard transaction (its prepare record
    // is durable), the peer makes its half durable, and the victim crashes
    // before its own epoch-commit record lands.  The testkit explorer
    // drives the scenario and already enforces all-or-nothing visibility,
    // acknowledged-implies-durable, recovery idempotence, serializability
    // of the recorded history, and that every 2PC decision retires; this
    // regression pins the ROADMAP-specific expectations on top.
    use obladi_testkit::{crash_schedule, run_shard_crash_case};

    let schedule = crash_schedule();
    let case = schedule
        .iter()
        .find(|case| case.name == "commit-record-lost/first")
        .expect("the vote-durable/commit-record-lost point is in the schedule");
    let report = run_shard_crash_case(case, 0xD00D).unwrap_or_else(|err| panic!("{err}"));
    assert!(
        report.acknowledged_commit,
        "the peer committed, so the front door must report the commit: {report:?}"
    );
    assert!(
        report.committed_visible,
        "the voted transaction must be visible on all shards after recovery: {report:?}"
    );
    assert!(
        report.in_doubt >= 1 && report.replayed_commits >= 1,
        "recovery must find and replay the voted transaction: {report:?}"
    );
    assert_eq!(
        report.pending_decisions_after, 0,
        "every 2PC decision must retire once all participants are durable"
    );
}

#[test]
fn sharded_front_door_runs_the_generic_execute_api() {
    let db = ShardedDb::open(sharded_config(2)).unwrap();
    assert_eq!(db.engine_name(), "obladi-sharded");
    let value = db
        .execute_with_retries(25, &mut |txn| {
            txn.write(7, vec![7, 7])?;
            txn.read(7)
        })
        .unwrap();
    assert_eq!(value, Some(vec![7, 7]));
    db.shutdown();
}

#[test]
fn per_shard_executor_pool_sizing_reaches_each_shard() {
    // The ROADMAP's "per-shard OS threads" item, first half: one shard can
    // run a bigger ORAM executor pool than its neighbour.
    let config = sharded_config(2).with_executor_threads_per_shard(vec![2, 5]);
    let db = ShardedDb::open(config).unwrap();
    assert_eq!(db.shard(0).config().epoch.executor_threads, 2);
    assert_eq!(db.shard(1).config().epoch.executor_threads, 5);
    // The asymmetric deployment still serves transactions on both shards.
    let pair = obladi_testkit::cross_shard_pair(&db);
    let mut history = obladi_testkit::history::History::new();
    let committed =
        obladi_testkit::shard_chaos::write_pair_tagged(&db, pair, &mut history, 100, &|| false);
    assert!(committed.is_some(), "cross-shard commit failed");
    db.shutdown();
}
