//! Crash-point sweep for the epoch fate-sharing guarantee (§8).
//!
//! `recovery.rs` exercises hand-picked crash scenarios; here a property test
//! sweeps the crash point across a scripted workload and checks, for every
//! position, that acknowledged commits survive recovery and unacknowledged
//! writes never resurface.  A second test replays the same script and crash
//! point twice and checks that the recovered state is identical — the
//! deterministic-recovery property that the read-path log exists to provide.

use obladi::prelude::*;
use obladi_testkit::chaos::{read_with_retries, run_script_with_crash};
use proptest::prelude::*;
use std::time::Duration;

fn crash_config(seed: u64) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(1_024);
    config.epoch.read_batches = 2;
    config.epoch.read_batch_size = 8;
    config.epoch.write_batch_size = 16;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.checkpoint_every = 3;
    config.seed = seed;
    config
}

fn script_from(keys: &[u8]) -> Vec<(Key, Value)> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| ((*k % 11) as Key, format!("value-{i}-{k}").into_bytes()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Epoch fate sharing holds for an arbitrary crash point in an arbitrary
    /// write script.
    #[test]
    fn acknowledged_commits_survive_any_crash_point(
        keys in prop::collection::vec(any::<u8>(), 4..16),
        crash_fraction in 0.0f64..1.0,
    ) {
        let script = script_from(&keys);
        let crash_after = ((script.len() as f64) * crash_fraction) as usize;
        let run = run_script_with_crash(crash_config(7), &script, crash_after)
            .expect("crash run failed to execute");
        prop_assert_eq!(
            run.acknowledged.len() + run.unacknowledged.len(),
            script.len()
        );
        if let Err(problem) = run.verify_durability() {
            run.db.shutdown();
            return Err(TestCaseError::fail(problem));
        }
        run.db.shutdown();
    }
}

#[test]
fn every_crash_point_in_a_short_script_preserves_acknowledged_writes() {
    // Exhaustive sweep over a short script: crash after 0, 1, …, n writes.
    let script: Vec<(Key, Value)> = (0..8u64)
        .map(|i| (i % 3, format!("round-{i}").into_bytes()))
        .collect();
    for crash_after in 0..=script.len() {
        let run = run_script_with_crash(crash_config(11), &script, crash_after)
            .unwrap_or_else(|err| panic!("crash point {crash_after}: run failed: {err}"));
        run.verify_durability()
            .unwrap_or_else(|problem| panic!("crash point {crash_after}: {problem}"));
        run.db.shutdown();
    }
}

#[test]
fn recovery_is_deterministic_for_identical_runs() {
    // Two runs with the same seed, script and crash point must recover to
    // the same application-visible state for the keys whose commits were
    // acknowledged in *both* runs (the overlap is what determinism can
    // promise once thread scheduling differs).
    let script: Vec<(Key, Value)> = (0..10u64)
        .map(|i| (i % 4, format!("det-{i}").into_bytes()))
        .collect();
    let run_a = run_script_with_crash(crash_config(23), &script, 5).unwrap();
    let run_b = run_script_with_crash(crash_config(23), &script, 5).unwrap();

    let state_a = run_a.expected_state();
    let state_b = run_b.expected_state();
    for (key, value) in &state_a {
        if let Some(other) = state_b.get(key) {
            if value == other {
                let got_a = read_with_retries(&run_a.db, *key, 20).unwrap();
                let got_b = read_with_retries(&run_b.db, *key, 20).unwrap();
                assert_eq!(got_a, got_b, "recovered state diverged for key {key}");
                assert_eq!(got_a, Some(value.clone()));
            }
        }
    }
    run_a.db.shutdown();
    run_b.db.shutdown();
}

#[test]
fn repeated_crashes_between_every_write_still_preserve_acknowledgements() {
    // The most hostile schedule: crash and recover after every single write.
    let config = crash_config(31);
    let db = ObladiDb::open(config).unwrap();
    let mut expected: Vec<(Key, Value)> = Vec::new();
    for i in 0..10u64 {
        let key = i % 4;
        let value = format!("hostile-{i}").into_bytes();
        let acknowledged = obladi_testkit::put_acknowledged(&db, key, &value);
        if acknowledged {
            expected.retain(|(k, _)| *k != key);
            expected.push((key, value));
        }
        db.crash();
        db.recover().unwrap();
    }
    for (key, value) in expected {
        assert_eq!(
            read_with_retries(&db, key, 20).unwrap(),
            Some(value),
            "key {key} lost across repeated crashes"
        );
    }
    db.shutdown();
}
