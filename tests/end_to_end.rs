//! Cross-crate integration tests: applications running end-to-end on the
//! Obladi proxy (workloads → proxy → MVTSO → ORAM → storage).

use obladi::prelude::*;
use obladi::workloads::{
    run_fixed_count, FreeHealthConfig, FreeHealthWorkload, SmallBankConfig, SmallBankWorkload,
    TpccConfig, TpccWorkload, Workload, YcsbConfig, YcsbWorkload,
};
use std::time::Duration;

/// A proxy configuration sized for integration tests: small tree, short
/// epochs, batches large enough for the application setup transactions.
fn test_db(num_objects: u64) -> ObladiDb {
    let mut config = ObladiConfig::small_for_tests(num_objects);
    // Enough read batches per epoch for the longest chain of *dependent*
    // reads the TPC-C transactions issue (each sequentially-issued read
    // consumes one batch, §6.4).
    config.epoch.read_batches = 40;
    config.epoch.read_batch_size = 16;
    config.epoch.write_batch_size = 160;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.executor_threads = 4;
    // Application rows (TPC-C, YCSB) are larger than the tiny default test
    // block size.
    config.oram.block_size = 256;
    ObladiDb::open(config).expect("failed to open test proxy")
}

#[test]
fn smallbank_runs_on_obladi_and_conserves_money() {
    let db = test_db(4_096);
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_accounts: 40,
        hotspot_fraction: 0.1,
        hotspot_probability: 0.25,
    });
    workload.setup(&db).unwrap();

    let before = workload.total_balance(&db).unwrap();
    // SendPayment and Amalgamate only move money between accounts, so the
    // total balance is invariant under them (serializability + atomicity).
    let mut rng = obladi_common::rng::DetRng::new(11);
    let mut committed = 0;
    for i in 0..40 {
        let kind = if i % 2 == 0 {
            obladi::workloads::SmallBankTxn::SendPayment
        } else {
            obladi::workloads::SmallBankTxn::Amalgamate
        };
        if workload.run_txn(&db, kind, &mut rng).unwrap() {
            committed += 1;
        }
    }
    assert!(committed > 0, "some transactions must commit");

    let after = workload.total_balance(&db).unwrap();
    assert_eq!(
        after, before,
        "money created or destroyed by transfers: {before} -> {after}"
    );
    db.shutdown();
}

#[test]
fn ycsb_reads_see_committed_writes_on_obladi() {
    let db = test_db(2_048);
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 64,
        read_proportion: 0.5,
        ops_per_txn: 3,
        zipf_theta: 0.5,
        value_size: 24,
    });
    workload.setup(&db).unwrap();
    let stats = run_fixed_count(&db, &workload, 40, 5).unwrap();
    assert!(stats.committed > 0);
    db.shutdown();
}

#[test]
fn tpcc_new_orders_commit_on_obladi() {
    let db = test_db(4_096);
    let workload = TpccWorkload::new(TpccConfig::small());
    workload.setup(&db).unwrap();

    let mut rng = obladi_common::rng::DetRng::new(3);
    let mut committed = 0;
    for _ in 0..10 {
        if workload.new_order(&db, &mut rng).unwrap() {
            committed += 1;
        }
    }
    assert!(committed >= 5, "only {committed}/10 new orders committed");

    // District order counters must reflect the committed orders.
    let total_orders: u64 = (0..2)
        .map(|d| workload.district_next_order(&db, 0, d).unwrap())
        .sum();
    assert_eq!(total_orders as usize, committed);
    db.shutdown();
}

#[test]
fn freehealth_mix_runs_on_obladi() {
    let db = test_db(4_096);
    let workload = FreeHealthWorkload::new(FreeHealthConfig {
        users: 2,
        patients: 12,
        drugs: 8,
        episodes_per_patient: 1,
        list_limit: 2,
    });
    workload.setup(&db).unwrap();
    let stats = run_fixed_count(&db, &workload, 40, 21).unwrap();
    assert!(
        stats.committed as f64 / 40.0 > 0.5,
        "commit rate too low on Obladi: {}",
        stats.summary()
    );
    db.shutdown();
}

#[test]
fn same_workload_gives_same_final_state_on_obladi_and_2pl() {
    // Determinism check across engines: a single-threaded workload applied
    // to Obladi and to the plain 2PL engine must end in the same state.
    let obladi = test_db(2_048);
    let twopl = TwoPhaseLockingDb::new();

    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 32,
        read_proportion: 0.0,
        ops_per_txn: 2,
        zipf_theta: 0.0,
        value_size: 16,
    });
    workload.setup(&obladi).unwrap();
    workload.setup(&twopl).unwrap();
    run_fixed_count(&obladi, &workload, 30, 77).unwrap();
    run_fixed_count(&twopl, &workload, 30, 77).unwrap();

    for key_index in 0..32u64 {
        let key = obladi::workloads::pack_key(1, key_index, 0, 0);
        let a = obladi
            .execute(&mut |txn: &mut dyn KvTransaction| txn.read(key))
            .unwrap();
        let b = twopl
            .execute(&mut |txn: &mut dyn KvTransaction| txn.read(key))
            .unwrap();
        assert_eq!(a, b, "state diverged at key index {key_index}");
    }
    obladi.shutdown();
}

#[test]
fn concurrent_clients_on_obladi_commit_their_writes() {
    let db = std::sync::Arc::new(test_db(4_096));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..6u64 {
                    let key = 10_000 + t * 100 + i;
                    loop {
                        let mut txn = db.begin().unwrap();
                        if txn.write(key, key.to_le_bytes().to_vec()).is_err() {
                            continue;
                        }
                        match txn.commit() {
                            Ok(outcome) if outcome.is_committed() => break,
                            _ => continue,
                        }
                    }
                }
            });
        }
    });
    let mut txn = db.begin().unwrap();
    for t in 0..4u64 {
        for i in 0..6u64 {
            let key = 10_000 + t * 100 + i;
            assert_eq!(
                txn.read(key).unwrap(),
                Some(key.to_le_bytes().to_vec()),
                "lost write for key {key}"
            );
        }
    }
    txn.commit().unwrap();
    db.shutdown();
}
