//! Early commit acknowledgement: read-only fast acks (ISSUE 10).
//!
//! A read-only transaction with no same-epoch dependencies is acknowledged
//! at the epoch's decision instant — before the epoch's write-back and
//! checkpoint run.  This differential test proves the ordering with an
//! instrumented [`EpochGate`] that *parks* the write-back of the epoch
//! containing the probe transaction: if the acknowledgement depended on the
//! checkpoint (the old publish-time behaviour), `commit()` could never
//! return while the park is in force.  Storage is latency-bound so the
//! write-back window is physically wide even without the park.
//!
//! The depth-1 control runs the identical probe with the pipeline disabled:
//! the fast ack comes from the decision/durable-tail split, not from epoch
//! pipelining, so it must hold at depth 1 too.

use obladi_common::config::{BackendKind, ObladiConfig};
use obladi_common::latency::{LatencyModel, LatencyProfile};
use obladi_common::types::{EpochId, TxnId};
use obladi_core::{CandidateSource, EpochGate, ObladiDb, TxnPreparer};
use obladi_crypto::KeyMaterial;
use obladi_storage::{InMemoryStore, LatencyStore, TrustedCounter};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Permits every candidate, and parks the write-back of the epoch whose
/// commit candidates included the registered probe transaction until the
/// test releases it.  `write_back_finished` epochs are logged so the test
/// can assert the probe's epoch had *not* checkpointed when its commit was
/// acknowledged.
#[derive(Default)]
struct HoldWriteBackGate {
    /// The transaction whose epoch should have its write-back parked.
    target: Mutex<Option<TxnId>>,
    /// The epoch whose candidates included the target.
    held_epoch: Mutex<Option<EpochId>>,
    /// Epochs whose write-back (incl. checkpoint) completed.
    finished: Mutex<Vec<EpochId>>,
    released: AtomicBool,
    wakeup: Condvar,
}

impl HoldWriteBackGate {
    fn arm(&self, txn: TxnId) {
        *self.target.lock() = Some(txn);
    }

    /// Clears a stale hold after an aborted probe attempt so the parked
    /// write-back (if any) resumes and the pipeline drains for a retry.
    fn disarm(&self) {
        *self.target.lock() = None;
        let mut held = self.held_epoch.lock();
        *held = None;
        self.wakeup.notify_all();
    }

    fn release(&self) {
        self.released.store(true, Ordering::SeqCst);
        self.wakeup.notify_all();
    }
}

impl EpochGate for HoldWriteBackGate {
    fn permit_commits(
        &self,
        epoch: EpochId,
        candidates: CandidateSource,
        _preparer: TxnPreparer,
    ) -> obladi_common::error::Result<Vec<TxnId>> {
        let sampled = candidates();
        let target = *self.target.lock();
        if let Some(target) = target {
            if sampled.iter().any(|candidate| candidate.txn == target) {
                *self.held_epoch.lock() = Some(epoch);
            }
        }
        Ok(sampled.into_iter().map(|candidate| candidate.txn).collect())
    }

    fn write_back_starting(&self, epoch: EpochId) {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut held = self.held_epoch.lock();
        while *held == Some(epoch)
            && !self.released.load(Ordering::SeqCst)
            && Instant::now() < deadline
        {
            self.wakeup.wait_for(&mut held, Duration::from_millis(100));
        }
    }

    fn write_back_finished(&self, epoch: EpochId) {
        self.finished.lock().push(epoch);
    }

    fn proxy_stopping(&self) {
        self.release();
    }

    fn proxy_crashed(&self) {
        self.release();
    }
}

/// Opens a proxy at the given pipeline depth over latency-bound storage
/// with the hold gate installed.
fn open_gated(depth: u32, seed: u64) -> (ObladiDb, Arc<HoldWriteBackGate>) {
    let mut config = ObladiConfig::small_for_tests(2_048);
    config.epoch.pipeline_depth = depth;
    config.epoch.batch_interval = Duration::from_millis(2);
    config.seed = seed;
    let mut profile = LatencyProfile::for_backend(BackendKind::Server);
    profile.read = LatencyModel::with_mean(Duration::from_micros(20));
    profile.write = LatencyModel::with_mean(Duration::from_micros(200));
    let store: Arc<dyn obladi_storage::UntrustedStore> = Arc::new(LatencyStore::new(
        Arc::new(InMemoryStore::new()),
        profile,
        seed,
    ));
    let db = ObladiDb::open_with(
        config,
        store,
        TrustedCounter::new(),
        KeyMaterial::for_tests(seed),
    )
    .expect("open over latency-bound storage");
    let gate = Arc::new(HoldWriteBackGate::default());
    db.set_epoch_gate(gate.clone());
    (db, gate)
}

fn run_probe(depth: u32, seed: u64) {
    let (db, gate) = open_gated(depth, seed);

    // Seed a committed base version so the probe's read is dependency-free.
    let seeded = (0..50).any(|_| {
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(_) => return false,
        };
        if txn.write(1, b"base".to_vec()).is_err() {
            return false;
        }
        txn.commit().map(|o| o.is_committed()).unwrap_or(false)
    });
    assert!(seeded, "could not seed the base version");

    // Drive the read-only probe until one commits.  Each attempt arms the
    // gate with the probe's id; the epoch that samples it as a commit
    // candidate has its write-back parked, so the only way `commit()` can
    // return `Committed` below is the decision-instant acknowledgement.
    let mut committed_epoch = None;
    for _ in 0..50 {
        let mut txn = match db.begin() {
            Ok(txn) => txn,
            Err(_) => continue,
        };
        gate.arm(txn.id());
        match txn.read(1) {
            Ok(Some(value)) => assert_eq!(value, b"base".to_vec()),
            _ => {
                gate.disarm();
                continue;
            }
        }
        match txn.commit() {
            Ok(outcome) if outcome.is_committed() => {
                committed_epoch = *gate.held_epoch.lock();
                break;
            }
            _ => gate.disarm(),
        }
    }
    let epoch = committed_epoch.expect("the read-only probe never committed");

    // The acknowledgement arrived while the probe epoch's write-back was
    // still parked: its checkpoint cannot have completed.
    let finished = gate.finished.lock().clone();
    assert!(
        !finished.contains(&epoch),
        "depth {depth}: epoch {epoch} checkpointed before the read-only ack \
         (finished: {finished:?})"
    );

    gate.release();
    db.shutdown();
}

#[test]
fn read_only_ack_precedes_the_checkpoint_at_depth_two() {
    run_probe(2, 0xEA2);
}

/// Depth-1 control: the fast ack is a property of the decision/durable-tail
/// split, not of the pipelined barrier, so it must hold with the pipeline
/// disabled as well.
#[test]
fn read_only_ack_precedes_the_checkpoint_at_depth_one() {
    run_probe(1, 0xEA1);
}
