//! Durability and crash recovery (§8, Appendix A).
//!
//! The durability manager owns everything the proxy must persist to survive
//! a crash without losing committed epochs or leaking information during
//! recovery:
//!
//! * **Path logs** — before any batch of physical reads executes, the exact
//!   set of `(bucket, slot)` pairs is encrypted and appended to the
//!   write-ahead log.  After a crash, recovery replays those reads so the
//!   adversary observes the same access pattern whether or not the epoch
//!   aborted.
//! * **Checkpoints** — at the end of every epoch the proxy metadata
//!   (position map delta, permutation/validity metadata of dirty buckets,
//!   the padded stash, and the access/eviction counters) is encrypted and
//!   logged.  Every `checkpoint_every` epochs a *full* checkpoint replaces
//!   the delta chain (Figure 11a sweeps this frequency).
//! * **Epoch-commit records and the trusted counter** — an epoch becomes
//!   durable only once its commit record is logged and the trusted counter
//!   `F_epc` advances; recovery reverts everything newer.
//!
//! Bucket data itself needs no undo log: storage shadow-pages bucket writes,
//! so recovery simply reverts each bucket to the version recorded in the
//! recovered metadata (the version is a deterministic function of the
//! eviction schedule, as the paper observes).

use obladi_common::config::{EpochConfig, OramConfig};
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{EpochId, Key, TxnId, Value};
use obladi_crypto::{Envelope, KeyMaterial, SealedBlock, Sha256};
use obladi_oram::client::{PathLogger, SlotRead};
use obladi_oram::{CheckpointSource, ExecOptions, MetaDelta, OramMeta, RingOram};
use obladi_storage::wal::{WalRecord, WalRecordKind, WriteAheadLog};
use obladi_storage::{TrustedCounter, UntrustedStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguished "location" tags binding checkpoint ciphertexts to their
/// record kind (the WAL sequence number provides uniqueness; the location
/// tag prevents cross-kind substitution).
const LOC_PATH_LOG: u64 = 0xA001;
const LOC_DELTA: u64 = 0xA002;
const LOC_FULL: u64 = 0xA003;
const LOC_PREPARE: u64 = 0xA004;
const LOC_DECISION: u64 = 0xA005;

/// A 2PC prepare record whose epoch never became durable: the shard voted
/// to commit `txn` and crashed before its epoch commit, so only the
/// deployment coordinator knows the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InDoubtTxn {
    txn: TxnId,
    writes: Vec<(Key, Value)>,
}

/// Prepared transactions a recovery can vouch for to the coordinator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredTxns {
    /// In-doubt prepares the coordinator decided to commit, replayed from
    /// their records and made durable by *this* recovery.
    pub replayed: Vec<TxnId>,
    /// Prepared transactions whose epoch was already at or below the
    /// durable frontier when the shard crashed.  Their fate is settled on
    /// this shard, but the crash may have interrupted the normal
    /// durability acknowledgement — the caller re-acknowledges them so a
    /// pending coordinator decision cannot stay pinned forever.
    pub stale_prepared: Vec<TxnId>,
}

/// Outcome of resolving the prepare records: the merged write set of the
/// committed in-doubt transactions plus the ids to acknowledge.
type ResolvedInDoubt = (Vec<(Key, Value)>, RecoveredTxns);

/// A decoded epoch decision record: the committed transaction ids and the
/// epoch's merged write set.
type DecodedDecision = (Vec<TxnId>, Vec<(Key, Value)>);

fn encode_writes(writes: &[(Key, Value)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + writes.len() * 16);
    out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
    for (key, value) in writes {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(value);
    }
    out
}

fn decode_writes(body: &[u8]) -> Result<Vec<(Key, Value)>> {
    let too_short = || ObladiError::Codec("prepare write set truncated".into());
    let mut at = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        let slice = body.get(at..at + n).ok_or_else(too_short)?;
        at += n;
        Ok(slice)
    };
    let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut writes = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let key = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        writes.push((key, take(len)?.to_vec()));
    }
    if at != body.len() {
        return Err(ObladiError::Codec(
            "prepare write set has trailing bytes".into(),
        ));
    }
    Ok(writes)
}

/// Timing breakdown of one recovery, mirroring the rows of Table 11b.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Total wall-clock recovery time in milliseconds.
    pub total_ms: f64,
    /// Time spent reading recovery data from storage.
    pub network_ms: f64,
    /// Time spent decrypting / decoding position-map state.
    pub position_ms: f64,
    /// Time spent decrypting / decoding permutation (bucket) state.
    pub permutation_ms: f64,
    /// Time spent replaying logged read paths.
    pub paths_ms: f64,
    /// Number of buckets reverted on storage.
    pub buckets_reverted: u64,
    /// Number of physical reads replayed.
    pub reads_replayed: u64,
    /// Epoch the system recovered to.
    pub recovered_epoch: EpochId,
    /// 2PC-prepared transactions found in doubt (voted, epoch not durable).
    pub in_doubt: u64,
    /// In-doubt transactions the coordinator decided to commit, replayed
    /// from their prepare records and made durable during this recovery.
    pub replayed_commits: u64,
    /// Torn tail records dropped from the WAL (truncated or garbled by the
    /// crash mid-append).
    pub dropped_records: u64,
    /// Distinct in-doubt epochs whose logged read paths were replayed.  With
    /// the pipelined epoch barrier a crash can leave *two* epochs in doubt
    /// (the deciding epoch and the executing epoch behind it); both are
    /// replayed, in order.
    pub epochs_replayed: u64,
}

/// Durable state handling for the Obladi proxy.
pub struct DurabilityManager {
    wal: WriteAheadLog,
    envelope: Envelope,
    counter: Arc<TrustedCounter>,
    store: Arc<dyn UntrustedStore>,
    enabled: bool,
    checkpoint_every: u32,
    max_position_delta: usize,
    write_batch_size: usize,
    current_epoch: AtomicU64,
}

impl DurabilityManager {
    /// Creates a durability manager.
    pub fn new(
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        counter: Arc<TrustedCounter>,
        epoch_config: &EpochConfig,
    ) -> Self {
        let wal = WriteAheadLog::new(store.clone());
        // The trusted counter is the authority on the durable frontier;
        // seeding the WAL's ordering rule from it makes the rule live from
        // the first append (a fresh deployment starts at 0).
        wal.set_commit_frontier(counter.epoch());
        DurabilityManager {
            wal,
            envelope: Envelope::new(keys),
            counter,
            store,
            enabled: epoch_config.durability,
            checkpoint_every: epoch_config.checkpoint_every.max(1),
            max_position_delta: epoch_config.max_position_delta(),
            write_batch_size: epoch_config.write_batch_size,
            current_epoch: AtomicU64::new(1),
        }
    }

    /// Whether durability logging is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Tells the manager which epoch is currently executing (bound into
    /// path-log records).
    pub fn set_current_epoch(&self, epoch: EpochId) {
        self.current_epoch.store(epoch, Ordering::SeqCst);
    }

    /// The trusted counter.
    pub fn counter(&self) -> &Arc<TrustedCounter> {
        &self.counter
    }

    /// Records that a read batch is about to execute (advances the trusted
    /// batch counter, Appendix A).
    pub fn begin_read_batch(&self) {
        if self.enabled {
            self.counter.advance_batch();
        }
    }

    /// Durably logs a 2PC prepare record for `txn`: the transaction's write
    /// set (plus a SHA-256 digest binding it), sealed and appended to the
    /// WAL *before* the shard's commit vote may count at the deployment
    /// coordinator.  If the shard crashes between the vote and its epoch
    /// commit, [`DurabilityManager::recover_resolving`] finds the record,
    /// asks the coordinator for the outcome, and replays the commit —
    /// closing the window in which half of a cross-shard transaction could
    /// be lost.
    ///
    /// The envelope is sealed at `(LOC_PREPARE, txn)`; the transaction id in
    /// the clear framing lets recovery pick the right counter, and the
    /// epoch is bound *inside* the sealed plaintext (the clear WAL epoch
    /// field alone is unauthenticated — a malicious store could otherwise
    /// move a stale prepare above the durable frontier and trick recovery
    /// into replaying old writes).  Prepare records from epochs at or below
    /// the durable frontier are stale (the epoch's fate is known) and are
    /// retired by normal log compaction.
    pub fn prepare_txn(&self, epoch: EpochId, txn: TxnId, writes: &[(Key, Value)]) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        let body = encode_writes(writes);
        let digest = Sha256::digest(&body);
        let mut plain = Vec::with_capacity(8 + 32 + body.len());
        plain.extend_from_slice(&epoch.to_le_bytes());
        plain.extend_from_slice(&digest);
        plain.extend_from_slice(&body);
        let sealed = self.envelope.seal(LOC_PREPARE, txn, &plain, plain.len())?;
        let mut payload = Vec::with_capacity(8 + sealed.bytes.len());
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&sealed.bytes);
        self.wal.append(WalRecordKind::Prepare, epoch, &payload)?;
        Ok(())
    }

    /// Durably logs the epoch's commit decision: the committed transaction
    /// ids plus the epoch's merged committed write set, sealed and appended
    /// to the WAL *after* the verdict but *before* write-back and the
    /// checkpoint run.  Once this record is durable, the decider may
    /// acknowledge the epoch's write transactions to their clients: a crash
    /// anywhere in the remaining tail is survivable because
    /// [`DurabilityManager::recover_resolving`] replays the decided epoch
    /// from this record alone, without consulting the coordinator.
    ///
    /// The envelope is sealed at `(LOC_DECISION, epoch)` with the epoch
    /// additionally bound inside the sealed plaintext and the body covered
    /// by a SHA-256 digest, mirroring [`DurabilityManager::prepare_txn`]'s
    /// defence against frame tampering by a malicious store.
    pub fn decision_durable(
        &self,
        epoch: EpochId,
        committed: &[TxnId],
        writes: &[(Key, Value)],
    ) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        let mut body = Vec::with_capacity(4 + committed.len() * 8);
        body.extend_from_slice(&(committed.len() as u32).to_le_bytes());
        for txn in committed {
            body.extend_from_slice(&txn.to_le_bytes());
        }
        body.extend_from_slice(&encode_writes(writes));
        let digest = Sha256::digest(&body);
        let mut plain = Vec::with_capacity(8 + 32 + body.len());
        plain.extend_from_slice(&epoch.to_le_bytes());
        plain.extend_from_slice(&digest);
        plain.extend_from_slice(&body);
        let sealed = self
            .envelope
            .seal(LOC_DECISION, epoch, &plain, plain.len())?;
        self.wal
            .append(WalRecordKind::Decision, epoch, &sealed.bytes)?;
        Ok(())
    }

    /// Opens and verifies one decision record, returning the committed
    /// transaction ids and the epoch's merged write set.
    fn decode_decision(&self, record: &WalRecord) -> Result<DecodedDecision> {
        let sealed = SealedBlock {
            bytes: record.payload.to_vec(),
        };
        let plain = self.envelope.open(LOC_DECISION, record.epoch, &sealed)?;
        if plain.len() < 40 {
            return Err(ObladiError::Codec("decision payload too short".into()));
        }
        let sealed_epoch = u64::from_le_bytes(plain[..8].try_into().unwrap());
        if sealed_epoch != record.epoch {
            return Err(ObladiError::Integrity(format!(
                "decision record: clear epoch {} contradicts sealed epoch {sealed_epoch} (frame \
                 tampering)",
                record.epoch
            )));
        }
        let (digest, body) = plain[8..].split_at(32);
        if Sha256::digest(body) != digest {
            return Err(ObladiError::Integrity(format!(
                "decision record for epoch {} fails its digest",
                record.epoch
            )));
        }
        if body.len() < 4 {
            return Err(ObladiError::Codec("decision id section truncated".into()));
        }
        let count = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
        let ids_end = 4usize
            .checked_add(
                count
                    .checked_mul(8)
                    .ok_or_else(|| ObladiError::Codec("decision id count overflows".into()))?,
            )
            .ok_or_else(|| ObladiError::Codec("decision id count overflows".into()))?;
        let ids_bytes = body
            .get(4..ids_end)
            .ok_or_else(|| ObladiError::Codec("decision id section truncated".into()))?;
        let committed = ids_bytes
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().unwrap()))
            .collect();
        let writes = decode_writes(&body[ids_end..])?;
        Ok((committed, writes))
    }

    /// Finds the deciding epoch's durable commit decision, if one reached
    /// the WAL before the crash.  A garbled decision record at the log tail
    /// is a torn append — the acknowledgements it would have authorised
    /// never happened, so presumed abort is correct — and is retired like a
    /// torn prepare; anywhere else it poisons recovery.
    fn find_decision(
        &self,
        records: &[WalRecord],
        epoch: EpochId,
        report: &mut RecoveryReport,
    ) -> Result<Option<DecodedDecision>> {
        let last_seq = records.last().map(|r| r.seq);
        let mut found = None;
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::Decision && r.epoch == epoch)
        {
            match self.decode_decision(record) {
                Ok(decision) => found = Some(decision),
                Err(_) if Some(record.seq) == last_seq => {
                    self.wal.truncate_tail(record.seq)?;
                    report.dropped_records += 1;
                }
                Err(err) => {
                    return Err(ObladiError::Recovery(format!(
                        "undecodable decision record {} amid later valid records: {err}",
                        record.seq
                    )))
                }
            }
        }
        Ok(found)
    }

    /// Opens and verifies one prepare record.
    fn decode_prepare(&self, record: &WalRecord) -> Result<InDoubtTxn> {
        if record.payload.len() < 8 {
            return Err(ObladiError::Codec("prepare record too short".into()));
        }
        let txn = u64::from_le_bytes(record.payload[..8].try_into().unwrap());
        let sealed = SealedBlock {
            bytes: record.payload[8..].to_vec(),
        };
        let plain = self.envelope.open(LOC_PREPARE, txn, &sealed)?;
        if plain.len() < 40 {
            return Err(ObladiError::Codec("prepare payload too short".into()));
        }
        let sealed_epoch = u64::from_le_bytes(plain[..8].try_into().unwrap());
        if sealed_epoch != record.epoch {
            return Err(ObladiError::Integrity(format!(
                "prepare record for txn {txn}: clear epoch {} contradicts sealed epoch \
                 {sealed_epoch} (frame tampering)",
                record.epoch
            )));
        }
        let (digest, body) = plain[8..].split_at(32);
        if Sha256::digest(body) != digest {
            return Err(ObladiError::Integrity(format!(
                "prepare record for txn {txn} fails its write-set digest"
            )));
        }
        Ok(InDoubtTxn {
            txn,
            writes: decode_writes(body)?,
        })
    }

    /// Scans `records` for in-doubt prepares (epoch past the durable
    /// frontier) and resolves them through `resolve`.  A prepare that fails
    /// to decode is dropped — and physically retired from the log — if it
    /// is the final WAL record (a torn append — the vote never counted);
    /// anywhere else it poisons recovery.
    ///
    /// Returns the merged, timestamp-ordered writes of the committed
    /// transactions (last writer per key wins, mirroring the write
    /// deduplication of a normal epoch) and their ids.
    fn resolve_in_doubt(
        &self,
        records: &[WalRecord],
        durable_epochs: EpochId,
        resolve: &dyn Fn(TxnId) -> bool,
        report: &mut RecoveryReport,
    ) -> Result<ResolvedInDoubt> {
        let last_seq = records.last().map(|r| r.seq);
        let mut in_doubt: Vec<InDoubtTxn> = Vec::new();
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::Prepare && r.epoch > durable_epochs)
        {
            match self.decode_prepare(record) {
                Ok(prepared) => {
                    // Re-prepared after an earlier recovery: keep one copy.
                    if !in_doubt.iter().any(|p| p.txn == prepared.txn) {
                        in_doubt.push(prepared);
                    }
                }
                Err(_) if Some(record.seq) == last_seq => {
                    self.wal.truncate_tail(record.seq)?;
                    report.dropped_records += 1;
                }
                Err(err) => {
                    return Err(ObladiError::Recovery(format!(
                        "undecodable prepare record {} amid later valid records: {err}",
                        record.seq
                    )))
                }
            }
        }
        report.in_doubt = in_doubt.len() as u64;
        in_doubt.sort_unstable_by_key(|p| p.txn);

        let mut merged: std::collections::BTreeMap<Key, Value> = std::collections::BTreeMap::new();
        let mut committed = Vec::new();
        for prepared in in_doubt {
            if resolve(prepared.txn) {
                for (key, value) in prepared.writes {
                    merged.insert(key, value);
                }
                committed.push(prepared.txn);
            }
        }
        report.replayed_commits = committed.len() as u64;

        let stale_prepared = self.stale_prepared(records, durable_epochs);

        Ok((
            merged.into_iter().collect(),
            RecoveredTxns {
                replayed: committed,
                stale_prepared,
            },
        ))
    }

    /// Prepares at or below the durable frontier are settled on this shard,
    /// but the crash may have landed *between* the epoch commit and the
    /// coordinator's durability acknowledgement — without a
    /// re-acknowledgement such a decision would stay pinned forever.
    /// Undecodable stale records are inert and skipped.
    fn stale_prepared(&self, records: &[WalRecord], durable_epochs: EpochId) -> Vec<TxnId> {
        let mut stale_prepared: Vec<TxnId> = records
            .iter()
            .filter(|r| r.kind == WalRecordKind::Prepare && r.epoch <= durable_epochs)
            .filter_map(|record| self.decode_prepare(record).ok().map(|p| p.txn))
            .collect();
        stale_prepared.sort_unstable();
        stale_prepared.dedup();
        stale_prepared
    }

    /// Checkpoints the proxy metadata for `epoch` and marks the epoch
    /// durable.  Every `checkpoint_every`-th epoch writes a full checkpoint,
    /// others write deltas.
    ///
    /// `oram` is whichever half of the client can produce checkpoints: the
    /// monolithic [`RingOram`] facade (recovery replay) or the proxy's
    /// [`obladi_oram::WritebackEngine`], whose checkpoint methods quiesce
    /// the concurrent read plane first so the delta can never capture a
    /// block that is physically in flight and findable nowhere.
    pub fn commit_epoch(&self, epoch: EpochId, oram: &mut dyn CheckpointSource) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        // The first epoch is always a full checkpoint (it is the base every
        // later delta applies to); afterwards every `checkpoint_every`-th
        // epoch refreshes the base.
        let full = epoch == 1 || epoch.is_multiple_of(self.checkpoint_every as u64);
        if full {
            let payload = oram.checkpoint_full()?;
            let sealed = self
                .envelope
                .seal(LOC_FULL, epoch, &payload, payload.len())?;
            self.wal
                .append(WalRecordKind::CheckpointFull, epoch, &sealed.bytes)?;
        } else {
            let delta = oram.checkpoint_delta(self.max_position_delta)?;
            let payload = delta.encode();
            let sealed = self
                .envelope
                .seal(LOC_DELTA, epoch, &payload, payload.len())?;
            self.wal
                .append(WalRecordKind::CheckpointDelta, epoch, &sealed.bytes)?;
        }
        self.wal.append(WalRecordKind::EpochCommit, epoch, &[])?;
        self.counter.advance_epoch_to(epoch);
        Ok(())
    }

    /// Recovers the proxy's ORAM state after a crash.
    ///
    /// Steps (§8): find the last durable epoch from the trusted counter,
    /// rebuild the client metadata from the latest full checkpoint plus the
    /// delta chain, revert shadow-paged buckets that the aborted epoch wrote,
    /// and replay the aborted epoch's logged read paths so the adversary
    /// observes a deterministic pattern.
    pub fn recover(
        &self,
        fallback_config: OramConfig,
        keys: &KeyMaterial,
        options: ExecOptions,
        seed: u64,
    ) -> Result<(RingOram, EpochId, RecoveryReport)> {
        let (oram, next_epoch, report, _) =
            self.recover_resolving(fallback_config, keys, options, seed, &|_| false)?;
        Ok((oram, next_epoch, report))
    }

    /// Like [`DurabilityManager::recover`], but additionally resolves
    /// in-doubt 2PC-prepared transactions (§8 + the sharded durable-prepare
    /// protocol).
    ///
    /// A prepare record whose epoch never became durable means this shard
    /// voted to commit a cross-shard transaction and crashed before its
    /// epoch commit; the peers may have made their halves durable.
    /// `resolve(txn)` asks the deployment coordinator for the outcome:
    /// `true` (committed) replays the prepared write set into the recovered
    /// ORAM and commits the aborted epoch durably before the proxy resumes,
    /// `false` presumes abort (the default for a single proxy, where no
    /// vote can have counted).  Returns the replayed transaction ids so the
    /// caller can acknowledge them to the coordinator.
    pub fn recover_resolving(
        &self,
        fallback_config: OramConfig,
        keys: &KeyMaterial,
        options: ExecOptions,
        seed: u64,
        resolve: &dyn Fn(TxnId) -> bool,
    ) -> Result<(RingOram, EpochId, RecoveryReport, RecoveredTxns)> {
        let mut report = RecoveryReport::default();
        let recovery_start = std::time::Instant::now();
        let durable_epochs = self.counter.epoch();
        report.recovered_epoch = durable_epochs;
        // Re-arm the WAL's ordering rule from the trusted counter: the
        // in-memory frontier may sit ahead of it when the crash interrupted
        // a commit append, and the replay below re-commits that epoch.
        self.wal.set_commit_frontier(durable_epochs);

        // ---- Read everything we need from the recovery unit.  A crash can
        // tear the final append, so the tolerant reader drops a garbled
        // tail record instead of refusing to recover — and the fragment is
        // physically retired right away: once recovery (or the resumed
        // proxy) appends records behind it, it would read as unexplained
        // mid-log corruption and poison every later recovery. ----
        let net_start = std::time::Instant::now();
        let (records, torn) = self.wal.read_from_tolerant(0)?;
        if let Some(torn_seq) = torn {
            self.wal.truncate_tail(torn_seq)?;
            report.dropped_records += 1;
        }
        report.network_ms = net_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Rebuild metadata from checkpoints. ----
        let mut meta: Option<OramMeta> = None;
        let mut base_epoch = 0u64;
        let pos_start = std::time::Instant::now();
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::CheckpointFull && r.epoch <= durable_epochs)
        {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_FULL, record.epoch, &sealed)?;
            meta = Some(OramMeta::decode_full(&plain)?);
            base_epoch = record.epoch;
        }
        let mut meta = match meta {
            Some(m) => m,
            None => {
                if durable_epochs > 0 {
                    return Err(ObladiError::Recovery(
                        "no full checkpoint found although epochs have committed".into(),
                    ));
                }
                // Nothing ever committed: rebuild a freshly initialised tree,
                // exactly as opening a new database would, so the client
                // metadata and the storage contents agree.  (Recovering fresh
                // metadata *without* re-initialising storage would leave the
                // two permuted differently, and every later access would keep
                // failing verification.)  There are no durable paths worth
                // replaying either: the position map is regenerated, so
                // post-recovery accesses are independent of anything the
                // adversary observed before the crash.
                let mut init_options = options;
                init_options.fast_init = fallback_config.num_objects > 50_000;
                let mut oram = RingOram::new(
                    fallback_config,
                    keys,
                    self.store.clone(),
                    init_options,
                    seed,
                )?;
                report.position_ms = pos_start.elapsed().as_secs_f64() * 1000.0;
                // Even with nothing durable the shard may have voted: a
                // cross-shard transaction prepared in the very first epoch
                // must still be resolved through the coordinator.
                let resolved =
                    self.replay_in_doubt(&records, 0, resolve, &mut oram, &mut report)?;
                let next_epoch = if resolved.replayed.is_empty() { 1 } else { 2 };
                report.total_ms = recovery_start.elapsed().as_secs_f64() * 1000.0;
                self.set_current_epoch(next_epoch);
                return Ok((oram, next_epoch, report, resolved));
            }
        };
        report.position_ms = pos_start.elapsed().as_secs_f64() * 1000.0;

        let perm_start = std::time::Instant::now();
        // An epoch can have several checkpoint records: a crash after the
        // checkpoint append but before the epoch-commit marker orphans the
        // first incarnation, and a later (replayed) incarnation of the same
        // epoch appends its own.  Only the *last* checkpoint of each epoch
        // describes the state the epoch-commit marker made durable, so the
        // orphans must not be applied.
        let mut deltas: std::collections::BTreeMap<EpochId, &WalRecord> =
            std::collections::BTreeMap::new();
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::CheckpointDelta)
            .filter(|r| r.epoch > base_epoch && r.epoch <= durable_epochs)
        {
            deltas.insert(record.epoch, record);
        }
        for record in deltas.into_values() {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_DELTA, record.epoch, &sealed)?;
            let delta = MetaDelta::decode(&plain)?;
            meta.apply_delta(&delta);
        }
        report.permutation_ms = perm_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Rebuild the ORAM client and undo the aborted epoch. ----
        let mut oram = RingOram::from_meta(meta, keys, self.store.clone(), options, seed);
        let revert_start = std::time::Instant::now();
        oram.revert_storage_to_meta()?;
        report.network_ms += revert_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Replay the in-doubt epochs' read paths, in order. ----
        //
        // With the pipelined barrier a crash can leave two epochs in doubt:
        // the *deciding* epoch (durable + 1 — it may hold prepares and a
        // checkpoint) and the *executing* epoch behind it (durable + 2 —
        // read-path logs only; its decision never started, so it can hold no
        // prepares).  The replay mirrors the live order: the deciding
        // epoch's paths, then its in-doubt write-back (below), then the
        // executing epoch's paths.
        let paths_start = std::time::Instant::now();
        let aborted_epoch = durable_epochs + 1;
        if self.replay_epoch_paths(&records, aborted_epoch, &mut oram, &mut report)? {
            report.epochs_replayed += 1;
        }
        report.paths_ms = paths_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Resolve 2PC-prepared transactions of the deciding epoch. ----
        let resolved =
            self.replay_in_doubt(&records, durable_epochs, resolve, &mut oram, &mut report)?;

        // ---- Replay the executing epoch's read paths. ----
        let paths_start = std::time::Instant::now();
        if self.replay_epoch_paths(&records, aborted_epoch + 1, &mut oram, &mut report)? {
            report.epochs_replayed += 1;
        }
        report.paths_ms += paths_start.elapsed().as_secs_f64() * 1000.0;

        let next_epoch = if resolved.replayed.is_empty() {
            aborted_epoch
        } else {
            aborted_epoch + 1
        };
        report.total_ms = recovery_start.elapsed().as_secs_f64() * 1000.0;

        self.set_current_epoch(next_epoch);
        Ok((oram, next_epoch, report, resolved))
    }

    /// Replays the logged read paths of one in-doubt epoch, returning
    /// whether the epoch had any.  Replay ignores read results (only the
    /// access pattern matters), so paths logged by a different pre-crash
    /// incarnation of the same epoch are harmless.
    fn replay_epoch_paths(
        &self,
        records: &[WalRecord],
        epoch: EpochId,
        oram: &mut RingOram,
        report: &mut RecoveryReport,
    ) -> Result<bool> {
        let mut found = false;
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::PathLog && r.epoch == epoch)
        {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_PATH_LOG, record.epoch, &sealed)?;
            let reads = SlotRead::decode_list(&plain)?;
            report.reads_replayed += reads.len() as u64;
            oram.replay_reads(&reads)?;
            found = true;
        }
        Ok(found)
    }

    /// Resolves and replays in-doubt prepared transactions, committing the
    /// aborted epoch durably when the coordinator decided to commit any of
    /// them.  `replayed` stays empty under presumed abort, which leaves the
    /// epoch aborted exactly as before.
    fn replay_in_doubt(
        &self,
        records: &[WalRecord],
        durable_epochs: EpochId,
        resolve: &dyn Fn(TxnId) -> bool,
        oram: &mut RingOram,
        report: &mut RecoveryReport,
    ) -> Result<RecoveredTxns> {
        if !self.enabled {
            return Ok(RecoveredTxns::default());
        }
        let aborted_epoch = durable_epochs + 1;
        // Decision-record first: if the deciding epoch's commit decision
        // reached the WAL, the epoch's outcome and merged write set are
        // known locally — the clients it acknowledged must see their writes
        // survive, so the epoch is replayed without consulting the
        // coordinator (whose in-memory decision may meanwhile have
        // retired).  The epoch's prepare records are subsumed: every
        // committed id is reported as replayed, so the caller's durability
        // acknowledgement covers them.
        let decision = self
            .find_decision(records, aborted_epoch, report)?
            .filter(|(committed, _)| !committed.is_empty());
        if let Some((committed, writes)) = decision {
            report.in_doubt = records
                .iter()
                .filter(|r| r.kind == WalRecordKind::Prepare && r.epoch > durable_epochs)
                .count() as u64;
            report.replayed_commits = committed.len() as u64;
            self.set_current_epoch(aborted_epoch);
            let capacity = self.write_batch_size.max(writes.len());
            oram.write_batch_padded(&writes, capacity, self)?;
            oram.flush_writes(self)?;
            self.commit_epoch(aborted_epoch, oram)?;
            report.recovered_epoch = aborted_epoch;
            return Ok(RecoveredTxns {
                replayed: committed,
                stale_prepared: self.stale_prepared(records, durable_epochs),
            });
        }
        let (writes, recovered) =
            self.resolve_in_doubt(records, durable_epochs, resolve, report)?;
        if recovered.replayed.is_empty() {
            return Ok(recovered);
        }
        // Replay the coordinator-committed write set exactly as the crashed
        // epoch would have written it — padded to the fixed write-batch size
        // so the recovery trace matches a normal epoch's — then make the
        // epoch durable.  Durability is atomic with the epoch commit, which
        // is what makes re-running recovery after a crash *during* this
        // replay idempotent.
        self.set_current_epoch(aborted_epoch);
        let capacity = self.write_batch_size.max(writes.len());
        oram.write_batch_padded(&writes, capacity, self)?;
        oram.flush_writes(self)?;
        self.commit_epoch(aborted_epoch, oram)?;
        // The replay moved the durable frontier; the report must say so.
        report.recovered_epoch = aborted_epoch;
        Ok(recovered)
    }

    /// Truncates WAL records that precede the most recent full checkpoint
    /// (log compaction; keeps recovery bounded).
    pub fn compact(&self) -> Result<()> {
        if let Some(full) = self.wal.latest_of_kind(WalRecordKind::CheckpointFull)? {
            self.wal.truncate(full.seq)?;
        }
        Ok(())
    }
}

impl DurabilityManager {
    /// A [`PathLogger`] whose records are tagged with an explicit epoch.
    ///
    /// With the split client, the read plane logs epoch `N+1`'s paths while
    /// the write-back engine concurrently logs epoch `N`'s eviction paths —
    /// a single shared "current epoch" register would let the two threads
    /// mislabel each other's records.  Each epoch thread instead carries its
    /// own tagged logger; the WAL's epoch-ordering rule still bounds how far
    /// ahead either may run.
    pub fn logger_for(&self, epoch: EpochId) -> EpochPathLogger<'_> {
        EpochPathLogger {
            manager: self,
            epoch,
        }
    }

    fn log_reads_for_epoch(&self, epoch: EpochId, reads: &[SlotRead]) -> Result<()> {
        if !self.enabled || reads.is_empty() {
            return Ok(());
        }
        let payload = SlotRead::encode_list(reads);
        let sealed = self
            .envelope
            .seal(LOC_PATH_LOG, epoch, &payload, payload.len())?;
        self.wal
            .append(WalRecordKind::PathLog, epoch, &sealed.bytes)?;
        Ok(())
    }
}

/// A [`PathLogger`] bound to one epoch (see
/// [`DurabilityManager::logger_for`]).
pub struct EpochPathLogger<'a> {
    manager: &'a DurabilityManager,
    epoch: EpochId,
}

impl PathLogger for EpochPathLogger<'_> {
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
        self.manager.log_reads_for_epoch(self.epoch, reads)
    }
}

impl PathLogger for DurabilityManager {
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
        self.log_reads_for_epoch(self.current_epoch.load(Ordering::SeqCst), reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::config::ObladiConfig;
    use obladi_oram::NoopPathLogger;
    use obladi_storage::InMemoryStore;

    fn setup(durability: bool) -> (DurabilityManager, RingOram, Arc<dyn UntrustedStore>) {
        let mut config = ObladiConfig::small_for_tests(128);
        config.epoch.durability = durability;
        let keys = KeyMaterial::for_tests(3);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let counter = TrustedCounter::new();
        let manager = DurabilityManager::new(&keys, store.clone(), counter, &config.epoch);
        let oram =
            RingOram::new(config.oram, &keys, store.clone(), ExecOptions::default(), 7).unwrap();
        (manager, oram, store)
    }

    fn keys() -> KeyMaterial {
        KeyMaterial::for_tests(3)
    }

    #[test]
    fn disabled_durability_is_a_noop() {
        let (manager, mut oram, store) = setup(false);
        manager.commit_epoch(1, &mut oram).unwrap();
        manager
            .log_reads(&[SlotRead {
                bucket: 0,
                slot: 0,
                version: 1,
            }])
            .unwrap();
        assert_eq!(
            WriteAheadLog::new(store).read_from(0).unwrap().len(),
            0,
            "nothing may be logged when durability is off"
        );
    }

    #[test]
    fn commit_epoch_advances_counter_and_logs() {
        let (manager, mut oram, store) = setup(true);
        assert_eq!(manager.counter().epoch(), 0);
        manager.commit_epoch(1, &mut oram).unwrap();
        assert_eq!(manager.counter().epoch(), 1);
        let records = WriteAheadLog::new(store).read_from(0).unwrap();
        assert!(records
            .iter()
            .any(|r| r.kind == WalRecordKind::EpochCommit && r.epoch == 1));
    }

    #[test]
    fn recovery_restores_committed_data_and_discards_uncommitted() {
        let (manager, mut oram, _store) = setup(true);
        manager.set_current_epoch(1);

        // Epoch 1: write keys 0..16 and commit durably.
        let writes: Vec<(u64, Vec<u8>)> = (0..16).map(|k| (k, vec![k as u8; 8])).collect();
        oram.write_batch(&writes, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: more writes that never commit (the proxy will crash).
        manager.set_current_epoch(2);
        let doomed: Vec<(u64, Vec<u8>)> = (0..16).map(|k| (k, vec![0xEE; 8])).collect();
        oram.write_batch(&doomed, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        // Crash: drop the ORAM client (volatile state lost).
        let config = *oram.config();
        drop(oram);

        let (mut recovered, next_epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 11)
            .unwrap();
        assert_eq!(next_epoch, 2, "system resumes at the aborted epoch");
        assert_eq!(report.recovered_epoch, 1);
        for k in 0..16u64 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                result[0],
                Some(vec![k as u8; 8]),
                "key {k} must have epoch-1 value after recovery"
            );
        }
    }

    #[test]
    fn recovery_with_nothing_durable_yields_a_working_empty_tree() {
        // Crash before any epoch commits: recovery must hand back a client
        // whose metadata matches the (re-initialised) storage, so that
        // subsequent epochs commit and their data stays readable.  This is
        // the regression test for acknowledged writes vanishing after a
        // crash at the very start of a run.
        let (manager, oram, _store) = setup(true);
        let config = *oram.config();
        drop(oram); // the crash loses the volatile client state

        let (mut recovered, next_epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 23)
            .unwrap();
        assert_eq!(
            next_epoch, 1,
            "nothing durable: the system restarts at epoch 1"
        );
        assert_eq!(report.recovered_epoch, 0);

        let writes: Vec<(u64, Vec<u8>)> = (0..24).map(|k| (k, vec![k as u8; 8])).collect();
        recovered.write_batch(&writes, &manager).unwrap();
        recovered.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut recovered).unwrap();
        for k in 0..24u64 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                result[0],
                Some(vec![k as u8; 8]),
                "key {k} unreadable after recovering an empty tree"
            );
            recovered.flush_writes(&NoopPathLogger).unwrap();
        }
    }

    #[test]
    fn recovery_replays_logged_paths() {
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        let writes: Vec<(u64, Vec<u8>)> = (0..8).map(|k| (k, vec![k as u8; 4])).collect();
        oram.write_batch(&writes, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2 issues some reads (logged), then the proxy crashes.
        manager.set_current_epoch(2);
        oram.read_batch(&[Some(1), Some(2), None], &manager)
            .unwrap();
        let config = *oram.config();
        drop(oram);

        store.reset_stats();
        let (_recovered, _epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 13)
            .unwrap();
        assert!(
            report.reads_replayed > 0,
            "the aborted epoch's reads must be replayed"
        );
        assert!(store.stats().slot_reads >= report.reads_replayed);
    }

    #[test]
    fn delta_and_full_checkpoints_compose() {
        let (manager, mut oram, _store) = setup(true);
        // checkpoint_every = 4 in the small test config: epoch 4 is full,
        // epochs 5..6 are deltas.
        for epoch in 1..=6u64 {
            manager.set_current_epoch(epoch);
            let writes: Vec<(u64, Vec<u8>)> =
                vec![(epoch, vec![epoch as u8; 8]), (100 + epoch, vec![1; 8])];
            oram.write_batch(&writes, &manager).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            manager.commit_epoch(epoch, &mut oram).unwrap();
        }
        let config = *oram.config();
        drop(oram);
        let (mut recovered, next_epoch, _report) = manager
            .recover(config, &keys(), ExecOptions::default(), 17)
            .unwrap();
        assert_eq!(next_epoch, 7);
        for epoch in 1..=6u64 {
            let result = recovered
                .read_batch(&[Some(epoch)], &NoopPathLogger)
                .unwrap();
            assert_eq!(result[0], Some(vec![epoch as u8; 8]), "epoch {epoch} write");
        }
    }

    #[test]
    fn in_doubt_prepare_is_presumed_aborted_without_a_decision() {
        let (manager, mut oram, _store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![0xAA; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: the shard votes (prepares) for txn 77, then crashes
        // before its epoch commit.
        manager.set_current_epoch(2);
        manager.prepare_txn(2, 77, &[(5, vec![0xBB; 8])]).unwrap();
        let config = *oram.config();
        drop(oram);

        let (mut recovered, next_epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 29)
            .unwrap();
        assert_eq!(report.in_doubt, 1);
        assert_eq!(report.replayed_commits, 0);
        assert_eq!(next_epoch, 2, "presumed abort leaves the epoch aborted");
        let result = recovered.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], None, "presumed-aborted write must not surface");
    }

    #[test]
    fn committed_in_doubt_prepare_is_replayed_and_made_durable() {
        let (manager, mut oram, _store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![0xAA; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: two transactions prepare; the coordinator committed only
        // txn 80.  Txn 81 wrote the same key later — it must NOT win.
        manager.set_current_epoch(2);
        manager
            .prepare_txn(2, 80, &[(5, b"commit".to_vec()), (6, b"keep".to_vec())])
            .unwrap();
        manager
            .prepare_txn(2, 81, &[(5, b"abort!".to_vec())])
            .unwrap();
        let config = *oram.config();
        drop(oram);

        let (mut recovered, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 31, &|txn| {
                txn == 80
            })
            .unwrap();
        assert_eq!(report.in_doubt, 2);
        assert_eq!(report.replayed_commits, 1);
        assert_eq!(resolved.replayed, vec![80]);
        assert_eq!(next_epoch, 3, "the replayed epoch is durable");
        assert_eq!(manager.counter().epoch(), 2);
        for (key, expected) in [(5u64, b"commit".to_vec()), (6, b"keep".to_vec())] {
            let result = recovered.read_batch(&[Some(key)], &NoopPathLogger).unwrap();
            assert_eq!(result[0], Some(expected), "key {key}");
            recovered.flush_writes(&NoopPathLogger).unwrap();
        }

        // Idempotence at the durability layer: a second crash + recovery
        // finds the prepare at or below the durable frontier — no longer in
        // doubt — and the replayed value survives.
        drop(recovered);
        let (mut again, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 33, &|txn| {
                txn == 80
            })
            .unwrap();
        assert_eq!(report.in_doubt, 0);
        assert!(resolved.replayed.is_empty());
        assert_eq!(
            resolved.stale_prepared,
            vec![80, 81],
            "settled prepares are re-vouched so pinned decisions can drain"
        );
        assert_eq!(next_epoch, 3);
        let result = again.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(b"commit".to_vec()));
    }

    #[test]
    fn decided_epoch_replays_from_its_decision_record_alone() {
        let (manager, mut oram, _store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![0xAA; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: txn 80 prepares, the decision record lands, and the
        // crash hits before write-back/checkpoint — the window in which the
        // client has already been acknowledged.
        manager.set_current_epoch(2);
        let writes = vec![(5u64, b"acked".to_vec()), (6, b"kept".to_vec())];
        manager.prepare_txn(2, 80, &writes).unwrap();
        manager.decision_durable(2, &[80], &writes).unwrap();
        let config = *oram.config();
        drop(oram);

        // The resolver pleads ignorance: the decision record alone must
        // carry the replay (a restarted coordinator has no memory).
        let (mut recovered, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 61, &|_| false)
            .unwrap();
        assert_eq!(report.replayed_commits, 1);
        assert_eq!(resolved.replayed, vec![80]);
        assert_eq!(next_epoch, 3, "the decided epoch is durable after replay");
        assert_eq!(manager.counter().epoch(), 2);
        for (key, expected) in [(5u64, b"acked".to_vec()), (6, b"kept".to_vec())] {
            let result = recovered.read_batch(&[Some(key)], &NoopPathLogger).unwrap();
            assert_eq!(result[0], Some(expected), "key {key}");
            recovered.flush_writes(&NoopPathLogger).unwrap();
        }

        // Idempotence: a second crash + recovery finds the decision at or
        // below the durable frontier and replays nothing.
        drop(recovered);
        let (mut again, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 62, &|_| false)
            .unwrap();
        assert_eq!(report.replayed_commits, 0);
        assert!(resolved.replayed.is_empty());
        assert_eq!(next_epoch, 3);
        let result = again.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(b"acked".to_vec()));
    }

    #[test]
    fn torn_decision_tail_is_retired_and_presumed_aborted() {
        // A garbled decision record at the log tail is a torn append: the
        // acknowledgements it would have authorised never happened, so the
        // epoch stays aborted and the fragment is physically retired.
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![1; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();
        manager.set_current_epoch(2);
        let wal = WriteAheadLog::new(store);
        wal.append(WalRecordKind::Decision, 2, &[0xEE; 48]).unwrap();
        let config = *oram.config();
        drop(oram);

        let (recovered, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 63, &|_| true)
            .unwrap();
        assert_eq!(report.dropped_records, 1);
        assert_eq!(report.replayed_commits, 0);
        assert!(resolved.replayed.is_empty());
        assert_eq!(next_epoch, 2, "presumed abort leaves the epoch aborted");
        drop(recovered);

        // The fragment must be gone: a later recovery sees a clean log.
        let (_again, _next, report, _) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 64, &|_| true)
            .unwrap();
        assert_eq!(report.dropped_records, 0);
    }

    #[test]
    fn prepare_in_the_first_epoch_replays_onto_a_fresh_tree() {
        // Crash before anything became durable, with a vote outstanding:
        // recovery rebuilds a fresh tree and must still finish the commit.
        let (manager, oram, _store) = setup(true);
        manager.set_current_epoch(1);
        manager
            .prepare_txn(1, 9, &[(3, b"first".to_vec())])
            .unwrap();
        let config = *oram.config();
        drop(oram);

        let (mut recovered, next_epoch, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 37, &|_| true)
            .unwrap();
        assert_eq!(report.replayed_commits, 1);
        assert_eq!(resolved.replayed, vec![9]);
        assert_eq!(next_epoch, 2);
        let result = recovered.read_batch(&[Some(3)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(b"first".to_vec()));
    }

    #[test]
    fn corrupt_trailing_prepare_is_dropped_but_mid_log_corruption_poisons() {
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![1; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();
        manager.set_current_epoch(2);
        manager.prepare_txn(2, 50, &[(2, vec![2; 8])]).unwrap();

        // A torn prepare append at the very tail: valid framing, garbage
        // ciphertext.  Recovery must drop it (its vote can never have
        // counted) without disturbing the earlier, valid prepare.
        let wal = WriteAheadLog::new(store.clone());
        let mut torn = 51u64.to_le_bytes().to_vec();
        torn.extend_from_slice(&[0xEE; 40]);
        wal.append(WalRecordKind::Prepare, 2, &torn).unwrap();

        let config = *oram.config();
        drop(oram);
        let (recovered, _next, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 41, &|_| true)
            .unwrap();
        assert_eq!(report.in_doubt, 1, "only the intact prepare is in doubt");
        assert_eq!(resolved.replayed, vec![50]);
        assert_eq!(report.dropped_records, 1);

        // The tolerated fragment must have been physically retired: the
        // replay just appended checkpoint/commit records behind where it
        // sat, so if it were still there, this second recovery would see
        // unexplained mid-log corruption and the shard would be
        // unrecoverable forever.
        drop(recovered);
        let (_again, _next, report, _) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 42, &|_| true)
            .unwrap();
        assert_eq!(
            report.dropped_records, 0,
            "the torn prepare must be gone from the log"
        );

        // The same garbage *followed by* a valid record is not a torn tail:
        // recovery must refuse rather than silently skip log damage.
        let store2: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let manager2 = {
            let mut config = ObladiConfig::small_for_tests(128);
            config.epoch.durability = true;
            DurabilityManager::new(
                &keys(),
                store2.clone(),
                TrustedCounter::new(),
                &config.epoch,
            )
        };
        let wal2 = WriteAheadLog::new(store2);
        let mut garbage = 60u64.to_le_bytes().to_vec();
        garbage.extend_from_slice(&[0xEE; 40]);
        wal2.append(WalRecordKind::Prepare, 1, &garbage).unwrap();
        wal2.append(WalRecordKind::PathLog, 1, b"later").unwrap();
        match manager2.recover_resolving(
            ObladiConfig::small_for_tests(128).oram,
            &keys(),
            ExecOptions::default(),
            43,
            &|_| true,
        ) {
            Ok(_) => panic!("mid-log corruption must poison recovery"),
            Err(err) => assert!(
                matches!(err, ObladiError::Recovery(_)),
                "unexpected error kind: {err}"
            ),
        }
    }

    #[test]
    fn prepare_with_tampered_epoch_is_never_replayed() {
        // A malicious store must not be able to lift a *stale* prepare
        // above the durable frontier (by rewriting the unauthenticated
        // clear epoch field of the frame) and trick recovery into rolling
        // keys back to old values.  The sealed plaintext binds the epoch,
        // so the forged record fails integrity instead of decoding.
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(5, b"v1".to_vec())], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: txn 90 prepares and commits durably (its prepare is now
        // stale), then epoch 3 overwrites the key.
        manager.set_current_epoch(2);
        manager
            .prepare_txn(2, 90, &[(5, b"stale".to_vec())])
            .unwrap();
        oram.write_batch(&[(5, b"stale".to_vec())], &manager)
            .unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(2, &mut oram).unwrap();
        manager.set_current_epoch(3);
        oram.write_batch(&[(5, b"newer".to_vec())], &manager)
            .unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(3, &mut oram).unwrap();

        // The attack: replay the retained prepare payload under a frame
        // epoch above the durable frontier.
        let wal = WriteAheadLog::new(store);
        let stale_prepare = wal
            .read_from(0)
            .unwrap()
            .into_iter()
            .find(|r| r.kind == WalRecordKind::Prepare)
            .expect("the stale prepare is still in the log");
        wal.append(WalRecordKind::Prepare, 4, &stale_prepare.payload)
            .unwrap();

        let config = *oram.config();
        drop(oram);
        // Coordinator still remembers txn 90 as committed (ack pending).
        let (mut recovered, _next, report, resolved) = manager
            .recover_resolving(config, &keys(), ExecOptions::default(), 47, &|txn| {
                txn == 90
            })
            .unwrap();
        assert_eq!(
            report.replayed_commits, 0,
            "the forged prepare must not be replayed: {report:?}"
        );
        assert!(resolved.replayed.is_empty());
        assert_eq!(
            resolved.stale_prepared,
            vec![90],
            "the genuine stale prepare is still vouched for"
        );
        assert!(report.dropped_records >= 1, "forged tail must be rejected");
        let result = recovered.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(
            result[0],
            Some(b"newer".to_vec()),
            "epoch-3 value must survive the replay attack"
        );
    }

    #[test]
    fn torn_frame_tail_is_retired_so_later_recoveries_survive() {
        // The regression behind WAL tail retirement: tolerate a torn frame,
        // resume, append more epochs, and the *next* recovery must not read
        // the old fragment as mid-log corruption.
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        oram.write_batch(&[(1, vec![1; 8])], &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();
        // The crash tears the final append below the frame header size.
        store
            .append_log(bytes::Bytes::from_static(&[6, 1, 2]))
            .unwrap();
        let config = *oram.config();
        drop(oram);

        let (mut recovered, _next, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 51)
            .unwrap();
        assert_eq!(report.dropped_records, 1);

        // Resume and commit another epoch (fresh records land where the
        // fragment used to sit).
        manager.set_current_epoch(2);
        recovered.write_batch(&[(2, vec![2; 8])], &manager).unwrap();
        recovered.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(2, &mut recovered).unwrap();
        drop(recovered);

        let (mut again, _next, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 53)
            .unwrap();
        assert_eq!(report.dropped_records, 0, "fragment must be long gone");
        let result = again.read_batch(&[Some(2)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(vec![2; 8]));
    }

    #[test]
    fn compaction_retires_stale_prepare_records() {
        let (manager, mut oram, store) = setup(true);
        // checkpoint_every = 4: epoch 4 writes a full checkpoint, so by
        // epoch 5 the epoch-2 prepare is behind the latest full checkpoint.
        for epoch in 1..=5u64 {
            manager.set_current_epoch(epoch);
            if epoch == 2 {
                manager.prepare_txn(2, 70, &[(epoch, vec![7; 4])]).unwrap();
            }
            oram.write_batch(&[(epoch, vec![epoch as u8; 4])], &manager)
                .unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            manager.commit_epoch(epoch, &mut oram).unwrap();
        }
        let wal = WriteAheadLog::new(store);
        assert!(wal
            .read_from(0)
            .unwrap()
            .iter()
            .any(|r| r.kind == WalRecordKind::Prepare));
        manager.compact().unwrap();
        assert!(
            !wal.read_from(0)
                .unwrap()
                .iter()
                .any(|r| r.kind == WalRecordKind::Prepare),
            "stale prepare records must be retired by compaction"
        );
    }

    #[test]
    fn compaction_keeps_recovery_working() {
        let (manager, mut oram, _store) = setup(true);
        for epoch in 1..=8u64 {
            manager.set_current_epoch(epoch);
            oram.write_batch(&[(epoch, vec![epoch as u8; 4])], &manager)
                .unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            manager.commit_epoch(epoch, &mut oram).unwrap();
        }
        manager.compact().unwrap();
        let config = *oram.config();
        drop(oram);
        let (mut recovered, _epoch, _report) = manager
            .recover(config, &keys(), ExecOptions::default(), 19)
            .unwrap();
        let result = recovered.read_batch(&[Some(8)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(vec![8u8; 4]));
    }
}
