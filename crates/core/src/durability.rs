//! Durability and crash recovery (§8, Appendix A).
//!
//! The durability manager owns everything the proxy must persist to survive
//! a crash without losing committed epochs or leaking information during
//! recovery:
//!
//! * **Path logs** — before any batch of physical reads executes, the exact
//!   set of `(bucket, slot)` pairs is encrypted and appended to the
//!   write-ahead log.  After a crash, recovery replays those reads so the
//!   adversary observes the same access pattern whether or not the epoch
//!   aborted.
//! * **Checkpoints** — at the end of every epoch the proxy metadata
//!   (position map delta, permutation/validity metadata of dirty buckets,
//!   the padded stash, and the access/eviction counters) is encrypted and
//!   logged.  Every `checkpoint_every` epochs a *full* checkpoint replaces
//!   the delta chain (Figure 11a sweeps this frequency).
//! * **Epoch-commit records and the trusted counter** — an epoch becomes
//!   durable only once its commit record is logged and the trusted counter
//!   `F_epc` advances; recovery reverts everything newer.
//!
//! Bucket data itself needs no undo log: storage shadow-pages bucket writes,
//! so recovery simply reverts each bucket to the version recorded in the
//! recovered metadata (the version is a deterministic function of the
//! eviction schedule, as the paper observes).

use obladi_common::config::{EpochConfig, OramConfig};
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::EpochId;
use obladi_crypto::{Envelope, KeyMaterial, SealedBlock};
use obladi_oram::client::{PathLogger, SlotRead};
use obladi_oram::{ExecOptions, MetaDelta, OramMeta, RingOram};
use obladi_storage::wal::{WalRecordKind, WriteAheadLog};
use obladi_storage::{TrustedCounter, UntrustedStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguished "location" tags binding checkpoint ciphertexts to their
/// record kind (the WAL sequence number provides uniqueness; the location
/// tag prevents cross-kind substitution).
const LOC_PATH_LOG: u64 = 0xA001;
const LOC_DELTA: u64 = 0xA002;
const LOC_FULL: u64 = 0xA003;

/// Timing breakdown of one recovery, mirroring the rows of Table 11b.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Total wall-clock recovery time in milliseconds.
    pub total_ms: f64,
    /// Time spent reading recovery data from storage.
    pub network_ms: f64,
    /// Time spent decrypting / decoding position-map state.
    pub position_ms: f64,
    /// Time spent decrypting / decoding permutation (bucket) state.
    pub permutation_ms: f64,
    /// Time spent replaying logged read paths.
    pub paths_ms: f64,
    /// Number of buckets reverted on storage.
    pub buckets_reverted: u64,
    /// Number of physical reads replayed.
    pub reads_replayed: u64,
    /// Epoch the system recovered to.
    pub recovered_epoch: EpochId,
}

/// Durable state handling for the Obladi proxy.
pub struct DurabilityManager {
    wal: WriteAheadLog,
    envelope: Envelope,
    counter: Arc<TrustedCounter>,
    store: Arc<dyn UntrustedStore>,
    enabled: bool,
    checkpoint_every: u32,
    max_position_delta: usize,
    current_epoch: AtomicU64,
}

impl DurabilityManager {
    /// Creates a durability manager.
    pub fn new(
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        counter: Arc<TrustedCounter>,
        epoch_config: &EpochConfig,
    ) -> Self {
        DurabilityManager {
            wal: WriteAheadLog::new(store.clone()),
            envelope: Envelope::new(keys),
            counter,
            store,
            enabled: epoch_config.durability,
            checkpoint_every: epoch_config.checkpoint_every.max(1),
            max_position_delta: epoch_config.max_position_delta(),
            current_epoch: AtomicU64::new(1),
        }
    }

    /// Whether durability logging is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Tells the manager which epoch is currently executing (bound into
    /// path-log records).
    pub fn set_current_epoch(&self, epoch: EpochId) {
        self.current_epoch.store(epoch, Ordering::SeqCst);
    }

    /// The trusted counter.
    pub fn counter(&self) -> &Arc<TrustedCounter> {
        &self.counter
    }

    /// Records that a read batch is about to execute (advances the trusted
    /// batch counter, Appendix A).
    pub fn begin_read_batch(&self) {
        if self.enabled {
            self.counter.advance_batch();
        }
    }

    /// Checkpoints the proxy metadata for `epoch` and marks the epoch
    /// durable.  Every `checkpoint_every`-th epoch writes a full checkpoint,
    /// others write deltas.
    pub fn commit_epoch(&self, epoch: EpochId, oram: &mut RingOram) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        // The first epoch is always a full checkpoint (it is the base every
        // later delta applies to); afterwards every `checkpoint_every`-th
        // epoch refreshes the base.
        let full = epoch == 1 || epoch.is_multiple_of(self.checkpoint_every as u64);
        if full {
            let payload = oram.checkpoint_full();
            let sealed = self
                .envelope
                .seal(LOC_FULL, epoch, &payload, payload.len())?;
            self.wal
                .append(WalRecordKind::CheckpointFull, epoch, &sealed.bytes)?;
        } else {
            let delta = oram.checkpoint_delta(self.max_position_delta);
            let payload = delta.encode();
            let sealed = self
                .envelope
                .seal(LOC_DELTA, epoch, &payload, payload.len())?;
            self.wal
                .append(WalRecordKind::CheckpointDelta, epoch, &sealed.bytes)?;
        }
        self.wal.append(WalRecordKind::EpochCommit, epoch, &[])?;
        self.counter.advance_epoch_to(epoch);
        Ok(())
    }

    /// Recovers the proxy's ORAM state after a crash.
    ///
    /// Steps (§8): find the last durable epoch from the trusted counter,
    /// rebuild the client metadata from the latest full checkpoint plus the
    /// delta chain, revert shadow-paged buckets that the aborted epoch wrote,
    /// and replay the aborted epoch's logged read paths so the adversary
    /// observes a deterministic pattern.
    pub fn recover(
        &self,
        fallback_config: OramConfig,
        keys: &KeyMaterial,
        options: ExecOptions,
        seed: u64,
    ) -> Result<(RingOram, EpochId, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let recovery_start = std::time::Instant::now();
        let durable_epochs = self.counter.epoch();
        report.recovered_epoch = durable_epochs;

        // ---- Read everything we need from the recovery unit. ----
        let net_start = std::time::Instant::now();
        let records = self.wal.read_from(0)?;
        report.network_ms = net_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Rebuild metadata from checkpoints. ----
        let mut meta: Option<OramMeta> = None;
        let mut base_epoch = 0u64;
        let pos_start = std::time::Instant::now();
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::CheckpointFull && r.epoch <= durable_epochs)
        {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_FULL, record.epoch, &sealed)?;
            meta = Some(OramMeta::decode_full(&plain)?);
            base_epoch = record.epoch;
        }
        let mut meta = match meta {
            Some(m) => m,
            None => {
                if durable_epochs > 0 {
                    return Err(ObladiError::Recovery(
                        "no full checkpoint found although epochs have committed".into(),
                    ));
                }
                // Nothing ever committed: rebuild a freshly initialised tree,
                // exactly as opening a new database would, so the client
                // metadata and the storage contents agree.  (Recovering fresh
                // metadata *without* re-initialising storage would leave the
                // two permuted differently, and every later access would keep
                // failing verification.)  There are no durable paths worth
                // replaying either: the position map is regenerated, so
                // post-recovery accesses are independent of anything the
                // adversary observed before the crash.
                let mut init_options = options;
                init_options.fast_init = fallback_config.num_objects > 50_000;
                let oram = RingOram::new(
                    fallback_config,
                    keys,
                    self.store.clone(),
                    init_options,
                    seed,
                )?;
                report.position_ms = pos_start.elapsed().as_secs_f64() * 1000.0;
                report.total_ms = recovery_start.elapsed().as_secs_f64() * 1000.0;
                self.set_current_epoch(1);
                return Ok((oram, 1, report));
            }
        };
        report.position_ms = pos_start.elapsed().as_secs_f64() * 1000.0;

        let perm_start = std::time::Instant::now();
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::CheckpointDelta)
            .filter(|r| r.epoch > base_epoch && r.epoch <= durable_epochs)
        {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_DELTA, record.epoch, &sealed)?;
            let delta = MetaDelta::decode(&plain)?;
            meta.apply_delta(&delta);
        }
        report.permutation_ms = perm_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Rebuild the ORAM client and undo the aborted epoch. ----
        let mut oram = RingOram::from_meta(meta, keys, self.store.clone(), options, seed);
        let revert_start = std::time::Instant::now();
        oram.revert_storage_to_meta()?;
        report.network_ms += revert_start.elapsed().as_secs_f64() * 1000.0;

        // ---- Replay the aborted epoch's read paths. ----
        let paths_start = std::time::Instant::now();
        let aborted_epoch = durable_epochs + 1;
        for record in records
            .iter()
            .filter(|r| r.kind == WalRecordKind::PathLog && r.epoch == aborted_epoch)
        {
            let sealed = SealedBlock {
                bytes: record.payload.to_vec(),
            };
            let plain = self.envelope.open(LOC_PATH_LOG, record.epoch, &sealed)?;
            let reads = SlotRead::decode_list(&plain)?;
            report.reads_replayed += reads.len() as u64;
            oram.replay_reads(&reads)?;
        }
        report.paths_ms = paths_start.elapsed().as_secs_f64() * 1000.0;
        report.total_ms = recovery_start.elapsed().as_secs_f64() * 1000.0;

        self.set_current_epoch(aborted_epoch);
        Ok((oram, aborted_epoch, report))
    }

    /// Truncates WAL records that precede the most recent full checkpoint
    /// (log compaction; keeps recovery bounded).
    pub fn compact(&self) -> Result<()> {
        if let Some(full) = self.wal.latest_of_kind(WalRecordKind::CheckpointFull)? {
            self.wal.truncate(full.seq)?;
        }
        Ok(())
    }
}

impl PathLogger for DurabilityManager {
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
        if !self.enabled || reads.is_empty() {
            return Ok(());
        }
        let epoch = self.current_epoch.load(Ordering::SeqCst);
        let payload = SlotRead::encode_list(reads);
        let sealed = self
            .envelope
            .seal(LOC_PATH_LOG, epoch, &payload, payload.len())?;
        self.wal
            .append(WalRecordKind::PathLog, epoch, &sealed.bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::config::ObladiConfig;
    use obladi_oram::NoopPathLogger;
    use obladi_storage::InMemoryStore;

    fn setup(durability: bool) -> (DurabilityManager, RingOram, Arc<dyn UntrustedStore>) {
        let mut config = ObladiConfig::small_for_tests(128);
        config.epoch.durability = durability;
        let keys = KeyMaterial::for_tests(3);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let counter = TrustedCounter::new();
        let manager = DurabilityManager::new(&keys, store.clone(), counter, &config.epoch);
        let oram =
            RingOram::new(config.oram, &keys, store.clone(), ExecOptions::default(), 7).unwrap();
        (manager, oram, store)
    }

    fn keys() -> KeyMaterial {
        KeyMaterial::for_tests(3)
    }

    #[test]
    fn disabled_durability_is_a_noop() {
        let (manager, mut oram, store) = setup(false);
        manager.commit_epoch(1, &mut oram).unwrap();
        manager
            .log_reads(&[SlotRead {
                bucket: 0,
                slot: 0,
                version: 1,
            }])
            .unwrap();
        assert_eq!(
            WriteAheadLog::new(store).read_from(0).unwrap().len(),
            0,
            "nothing may be logged when durability is off"
        );
    }

    #[test]
    fn commit_epoch_advances_counter_and_logs() {
        let (manager, mut oram, store) = setup(true);
        assert_eq!(manager.counter().epoch(), 0);
        manager.commit_epoch(1, &mut oram).unwrap();
        assert_eq!(manager.counter().epoch(), 1);
        let records = WriteAheadLog::new(store).read_from(0).unwrap();
        assert!(records
            .iter()
            .any(|r| r.kind == WalRecordKind::EpochCommit && r.epoch == 1));
    }

    #[test]
    fn recovery_restores_committed_data_and_discards_uncommitted() {
        let (manager, mut oram, _store) = setup(true);
        manager.set_current_epoch(1);

        // Epoch 1: write keys 0..16 and commit durably.
        let writes: Vec<(u64, Vec<u8>)> = (0..16).map(|k| (k, vec![k as u8; 8])).collect();
        oram.write_batch(&writes, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2: more writes that never commit (the proxy will crash).
        manager.set_current_epoch(2);
        let doomed: Vec<(u64, Vec<u8>)> = (0..16).map(|k| (k, vec![0xEE; 8])).collect();
        oram.write_batch(&doomed, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        // Crash: drop the ORAM client (volatile state lost).
        let config = *oram.config();
        drop(oram);

        let (mut recovered, next_epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 11)
            .unwrap();
        assert_eq!(next_epoch, 2, "system resumes at the aborted epoch");
        assert_eq!(report.recovered_epoch, 1);
        for k in 0..16u64 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                result[0],
                Some(vec![k as u8; 8]),
                "key {k} must have epoch-1 value after recovery"
            );
        }
    }

    #[test]
    fn recovery_with_nothing_durable_yields_a_working_empty_tree() {
        // Crash before any epoch commits: recovery must hand back a client
        // whose metadata matches the (re-initialised) storage, so that
        // subsequent epochs commit and their data stays readable.  This is
        // the regression test for acknowledged writes vanishing after a
        // crash at the very start of a run.
        let (manager, oram, _store) = setup(true);
        let config = *oram.config();
        drop(oram); // the crash loses the volatile client state

        let (mut recovered, next_epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 23)
            .unwrap();
        assert_eq!(
            next_epoch, 1,
            "nothing durable: the system restarts at epoch 1"
        );
        assert_eq!(report.recovered_epoch, 0);

        let writes: Vec<(u64, Vec<u8>)> = (0..24).map(|k| (k, vec![k as u8; 8])).collect();
        recovered.write_batch(&writes, &manager).unwrap();
        recovered.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut recovered).unwrap();
        for k in 0..24u64 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                result[0],
                Some(vec![k as u8; 8]),
                "key {k} unreadable after recovering an empty tree"
            );
            recovered.flush_writes(&NoopPathLogger).unwrap();
        }
    }

    #[test]
    fn recovery_replays_logged_paths() {
        let (manager, mut oram, store) = setup(true);
        manager.set_current_epoch(1);
        let writes: Vec<(u64, Vec<u8>)> = (0..8).map(|k| (k, vec![k as u8; 4])).collect();
        oram.write_batch(&writes, &manager).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        manager.commit_epoch(1, &mut oram).unwrap();

        // Epoch 2 issues some reads (logged), then the proxy crashes.
        manager.set_current_epoch(2);
        oram.read_batch(&[Some(1), Some(2), None], &manager)
            .unwrap();
        let config = *oram.config();
        drop(oram);

        store.reset_stats();
        let (_recovered, _epoch, report) = manager
            .recover(config, &keys(), ExecOptions::default(), 13)
            .unwrap();
        assert!(
            report.reads_replayed > 0,
            "the aborted epoch's reads must be replayed"
        );
        assert!(store.stats().slot_reads >= report.reads_replayed);
    }

    #[test]
    fn delta_and_full_checkpoints_compose() {
        let (manager, mut oram, _store) = setup(true);
        // checkpoint_every = 4 in the small test config: epoch 4 is full,
        // epochs 5..6 are deltas.
        for epoch in 1..=6u64 {
            manager.set_current_epoch(epoch);
            let writes: Vec<(u64, Vec<u8>)> =
                vec![(epoch, vec![epoch as u8; 8]), (100 + epoch, vec![1; 8])];
            oram.write_batch(&writes, &manager).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            manager.commit_epoch(epoch, &mut oram).unwrap();
        }
        let config = *oram.config();
        drop(oram);
        let (mut recovered, next_epoch, _report) = manager
            .recover(config, &keys(), ExecOptions::default(), 17)
            .unwrap();
        assert_eq!(next_epoch, 7);
        for epoch in 1..=6u64 {
            let result = recovered
                .read_batch(&[Some(epoch)], &NoopPathLogger)
                .unwrap();
            assert_eq!(result[0], Some(vec![epoch as u8; 8]), "epoch {epoch} write");
        }
    }

    #[test]
    fn compaction_keeps_recovery_working() {
        let (manager, mut oram, _store) = setup(true);
        for epoch in 1..=8u64 {
            manager.set_current_epoch(epoch);
            oram.write_batch(&[(epoch, vec![epoch as u8; 4])], &manager)
                .unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            manager.commit_epoch(epoch, &mut oram).unwrap();
        }
        manager.compact().unwrap();
        let config = *oram.config();
        drop(oram);
        let (mut recovered, _epoch, _report) = manager
            .recover(config, &keys(), ExecOptions::default(), 19)
            .unwrap();
        let result = recovered.read_batch(&[Some(8)], &NoopPathLogger).unwrap();
        assert_eq!(result[0], Some(vec![8u8; 4]));
    }
}
