//! Multiversioned timestamp ordering (MVTSO) concurrency control (§6.1).
//!
//! Obladi uses MVTSO because it lets uncommitted writes be visible to
//! concurrently executing transactions, which is what makes delaying commit
//! decisions to the end of an epoch cheap: transactions within an epoch see
//! each other's effects immediately and only the *decision* is deferred.
//!
//! The rules implemented here follow the description in the paper:
//!
//! * every transaction receives a unique timestamp that fixes its position
//!   in the serialization order;
//! * a write creates a new version tagged with the writer's timestamp and is
//!   rejected ("write too late") if a transaction with a *larger* timestamp
//!   has already read the version that immediately precedes it;
//! * a read returns the latest non-aborted version with a timestamp smaller
//!   than or equal to the reader's, records the reader in the version's read
//!   marker, and — if that version is uncommitted — registers a write-read
//!   dependency: the reader can only commit if the writer commits
//!   (cascading aborts otherwise);
//! * at the end of an epoch, transactions that requested commit are decided
//!   in timestamp order; everything else aborts.
//!
//! The same manager also powers the NoPriv baseline, which decides commits
//! immediately instead of at epoch boundaries.

use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{AbortReason, Key, Timestamp, TxnId, Value};
use std::collections::{HashMap, HashSet};

/// Outcome of a read against the version store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The value (possibly a deletion / absent base) together with the
    /// uncommitted writer the reader now depends on, if any.
    Value {
        /// The value observed (`None` = key does not exist).
        value: Option<Value>,
        /// Uncommitted transaction whose write was observed.
        dependency: Option<TxnId>,
    },
    /// No version is available yet: the base version must be fetched from
    /// the ORAM (or backing store) and registered with
    /// [`MvtsoManager::register_base`].
    NeedsFetch,
}

/// One entry of a commit vote: a commit-requested transaction plus the
/// transactions whose uncommitted writes it observed this epoch (see
/// [`MvtsoManager::commit_candidates`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitCandidate {
    /// The commit-requested transaction.
    pub txn: TxnId,
    /// Same-epoch transactions it read uncommitted data from.
    pub deps: Vec<TxnId>,
}

impl CommitCandidate {
    /// A candidate with no recorded dependencies (tests, local commits).
    pub fn local(txn: TxnId) -> Self {
        CommitCandidate {
            txn,
            deps: Vec::new(),
        }
    }
}

/// Status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Still executing.
    Active,
    /// The client requested commit; the decision is pending (epoch end).
    CommitRequested,
    /// Committed.
    Committed,
    /// Aborted.
    Aborted(AbortReason),
}

#[derive(Debug, Clone)]
struct VersionEntry {
    ts: Timestamp,
    value: Option<Value>,
    writer: Option<TxnId>,
    committed: bool,
    aborted: bool,
}

#[derive(Debug, Clone, Default)]
struct VersionChain {
    /// Versions sorted by timestamp (base version has timestamp 0).
    versions: Vec<VersionEntry>,
    /// Largest timestamp of any reader of each version, keyed by version ts.
    read_markers: HashMap<Timestamp, Timestamp>,
}

impl VersionChain {
    fn latest_visible(&self, ts: Timestamp) -> Option<&VersionEntry> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.ts <= ts && !v.aborted)
    }

    fn insert_version(&mut self, entry: VersionEntry) {
        let pos = self
            .versions
            .iter()
            .position(|v| v.ts > entry.ts)
            .unwrap_or(self.versions.len());
        self.versions.insert(pos, entry);
    }

    /// The version that would immediately precede a write at `ts`.
    fn preceding(&self, ts: Timestamp) -> Option<&VersionEntry> {
        self.versions.iter().rev().find(|v| v.ts < ts && !v.aborted)
    }

    fn record_read(&mut self, version_ts: Timestamp, reader_ts: Timestamp) {
        let marker = self.read_markers.entry(version_ts).or_insert(0);
        *marker = (*marker).max(reader_ts);
    }

    fn read_marker(&self, version_ts: Timestamp) -> Timestamp {
        self.read_markers.get(&version_ts).copied().unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
struct TxnRecord {
    status: TxnStatus,
    /// Transactions whose uncommitted writes this transaction observed.
    dependencies: HashSet<TxnId>,
    /// Keys written by this transaction.
    write_set: Vec<Key>,
    /// Keys read by this transaction.
    read_set: Vec<Key>,
}

impl TxnRecord {
    fn new() -> Self {
        TxnRecord {
            status: TxnStatus::Active,
            dependencies: HashSet::new(),
            write_set: Vec::new(),
            read_set: Vec::new(),
        }
    }
}

/// The MVTSO concurrency control unit.
#[derive(Debug, Default)]
pub struct MvtsoManager {
    chains: HashMap<Key, VersionChain>,
    txns: HashMap<TxnId, TxnRecord>,
}

impl MvtsoManager {
    /// Creates an empty manager (one per epoch in Obladi; long-lived in the
    /// NoPriv baseline).
    pub fn new() -> Self {
        MvtsoManager::default()
    }

    /// Registers a transaction with its pre-assigned timestamp.
    pub fn begin(&mut self, txn: TxnId) {
        self.txns.insert(txn, TxnRecord::new());
    }

    /// Number of transactions the manager currently tracks.
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Whether a base version for `key` has been registered (i.e. the ORAM
    /// value for the key is already cached in the version chain).
    pub fn has_base(&self, key: Key) -> bool {
        self.chains
            .get(&key)
            .map(|c| !c.versions.is_empty())
            .unwrap_or(false)
    }

    /// Installs the base version of a key fetched from the ORAM.  The base
    /// carries timestamp 0 and is considered committed (it is the state of
    /// the previous epoch).
    pub fn register_base(&mut self, key: Key, value: Option<Value>) {
        let chain = self.chains.entry(key).or_default();
        if chain.versions.iter().any(|v| v.ts == 0) {
            return;
        }
        chain.insert_version(VersionEntry {
            ts: 0,
            value,
            writer: None,
            committed: true,
            aborted: false,
        });
    }

    /// Current status of a transaction.
    pub fn status(&self, txn: TxnId) -> Option<TxnStatus> {
        self.txns.get(&txn).map(|t| t.status)
    }

    /// Attempts to read `key` on behalf of `txn`.
    pub fn read(&mut self, txn: TxnId, key: Key) -> Result<ReadOutcome> {
        self.check_active(txn)?;
        let chain = self.chains.entry(key).or_default();
        let Some(version) = chain.latest_visible(txn).cloned() else {
            return Ok(ReadOutcome::NeedsFetch);
        };
        chain.record_read(version.ts, txn);
        let record = self.txns.get_mut(&txn).expect("checked active");
        record.read_set.push(key);
        let mut dependency = None;
        if let Some(writer) = version.writer {
            if writer != txn && !version.committed {
                record.dependencies.insert(writer);
                dependency = Some(writer);
            }
        }
        Ok(ReadOutcome::Value {
            value: version.value,
            dependency,
        })
    }

    /// Attempts to write `key = value` on behalf of `txn`.
    ///
    /// Fails with a `TxnAborted` error (and aborts `txn`, cascading) when the
    /// version preceding `txn`'s timestamp has already been read by a
    /// transaction with a larger timestamp.
    pub fn write(&mut self, txn: TxnId, key: Key, value: Value) -> Result<()> {
        self.check_active(txn)?;
        let rejection = {
            let chain = self.chains.entry(key).or_default();
            chain.preceding(txn).and_then(|prev| {
                let marker = chain.read_marker(prev.ts);
                (marker > txn).then_some((prev.ts, marker))
            })
        };
        if let Some((prev_ts, marker)) = rejection {
            self.abort(txn, AbortReason::WriteTooLate);
            return Err(ObladiError::TxnAborted(format!(
                "write to key {key} rejected: version {prev_ts} already read by txn {marker}"
            )));
        }
        let chain = self.chains.entry(key).or_default();
        // Replace an earlier write by the same transaction, if any.
        if let Some(existing) = chain
            .versions
            .iter_mut()
            .find(|v| v.ts == txn && !v.aborted)
        {
            existing.value = Some(value);
        } else {
            chain.insert_version(VersionEntry {
                ts: txn,
                value: Some(value),
                writer: Some(txn),
                committed: false,
                aborted: false,
            });
        }
        let record = self.txns.get_mut(&txn).expect("checked active");
        if !record.write_set.contains(&key) {
            record.write_set.push(key);
        }
        Ok(())
    }

    /// Marks a transaction as having requested commit; the decision is made
    /// by [`MvtsoManager::finalize`] (Obladi) or
    /// [`MvtsoManager::try_commit_now`] (NoPriv).
    pub fn request_commit(&mut self, txn: TxnId) -> Result<()> {
        self.check_active(txn)?;
        let record = self.txns.get_mut(&txn).expect("checked active");
        record.status = TxnStatus::CommitRequested;
        Ok(())
    }

    /// Aborts a transaction and cascades the abort to every transaction that
    /// observed its writes.  Returns the set of transactions aborted.
    pub fn abort(&mut self, txn: TxnId, reason: AbortReason) -> Vec<TxnId> {
        let mut aborted = Vec::new();
        let mut queue = vec![(txn, reason)];
        while let Some((current, why)) = queue.pop() {
            let Some(record) = self.txns.get_mut(&current) else {
                continue;
            };
            if matches!(record.status, TxnStatus::Aborted(_) | TxnStatus::Committed) {
                continue;
            }
            record.status = TxnStatus::Aborted(why);
            aborted.push(current);
            let write_set = record.write_set.clone();
            for key in write_set {
                if let Some(chain) = self.chains.get_mut(&key) {
                    for version in chain.versions.iter_mut() {
                        if version.writer == Some(current) {
                            version.aborted = true;
                        }
                    }
                }
            }
            // Cascade to dependents.
            let dependents: Vec<TxnId> = self
                .txns
                .iter()
                .filter(|(_, r)| {
                    r.dependencies.contains(&current)
                        && !matches!(r.status, TxnStatus::Aborted(_) | TxnStatus::Committed)
                })
                .map(|(id, _)| *id)
                .collect();
            for dependent in dependents {
                queue.push((dependent, AbortReason::Cascading));
            }
        }
        aborted
    }

    /// Tries to commit a transaction immediately (NoPriv).  Succeeds only if
    /// every dependency has already committed; returns
    /// `Ok(false)` if some dependency is still pending, and an error if a
    /// dependency aborted (in which case this transaction aborts too).
    pub fn try_commit_now(&mut self, txn: TxnId) -> Result<bool> {
        let record = self
            .txns
            .get(&txn)
            .ok_or_else(|| ObladiError::Internal(format!("unknown transaction {txn}")))?;
        match record.status {
            TxnStatus::Committed => return Ok(true),
            TxnStatus::Aborted(reason) => return Err(ObladiError::TxnAborted(reason.to_string())),
            _ => {}
        }
        let deps: Vec<TxnId> = record.dependencies.iter().copied().collect();
        for dep in deps {
            match self.txns.get(&dep).map(|r| r.status) {
                Some(TxnStatus::Committed) | None => {}
                Some(TxnStatus::Aborted(_)) => {
                    self.abort(txn, AbortReason::Cascading);
                    return Err(ObladiError::TxnAborted(AbortReason::Cascading.to_string()));
                }
                Some(_) => return Ok(false),
            }
        }
        self.mark_committed(txn);
        Ok(true)
    }

    /// Epoch-end decision (Obladi): every transaction that requested commit
    /// is committed provided all its dependencies commit; everything else
    /// (still-active transactions and cascading victims) aborts.
    ///
    /// Returns `(committed, aborted)` transaction ids.
    pub fn finalize(&mut self) -> (Vec<TxnId>, Vec<TxnId>) {
        // Abort transactions that never requested commit (epoch ended under
        // them).
        let unfinished: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, r)| matches!(r.status, TxnStatus::Active))
            .map(|(id, _)| *id)
            .collect();
        for txn in unfinished {
            self.abort(txn, AbortReason::EpochEnd);
        }

        // Decide the rest in timestamp order so dependencies are resolved
        // before their dependents.
        let mut pending: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, r)| matches!(r.status, TxnStatus::CommitRequested))
            .map(|(id, _)| *id)
            .collect();
        pending.sort_unstable();
        for txn in pending {
            if !matches!(
                self.txns.get(&txn).map(|r| r.status),
                Some(TxnStatus::CommitRequested)
            ) {
                continue; // already aborted by a cascade
            }
            let deps: Vec<TxnId> = self.txns[&txn].dependencies.iter().copied().collect();
            let all_committed = deps.iter().all(|dep| {
                matches!(
                    self.txns.get(dep).map(|r| r.status),
                    Some(TxnStatus::Committed) | None
                )
            });
            if all_committed {
                self.mark_committed(txn);
            } else {
                self.abort(txn, AbortReason::Cascading);
            }
        }

        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        for (id, record) in &self.txns {
            match record.status {
                TxnStatus::Committed => committed.push(*id),
                TxnStatus::Aborted(_) => aborted.push(*id),
                _ => {}
            }
        }
        committed.sort_unstable();
        aborted.sort_unstable();
        (committed, aborted)
    }

    /// The last committed value of every key written this epoch: exactly the
    /// set of writes that must go into the epoch's write batch (§6.2,
    /// intermediate versions are discarded).
    pub fn committed_tail_writes(&self) -> Vec<(Key, Value)> {
        let mut writes: Vec<(Key, Value)> = Vec::new();
        for (key, chain) in &self.chains {
            let tail = chain
                .versions
                .iter()
                .rev()
                .find(|v| v.committed && !v.aborted && v.writer.is_some());
            if let Some(entry) = tail {
                if let Some(value) = &entry.value {
                    writes.push((*key, value.clone()));
                }
            }
        }
        writes.sort_unstable_by_key(|(k, _)| *k);
        writes
    }

    /// Commit candidates for an external epoch coordinator: every
    /// commit-requested transaction together with the transactions whose
    /// uncommitted writes it observed, in timestamp order.
    ///
    /// The dependency lists let the coordinator keep its vote *closed under
    /// cascading aborts*: a transaction whose dependency is denied would be
    /// cascade-aborted locally after the vote, so permitting it on its other
    /// shards would tear a cross-shard commit.
    pub fn commit_candidates(&self) -> Vec<CommitCandidate> {
        let mut candidates: Vec<CommitCandidate> = self
            .txns
            .iter()
            .filter(|(_, r)| matches!(r.status, TxnStatus::CommitRequested))
            .map(|(id, r)| {
                let mut deps: Vec<TxnId> = r.dependencies.iter().copied().collect();
                deps.sort_unstable();
                CommitCandidate { txn: *id, deps }
            })
            .collect();
        candidates.sort_unstable_by_key(|c| c.txn);
        candidates
    }

    /// The writes a transaction has buffered this epoch, as `(key, value)`
    /// pairs in key order — the payload a durable 2PC prepare record carries
    /// so recovery can replay the commit.
    pub fn txn_writes(&self, txn: TxnId) -> Vec<(Key, Value)> {
        let Some(record) = self.txns.get(&txn) else {
            return Vec::new();
        };
        let mut writes = Vec::with_capacity(record.write_set.len());
        for key in &record.write_set {
            if let Some(version) = self
                .chains
                .get(key)
                .and_then(|chain| chain.versions.iter().find(|v| v.ts == txn && !v.aborted))
            {
                if let Some(value) = &version.value {
                    writes.push((*key, value.clone()));
                }
            }
        }
        writes.sort_unstable_by_key(|(k, _)| *k);
        writes
    }

    /// Every key holding a non-aborted written version, whatever its
    /// writer's status.  This is the *carry set* of the pipelined epoch
    /// barrier: any of these keys could still commit at the epoch's
    /// decision, so the next epoch's reads of them must wait for the
    /// decision instead of fetching a pre-decision base from the ORAM.
    pub fn written_keys(&self) -> HashSet<Key> {
        self.chains
            .iter()
            .filter(|(_, chain)| {
                chain
                    .versions
                    .iter()
                    .any(|v| v.writer.is_some() && !v.aborted)
            })
            .map(|(key, _)| *key)
            .collect()
    }

    /// Transactions that have requested commit, in timestamp order.
    pub fn commit_requested_txns(&self) -> Vec<TxnId> {
        let mut txns: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, r)| matches!(r.status, TxnStatus::CommitRequested))
            .map(|(id, _)| *id)
            .collect();
        txns.sort_unstable();
        txns
    }

    /// The keys written by a transaction.
    pub fn write_set(&self, txn: TxnId) -> Vec<Key> {
        self.txns
            .get(&txn)
            .map(|r| r.write_set.clone())
            .unwrap_or_default()
    }

    /// Read/write set sizes of a transaction (test helper).
    pub fn footprint(&self, txn: TxnId) -> Option<(usize, usize)> {
        self.txns
            .get(&txn)
            .map(|r| (r.read_set.len(), r.write_set.len()))
    }

    /// Drops state for committed / aborted transactions older than `horizon`
    /// and trims version chains to their latest committed version (NoPriv
    /// garbage collection).
    pub fn garbage_collect(&mut self, horizon: Timestamp) {
        self.txns.retain(|id, record| {
            *id >= horizon
                || matches!(
                    record.status,
                    TxnStatus::Active | TxnStatus::CommitRequested
                )
        });
        for chain in self.chains.values_mut() {
            if let Some(last_committed_ts) = chain
                .versions
                .iter()
                .rev()
                .find(|v| v.committed && !v.aborted)
                .map(|v| v.ts)
            {
                chain
                    .versions
                    .retain(|v| v.ts >= last_committed_ts || (!v.committed && !v.aborted));
                chain.read_markers.retain(|ts, _| *ts >= last_committed_ts);
            }
        }
    }

    fn mark_committed(&mut self, txn: TxnId) {
        if let Some(record) = self.txns.get_mut(&txn) {
            record.status = TxnStatus::Committed;
            let write_set = record.write_set.clone();
            for key in write_set {
                if let Some(chain) = self.chains.get_mut(&key) {
                    for version in chain.versions.iter_mut() {
                        if version.writer == Some(txn) {
                            version.committed = true;
                        }
                    }
                }
            }
        }
    }

    fn check_active(&self, txn: TxnId) -> Result<()> {
        match self.txns.get(&txn).map(|r| r.status) {
            Some(TxnStatus::Active) | Some(TxnStatus::CommitRequested) => Ok(()),
            Some(TxnStatus::Aborted(reason)) => Err(ObladiError::TxnAborted(reason.to_string())),
            Some(TxnStatus::Committed) => Err(ObladiError::Internal(format!(
                "transaction {txn} already committed"
            ))),
            None => Err(ObladiError::Internal(format!("unknown transaction {txn}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(v: u64) -> Value {
        v.to_le_bytes().to_vec()
    }

    fn read_value(m: &mut MvtsoManager, txn: TxnId, key: Key) -> Option<Value> {
        match m.read(txn, key).unwrap() {
            ReadOutcome::Value { value, .. } => value,
            ReadOutcome::NeedsFetch => panic!("expected cached value"),
        }
    }

    #[test]
    fn read_needs_fetch_until_base_registered() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        assert_eq!(m.read(1, 10).unwrap(), ReadOutcome::NeedsFetch);
        m.register_base(10, Some(val(7)));
        assert_eq!(read_value(&mut m, 1, 10), Some(val(7)));
        assert!(m.has_base(10));
    }

    #[test]
    fn uncommitted_writes_are_visible_and_create_dependencies() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(5, Some(val(0)));
        m.write(1, 5, val(11)).unwrap();
        match m.read(2, 5).unwrap() {
            ReadOutcome::Value { value, dependency } => {
                assert_eq!(value, Some(val(11)));
                assert_eq!(dependency, Some(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_too_late_is_rejected() {
        // Figure 5: t3 reads d0, then t2 (smaller timestamp) tries to write d.
        let mut m = MvtsoManager::new();
        m.begin(2);
        m.begin(3);
        m.register_base(4, Some(val(0)));
        assert_eq!(read_value(&mut m, 3, 4), Some(val(0)));
        let err = m.write(2, 4, val(9)).unwrap_err();
        assert!(matches!(err, ObladiError::TxnAborted(_)));
        assert!(matches!(m.status(2), Some(TxnStatus::Aborted(_))));
    }

    #[test]
    fn writes_by_earlier_reader_are_fine() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(4, Some(val(0)));
        assert_eq!(read_value(&mut m, 1, 4), Some(val(0)));
        // A later transaction can still write.
        m.write(2, 4, val(5)).unwrap();
        // And the earlier reader still sees the base version.
        assert_eq!(read_value(&mut m, 1, 4), Some(val(0)));
        assert_eq!(read_value(&mut m, 2, 4), Some(val(5)));
    }

    #[test]
    fn cascading_abort_propagates_to_readers() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.begin(3);
        m.register_base(7, Some(val(0)));
        m.write(1, 7, val(1)).unwrap();
        // t2 and t3 read t1's uncommitted write.
        read_value(&mut m, 2, 7);
        read_value(&mut m, 3, 7);
        let aborted = m.abort(1, AbortReason::UserRequested);
        assert_eq!(aborted.len(), 3);
        assert!(matches!(
            m.status(2),
            Some(TxnStatus::Aborted(AbortReason::Cascading))
        ));
        assert!(matches!(
            m.status(3),
            Some(TxnStatus::Aborted(AbortReason::Cascading))
        ));
    }

    #[test]
    fn aborted_writes_are_not_visible() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(3, Some(val(10)));
        m.write(1, 3, val(99)).unwrap();
        m.abort(1, AbortReason::UserRequested);
        assert_eq!(read_value(&mut m, 2, 3), Some(val(10)));
    }

    #[test]
    fn finalize_commits_requested_and_aborts_unfinished() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.begin(3);
        m.register_base(1, None);
        m.write(1, 1, val(1)).unwrap();
        m.write(3, 1, val(3)).unwrap();
        m.request_commit(1).unwrap();
        m.request_commit(3).unwrap();
        // t2 never finishes.
        let (committed, aborted) = m.finalize();
        assert_eq!(committed, vec![1, 3]);
        assert_eq!(aborted, vec![2]);
        assert!(matches!(
            m.status(2),
            Some(TxnStatus::Aborted(AbortReason::EpochEnd))
        ));
    }

    #[test]
    fn finalize_cascades_through_dependencies() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(5, None);
        m.write(1, 5, val(1)).unwrap();
        read_value(&mut m, 2, 5);
        // Only t2 requests commit; t1 never does, so t1 aborts and drags t2
        // down with it.
        m.request_commit(2).unwrap();
        let (committed, aborted) = m.finalize();
        assert!(committed.is_empty());
        assert_eq!(aborted, vec![1, 2]);
    }

    #[test]
    fn committed_tail_writes_keeps_only_last_version() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(9, Some(val(0)));
        m.write(1, 9, val(1)).unwrap();
        m.write(2, 9, val(2)).unwrap();
        m.write(2, 11, val(3)).unwrap();
        m.request_commit(1).unwrap();
        m.request_commit(2).unwrap();
        m.finalize();
        let writes = m.committed_tail_writes();
        assert_eq!(writes, vec![(9, val(2)), (11, val(3))]);
    }

    #[test]
    fn tail_writes_skip_aborted_transactions() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(9, Some(val(0)));
        m.write(1, 9, val(1)).unwrap();
        m.write(2, 9, val(2)).unwrap();
        m.request_commit(1).unwrap();
        // t2 aborts; the tail committed write is t1's.
        m.abort(2, AbortReason::UserRequested);
        m.finalize();
        assert_eq!(m.committed_tail_writes(), vec![(9, val(1))]);
    }

    #[test]
    fn try_commit_now_waits_for_dependencies() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(4, None);
        m.write(1, 4, val(1)).unwrap();
        read_value(&mut m, 2, 4);
        m.request_commit(2).unwrap();
        assert!(!m.try_commit_now(2).unwrap(), "dependency still pending");
        m.request_commit(1).unwrap();
        assert!(m.try_commit_now(1).unwrap());
        assert!(m.try_commit_now(2).unwrap());
    }

    #[test]
    fn try_commit_now_fails_when_dependency_aborts() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.begin(2);
        m.register_base(4, None);
        m.write(1, 4, val(1)).unwrap();
        read_value(&mut m, 2, 4);
        m.abort(1, AbortReason::UserRequested);
        assert!(m.try_commit_now(2).is_err());
    }

    #[test]
    fn operations_on_aborted_transactions_fail() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.abort(1, AbortReason::UserRequested);
        assert!(m.read(1, 1).is_err());
        assert!(m.write(1, 1, val(1)).is_err());
        assert!(m.request_commit(1).is_err());
    }

    #[test]
    fn same_transaction_overwrites_its_own_write() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.register_base(2, None);
        m.write(1, 2, val(1)).unwrap();
        m.write(1, 2, val(2)).unwrap();
        assert_eq!(read_value(&mut m, 1, 2), Some(val(2)));
        m.request_commit(1).unwrap();
        m.finalize();
        assert_eq!(m.committed_tail_writes(), vec![(2, val(2))]);
    }

    #[test]
    fn garbage_collection_keeps_latest_committed_state() {
        let mut m = MvtsoManager::new();
        for txn in 1..=10u64 {
            m.begin(txn);
            m.register_base(1, Some(val(0)));
            m.write(txn, 1, val(txn)).unwrap();
            m.request_commit(txn).unwrap();
            m.try_commit_now(txn).unwrap();
        }
        m.garbage_collect(11);
        assert_eq!(m.txn_count(), 0);
        m.begin(11);
        assert_eq!(read_value(&mut m, 11, 1), Some(val(10)));
    }

    #[test]
    fn footprint_tracks_read_and_write_sets() {
        let mut m = MvtsoManager::new();
        m.begin(1);
        m.register_base(1, None);
        m.register_base(2, None);
        read_value(&mut m, 1, 1);
        read_value(&mut m, 1, 2);
        m.write(1, 2, val(1)).unwrap();
        assert_eq!(m.footprint(1), Some((2, 1)));
    }
}
