//! Non-private baselines used by the evaluation (§10–§11).
//!
//! * [`NoPrivDb`] — the paper's *NoPriv* baseline: the same MVTSO
//!   concurrency-control logic as Obladi, but the data handler is replaced
//!   by plain (non-oblivious, per-key) remote storage.  It neither batches
//!   nor delays operations: reads go straight to storage, writes are
//!   buffered at the proxy and flushed at commit, and commit decisions are
//!   taken immediately.
//! * [`TwoPhaseLockingDb`] — a conventional strict two-phase-locking engine
//!   over a local in-memory table, standing in for the MySQL reference
//!   point: exclusive locks are held for the duration of the transaction,
//!   so writers block readers (the behaviour the paper contrasts with
//!   MVTSO's pipelining).

use crate::api::{KvDatabase, KvTransaction};
use crate::concurrency::MvtsoManager;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{AbortReason, Key, TxnId, Value};
use obladi_storage::UntrustedStore;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ----------------------------------------------------------------------
// NoPriv
// ----------------------------------------------------------------------

/// The NoPriv baseline: MVTSO over non-oblivious remote storage.
pub struct NoPrivDb {
    store: Arc<dyn UntrustedStore>,
    mvtso: Mutex<MvtsoManager>,
    commit_wakeup: Condvar,
    next_ts: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl NoPrivDb {
    /// Creates a NoPriv instance over the given (latency-modelled) store.
    pub fn new(store: Arc<dyn UntrustedStore>) -> Self {
        NoPrivDb {
            store,
            mvtso: Mutex::new(MvtsoManager::new()),
            commit_wakeup: Condvar::new(),
            next_ts: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// The storage backend.
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.store
    }

    /// Begins a transaction.
    pub fn begin(&self) -> NoPrivTxn<'_> {
        let ts = self.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.mvtso.lock().begin(ts);
        NoPrivTxn {
            db: self,
            id: ts,
            writes: HashMap::new(),
            finished: false,
        }
    }

    fn storage_key(key: Key) -> String {
        format!("kv/{key}")
    }

    fn fetch_from_storage(&self, key: Key) -> Result<Option<Value>> {
        Ok(self
            .store
            .get_meta(&Self::storage_key(key))?
            .map(|bytes| bytes.to_vec()))
    }

    fn flush_to_storage(&self, writes: &HashMap<Key, Value>) -> Result<()> {
        for (key, value) in writes {
            self.store
                .put_meta(&Self::storage_key(*key), bytes::Bytes::from(value.clone()))?;
        }
        Ok(())
    }
}

/// A NoPriv transaction.
pub struct NoPrivTxn<'db> {
    db: &'db NoPrivDb,
    id: TxnId,
    writes: HashMap<Key, Value>,
    finished: bool,
}

impl NoPrivTxn<'_> {
    /// The transaction timestamp.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Reads a key: from the local write buffer, from the shared version
    /// cache, or from storage.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>> {
        if let Some(value) = self.writes.get(&key) {
            return Ok(Some(value.clone()));
        }
        {
            let mut mvtso = self.db.mvtso.lock();
            match mvtso.read(self.id, key)? {
                crate::concurrency::ReadOutcome::Value { value, .. } => return Ok(value),
                crate::concurrency::ReadOutcome::NeedsFetch => {}
            }
        }
        // Fetch outside the lock (this is the remote storage round trip).
        let fetched = self.db.fetch_from_storage(key)?;
        let mut mvtso = self.db.mvtso.lock();
        mvtso.register_base(key, fetched);
        match mvtso.read(self.id, key)? {
            crate::concurrency::ReadOutcome::Value { value, .. } => Ok(value),
            crate::concurrency::ReadOutcome::NeedsFetch => Err(ObladiError::Internal(
                "base version vanished after registration".into(),
            )),
        }
    }

    /// Buffers a write locally and publishes it to the version cache so
    /// concurrent transactions can observe it (MVTSO immediate visibility).
    pub fn write(&mut self, key: Key, value: Value) -> Result<()> {
        {
            let mut mvtso = self.db.mvtso.lock();
            if let Err(err) = mvtso.write(self.id, key, value.clone()) {
                self.finished = true;
                return Err(err);
            }
        }
        self.writes.insert(key, value);
        Ok(())
    }

    /// Commits immediately (no delayed visibility): waits for write-read
    /// dependencies to resolve, then flushes buffered writes to storage.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        {
            let mut mvtso = self.db.mvtso.lock();
            mvtso.request_commit(self.id)?;
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut mvtso = self.db.mvtso.lock();
            match mvtso.try_commit_now(self.id) {
                Ok(true) => {
                    drop(mvtso);
                    self.db.flush_to_storage(&self.writes)?;
                    self.db.committed.fetch_add(1, Ordering::Relaxed);
                    self.db.commit_wakeup.notify_all();
                    // Periodic garbage collection keeps version chains short.
                    if self.id.is_multiple_of(256) {
                        let horizon = self.id.saturating_sub(1024);
                        self.db.mvtso.lock().garbage_collect(horizon);
                    }
                    return Ok(());
                }
                Ok(false) => {
                    if Instant::now() > deadline {
                        mvtso.abort(self.id, AbortReason::Cascading);
                        self.db.aborted.fetch_add(1, Ordering::Relaxed);
                        return Err(ObladiError::TxnAborted(
                            "dependency did not resolve in time".into(),
                        ));
                    }
                    self.db
                        .commit_wakeup
                        .wait_for(&mut mvtso, Duration::from_millis(10));
                }
                Err(err) => {
                    self.db.aborted.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
            }
        }
    }

    /// Aborts the transaction.
    pub fn rollback(mut self) {
        self.abort_internal();
    }

    fn abort_internal(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.db
            .mvtso
            .lock()
            .abort(self.id, AbortReason::UserRequested);
        self.db.aborted.fetch_add(1, Ordering::Relaxed);
        self.db.commit_wakeup.notify_all();
    }
}

impl Drop for NoPrivTxn<'_> {
    fn drop(&mut self) {
        self.abort_internal();
    }
}

impl KvTransaction for NoPrivTxn<'_> {
    fn read(&mut self, key: Key) -> Result<Option<Value>> {
        NoPrivTxn::read(self, key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<()> {
        NoPrivTxn::write(self, key, value)
    }

    fn id(&self) -> u64 {
        self.id
    }
}

impl KvDatabase for NoPrivDb {
    fn execute<T>(&self, body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin();
        match body(&mut txn) {
            Ok(value) => {
                txn.commit()?;
                Ok(value)
            }
            Err(err) => {
                txn.rollback();
                Err(err)
            }
        }
    }

    fn engine_name(&self) -> &'static str {
        "nopriv"
    }
}

// ----------------------------------------------------------------------
// Strict two-phase locking ("MySQL-like") baseline
// ----------------------------------------------------------------------

#[derive(Default)]
struct LockTable {
    /// Keys currently locked exclusively, with the owning transaction.
    locks: HashMap<Key, TxnId>,
}

/// A conventional strict-2PL engine over a local in-memory table.
pub struct TwoPhaseLockingDb {
    data: Mutex<HashMap<Key, Value>>,
    locks: Mutex<LockTable>,
    lock_released: Condvar,
    next_ts: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// How long a transaction waits for a lock before aborting (deadlock
    /// avoidance by timeout).
    lock_timeout: Duration,
}

impl TwoPhaseLockingDb {
    /// Creates an empty 2PL engine.
    pub fn new() -> Self {
        TwoPhaseLockingDb {
            data: Mutex::new(HashMap::new()),
            locks: Mutex::new(LockTable::default()),
            lock_released: Condvar::new(),
            next_ts: AtomicU64::new(1),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            lock_timeout: Duration::from_millis(100),
        }
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Begins a transaction.
    pub fn begin(&self) -> TwoPhaseLockingTxn<'_> {
        let id = self.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        TwoPhaseLockingTxn {
            db: self,
            id,
            held: HashSet::new(),
            undo: HashMap::new(),
            writes: HashMap::new(),
            finished: false,
        }
    }

    fn acquire(&self, txn: TxnId, key: Key) -> Result<()> {
        let deadline = Instant::now() + self.lock_timeout;
        let mut table = self.locks.lock();
        loop {
            match table.locks.get(&key) {
                None => {
                    table.locks.insert(key, txn);
                    return Ok(());
                }
                Some(owner) if *owner == txn => return Ok(()),
                Some(_) => {
                    if Instant::now() > deadline {
                        return Err(ObladiError::TxnAborted(format!(
                            "lock wait timeout on key {key}"
                        )));
                    }
                    self.lock_released
                        .wait_for(&mut table, Duration::from_millis(5));
                }
            }
        }
    }

    fn release_all(&self, txn: TxnId, held: &HashSet<Key>) {
        let mut table = self.locks.lock();
        for key in held {
            if table.locks.get(key) == Some(&txn) {
                table.locks.remove(key);
            }
        }
        drop(table);
        self.lock_released.notify_all();
    }
}

impl Default for TwoPhaseLockingDb {
    fn default() -> Self {
        TwoPhaseLockingDb::new()
    }
}

/// A strict-2PL transaction.
pub struct TwoPhaseLockingTxn<'db> {
    db: &'db TwoPhaseLockingDb,
    id: TxnId,
    held: HashSet<Key>,
    undo: HashMap<Key, Option<Value>>,
    writes: HashMap<Key, Value>,
    finished: bool,
}

impl TwoPhaseLockingTxn<'_> {
    /// Reads a key under an exclusive lock (simplified strict 2PL).
    pub fn read(&mut self, key: Key) -> Result<Option<Value>> {
        self.lock(key)?;
        if let Some(value) = self.writes.get(&key) {
            return Ok(Some(value.clone()));
        }
        Ok(self.db.data.lock().get(&key).cloned())
    }

    /// Writes a key under an exclusive lock.
    pub fn write(&mut self, key: Key, value: Value) -> Result<()> {
        self.lock(key)?;
        if !self.undo.contains_key(&key) {
            self.undo
                .insert(key, self.db.data.lock().get(&key).cloned());
        }
        self.writes.insert(key, value);
        Ok(())
    }

    /// Commits: applies buffered writes and releases all locks.
    pub fn commit(mut self) -> Result<()> {
        self.finished = true;
        {
            let mut data = self.db.data.lock();
            for (key, value) in &self.writes {
                data.insert(*key, value.clone());
            }
        }
        self.db.release_all(self.id, &self.held);
        self.db.committed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Aborts and releases all locks.
    pub fn rollback(mut self) {
        self.abort_internal();
    }

    fn abort_internal(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.db.release_all(self.id, &self.held);
        self.db.aborted.fetch_add(1, Ordering::Relaxed);
    }

    fn lock(&mut self, key: Key) -> Result<()> {
        if self.held.contains(&key) {
            return Ok(());
        }
        match self.db.acquire(self.id, key) {
            Ok(()) => {
                self.held.insert(key);
                Ok(())
            }
            Err(err) => {
                self.abort_internal();
                Err(err)
            }
        }
    }
}

impl Drop for TwoPhaseLockingTxn<'_> {
    fn drop(&mut self) {
        self.abort_internal();
    }
}

impl KvTransaction for TwoPhaseLockingTxn<'_> {
    fn read(&mut self, key: Key) -> Result<Option<Value>> {
        TwoPhaseLockingTxn::read(self, key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<()> {
        TwoPhaseLockingTxn::write(self, key, value)
    }

    fn id(&self) -> u64 {
        self.id
    }
}

impl KvDatabase for TwoPhaseLockingDb {
    fn execute<T>(&self, body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin();
        match body(&mut txn) {
            Ok(value) => {
                txn.commit()?;
                Ok(value)
            }
            Err(err) => {
                txn.rollback();
                Err(err)
            }
        }
    }

    fn engine_name(&self) -> &'static str {
        "mysql-2pl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_storage::InMemoryStore;

    fn val(v: u64) -> Value {
        v.to_le_bytes().to_vec()
    }

    fn nopriv() -> NoPrivDb {
        NoPrivDb::new(Arc::new(InMemoryStore::new()))
    }

    #[test]
    fn nopriv_commit_and_read_back() {
        let db = nopriv();
        let mut t1 = db.begin();
        assert_eq!(t1.read(1).unwrap(), None);
        t1.write(1, val(5)).unwrap();
        assert_eq!(t1.read(1).unwrap(), Some(val(5)));
        t1.commit().unwrap();

        let mut t2 = db.begin();
        assert_eq!(t2.read(1).unwrap(), Some(val(5)));
        t2.commit().unwrap();
        assert_eq!(db.committed(), 2);
    }

    #[test]
    fn nopriv_rollback_discards_writes() {
        let db = nopriv();
        let mut t1 = db.begin();
        t1.write(9, val(1)).unwrap();
        t1.rollback();
        let mut t2 = db.begin();
        assert_eq!(t2.read(9).unwrap(), None);
        t2.commit().unwrap();
        assert_eq!(db.aborted(), 1);
    }

    #[test]
    fn nopriv_writes_survive_in_storage() {
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        {
            let db = NoPrivDb::new(store.clone());
            let mut txn = db.begin();
            txn.write(3, val(3)).unwrap();
            txn.commit().unwrap();
        }
        // A fresh proxy over the same storage still sees the data.
        let db = NoPrivDb::new(store);
        let mut txn = db.begin();
        assert_eq!(txn.read(3).unwrap(), Some(val(3)));
        txn.commit().unwrap();
    }

    #[test]
    fn nopriv_mvtso_conflict_aborts_late_writer() {
        let db = nopriv();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert_eq!(t2.read(5).unwrap(), None);
        let err = t1.write(5, val(1)).unwrap_err();
        assert!(matches!(err, ObladiError::TxnAborted(_)));
        t2.commit().unwrap();
    }

    #[test]
    fn nopriv_execute_api() {
        let db = nopriv();
        let out = db
            .execute(&mut |txn| {
                txn.write(7, val(70))?;
                txn.read(7)
            })
            .unwrap();
        assert_eq!(out, Some(val(70)));
        assert_eq!(db.engine_name(), "nopriv");
    }

    #[test]
    fn nopriv_concurrent_threads() {
        let db = Arc::new(nopriv());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let key = t * 1000 + i;
                    let mut txn = db.begin();
                    txn.write(key, val(key)).unwrap();
                    txn.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.committed(), 100);
    }

    #[test]
    fn twopl_basic_roundtrip() {
        let db = TwoPhaseLockingDb::new();
        let mut t1 = db.begin();
        t1.write(1, val(1)).unwrap();
        t1.commit().unwrap();
        let mut t2 = db.begin();
        assert_eq!(t2.read(1).unwrap(), Some(val(1)));
        t2.commit().unwrap();
        assert_eq!(db.committed(), 2);
    }

    #[test]
    fn twopl_conflicting_access_blocks_then_aborts_on_timeout() {
        let db = Arc::new(TwoPhaseLockingDb::new());
        let mut t1 = db.begin();
        t1.write(5, val(5)).unwrap();
        // A second transaction cannot acquire the lock while t1 holds it.
        let db2 = db.clone();
        let handle = std::thread::spawn(move || {
            let mut t2 = db2.begin();
            t2.read(5)
        });
        let result = handle.join().unwrap();
        assert!(result.is_err(), "lock wait must time out while t1 holds it");
        t1.commit().unwrap();
        // Now the key is accessible again.
        let mut t3 = db.begin();
        assert_eq!(t3.read(5).unwrap(), Some(val(5)));
        t3.commit().unwrap();
    }

    #[test]
    fn twopl_rollback_releases_locks_and_discards_writes() {
        let db = TwoPhaseLockingDb::new();
        let mut t1 = db.begin();
        t1.write(2, val(9)).unwrap();
        t1.rollback();
        let mut t2 = db.begin();
        assert_eq!(t2.read(2).unwrap(), None);
        t2.commit().unwrap();
    }

    #[test]
    fn twopl_execute_api() {
        let db = TwoPhaseLockingDb::new();
        let out = db
            .execute(&mut |txn| {
                txn.write(11, val(1))?;
                txn.read(11)
            })
            .unwrap();
        assert_eq!(out, Some(val(1)));
        assert_eq!(db.engine_name(), "mysql-2pl");
    }

    #[test]
    fn twopl_concurrent_disjoint_transactions() {
        let db = Arc::new(TwoPhaseLockingDb::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let key = t * 1000 + i;
                    let mut txn = db.begin();
                    txn.write(key, val(key)).unwrap();
                    txn.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.committed(), 100);
    }
}
