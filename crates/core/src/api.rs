//! Public client-facing database abstraction.
//!
//! The workload generators (TPC-C, SmallBank, FreeHealth, YCSB) and the
//! benchmark driver are written against these traits so the same transaction
//! logic runs unchanged on Obladi, on the NoPriv baseline, and on the
//! MySQL-like 2PL engine — exactly the comparison Figure 9 makes.

use obladi_common::error::Result;
use obladi_common::types::{Key, TxnOutcome, Value};

/// One executing transaction.
///
/// Reads and writes may fail with `ObladiError::TxnAborted` (concurrency
/// conflict, epoch overflow, crash, …); callers should surface the error from
/// their closure so [`KvDatabase::execute`] can report the abort.
pub trait KvTransaction {
    /// Reads the current value of `key` (as visible to this transaction).
    fn read(&mut self, key: Key) -> Result<Option<Value>>;

    /// Writes `value` to `key`.
    fn write(&mut self, key: Key, value: Value) -> Result<()>;

    /// The transaction's timestamp / identifier (diagnostics).
    fn id(&self) -> u64;
}

/// A transactional key-value database.
pub trait KvDatabase: Send + Sync {
    /// Runs `body` inside a transaction and commits it.
    ///
    /// Returns the closure's output on commit.  Returns an
    /// `ObladiError::TxnAborted` (or other) error if the transaction could
    /// not commit; the caller decides whether to retry.
    fn execute<T>(&self, body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>) -> Result<T>
    where
        Self: Sized;

    /// Runs `body`, retrying up to `retries` times on retryable aborts.
    fn execute_with_retries<T>(
        &self,
        retries: usize,
        body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>,
    ) -> Result<T>
    where
        Self: Sized,
    {
        let mut attempt = 0;
        loop {
            match self.execute(body) {
                Ok(value) => return Ok(value),
                Err(err) if err.is_retryable() && attempt < retries => {
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Short name of the engine (used in benchmark output).
    fn engine_name(&self) -> &'static str;
}

/// A deployable database front door: a [`KvDatabase`] with the operational
/// surface the load driver and benchmarks need to treat a single proxy and a
/// sharded deployment interchangeably.
///
/// `ObladiDb` and `obladi-shard`'s `ShardedDb` both implement this, so a
/// benchmark can sweep deployment shapes (shard counts, epoch settings)
/// through one code path.
pub trait FrontDoor: KvDatabase {
    /// Human-readable deployment description (engine plus topology), used
    /// to label benchmark rows.
    fn deployment(&self) -> String;

    /// Stops background machinery (epoch drivers, coordinators).  Idempotent.
    fn stop(&self);
}

/// Outcome bookkeeping shared by engines: translate a commit decision into a
/// `Result`, mapping aborts to errors.
pub fn outcome_to_result(outcome: TxnOutcome) -> Result<()> {
    match outcome {
        TxnOutcome::Committed => Ok(()),
        TxnOutcome::Aborted(reason) => Err(obladi_common::error::ObladiError::TxnAborted(
            reason.to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::error::ObladiError;
    use obladi_common::types::AbortReason;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outcome_mapping() {
        assert!(outcome_to_result(TxnOutcome::Committed).is_ok());
        let err = outcome_to_result(TxnOutcome::Aborted(AbortReason::EpochEnd)).unwrap_err();
        assert!(err.is_retryable());
    }

    /// A stub engine whose transactions fail a configurable number of times
    /// before succeeding, used to exercise the retry helper.
    struct FlakyDb {
        failures_left: AtomicUsize,
        retryable: bool,
        attempts: AtomicUsize,
    }

    struct FlakyTxn;

    impl KvTransaction for FlakyTxn {
        fn read(&mut self, _key: Key) -> Result<Option<Value>> {
            Ok(None)
        }

        fn write(&mut self, _key: Key, _value: Value) -> Result<()> {
            Ok(())
        }

        fn id(&self) -> u64 {
            1
        }
    }

    impl KvDatabase for FlakyDb {
        fn execute<T>(
            &self,
            body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>,
        ) -> Result<T> {
            self.attempts.fetch_add(1, Ordering::SeqCst);
            if self.failures_left.load(Ordering::SeqCst) > 0 {
                self.failures_left.fetch_sub(1, Ordering::SeqCst);
                return Err(if self.retryable {
                    ObladiError::TxnAborted("injected conflict".into())
                } else {
                    ObladiError::Integrity("injected integrity failure".into())
                });
            }
            body(&mut FlakyTxn)
        }

        fn engine_name(&self) -> &'static str {
            "flaky"
        }
    }

    #[test]
    fn execute_with_retries_retries_retryable_aborts() {
        let db = FlakyDb {
            failures_left: AtomicUsize::new(3),
            retryable: true,
            attempts: AtomicUsize::new(0),
        };
        let value = db
            .execute_with_retries(5, &mut |txn: &mut dyn KvTransaction| {
                txn.write(1, vec![1])?;
                Ok(42u32)
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(db.attempts.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn execute_with_retries_gives_up_after_the_budget() {
        let db = FlakyDb {
            failures_left: AtomicUsize::new(100),
            retryable: true,
            attempts: AtomicUsize::new(0),
        };
        let err = db
            .execute_with_retries(3, &mut |_txn: &mut dyn KvTransaction| Ok(()))
            .unwrap_err();
        assert!(err.is_retryable());
        // One initial attempt plus three retries.
        assert_eq!(db.attempts.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn execute_with_retries_does_not_retry_permanent_errors() {
        let db = FlakyDb {
            failures_left: AtomicUsize::new(100),
            retryable: false,
            attempts: AtomicUsize::new(0),
        };
        let err = db
            .execute_with_retries(10, &mut |_txn: &mut dyn KvTransaction| Ok(()))
            .unwrap_err();
        assert!(matches!(err, ObladiError::Integrity(_)));
        assert_eq!(db.attempts.load(Ordering::SeqCst), 1);
    }
}
