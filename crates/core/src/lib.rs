//! The Obladi proxy: the paper's primary contribution.
//!
//! This crate assembles the substrates (`obladi-oram`, `obladi-storage`,
//! `obladi-crypto`) into the system described in §5–§8 of *Obladi: Oblivious
//! Serializable Transactions in the Cloud* (OSDI 2018):
//!
//! * [`concurrency`] — multiversioned timestamp ordering with write-read
//!   dependency tracking and cascading aborts (the concurrency control
//!   unit);
//! * [`proxy`] — the epoch-based proxy ([`proxy::ObladiDb`]): fixed-size
//!   read/write batches, deduplication and padding, delayed commit
//!   visibility, epoch fate sharing, crash and recovery entry points;
//! * [`durability`] — write-ahead logging of read paths, delta/full
//!   checkpoints of proxy metadata, the trusted counter, and the recovery
//!   procedure of §8;
//! * [`baselines`] — the NoPriv and MySQL-like (strict 2PL) comparison
//!   systems of the evaluation;
//! * [`api`] — the engine-agnostic [`api::KvDatabase`] / [`api::KvTransaction`]
//!   traits that the workloads are written against.
//!
//! # Quick start
//!
//! ```
//! use obladi_core::proxy::ObladiDb;
//! use obladi_common::config::ObladiConfig;
//!
//! let db = ObladiDb::open(ObladiConfig::small_for_tests(1024)).unwrap();
//! let mut txn = db.begin().unwrap();
//! txn.write(1, b"hello".to_vec()).unwrap();
//! let outcome = txn.commit().unwrap();
//! assert!(outcome.is_committed());
//! db.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod baselines;
pub mod concurrency;
pub mod durability;
pub mod proxy;

pub use api::{FrontDoor, KvDatabase, KvTransaction};
pub use baselines::{NoPrivDb, TwoPhaseLockingDb};
pub use concurrency::{CommitCandidate, MvtsoManager, ReadOutcome, TxnStatus};
pub use durability::{DurabilityManager, RecoveredTxns, RecoveryReport};
pub use proxy::{CandidateSource, EpochGate, ObladiDb, ObladiTxn, ProxyStats, TxnPreparer};
