//! The Obladi proxy: epochs, batching, delayed visibility (§5–§6).
//!
//! [`ObladiDb`] is the trusted proxy.  Client threads begin transactions,
//! issue reads and writes, and request commit; a background *epoch
//! executor* thread partitions time into fixed-size epochs of `R` read
//! batches (shipped to the ORAM executor every `Δ`), and a companion
//! *epoch decider* thread finalises each epoch (commit decisions, the
//! write batch, durability) — a bounded pipeline that lets the next
//! epoch's reads run while the previous epoch's decision is still in
//! flight.  Clients are only notified of commit decisions once their
//! epoch is durable.
//!
//! The data flow mirrors Figure 4 and Figure 5 of the paper:
//!
//! * **Reads** first consult the epoch's version cache (the MVTSO version
//!   chains, which hold both values fetched from the ORAM this epoch and
//!   uncommitted writes of concurrent transactions).  Missing keys are
//!   queued, deduplicated, padded to the fixed batch size and executed by
//!   the parallel ORAM executor.  The calling thread blocks until the batch
//!   containing its key has executed.
//! * **Writes** are buffered in the version cache; only the last committed
//!   version of each key is written to the ORAM at the epoch boundary
//!   (write deduplication), padded to the fixed write-batch size.
//! * **Commit requests** park the caller until the epoch ends; epoch
//!   finalisation applies MVTSO's commit/abort decisions (including
//!   cascading aborts), enforces the write-batch capacity, flushes the
//!   ORAM's buffered buckets, checkpoints proxy metadata and only then
//!   reports outcomes (epoch fate sharing).
//! * **Crashes** wipe all volatile state; [`ObladiDb::recover`] rebuilds the
//!   proxy from the recovery unit and resumes at the epoch after the last
//!   durable one, replaying the aborted epoch's read paths.

use crate::api::{KvDatabase, KvTransaction};
use crate::concurrency::{CommitCandidate, MvtsoManager, ReadOutcome, TxnStatus};
use crate::durability::{DurabilityManager, RecoveryReport};
use obladi_common::config::ObladiConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{AbortReason, EpochId, Key, TxnId, TxnOutcome, Value};
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, OramReader, RingOram, WritebackEngine};
use obladi_storage::{build_backend, TrustedCounter, UntrustedStore};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Produces the proxy's current commit candidates: the transactions that
/// have requested commit and fit the epoch's write-batch capacity, each
/// with the same-epoch transactions whose uncommitted writes it observed
/// (so an external coordinator can keep its vote closed under cascading
/// aborts).
///
/// The coordinator of a sharded deployment calls this at *decision* time —
/// possibly from another shard's driver thread — so a cross-shard commit
/// whose requests raced in after this shard reached its epoch barrier still
/// gets counted.  The closure takes the proxy's state lock; callers must not
/// hold it.
pub type CandidateSource = Arc<dyn Fn() -> Vec<CommitCandidate> + Send + Sync>;

/// Durably logs 2PC prepare records for the given transactions (their write
/// sets go to this proxy's WAL) and returns once the records are appended.
///
/// The epoch coordinator calls this at decision time, *before* counting the
/// shard's commit vote for a cross-shard transaction: only once every
/// participant holds a durable prepare may the transaction commit, so a
/// participant that crashes between the vote and its epoch commit can
/// finish the transaction during recovery instead of losing its half.  An
/// error means the prepare did not become durable and the vote must not
/// count.  Like [`CandidateSource`], the closure takes the proxy's state
/// lock; callers must not hold it.
pub type TxnPreparer = Arc<dyn Fn(&[TxnId]) -> Result<()> + Send + Sync>;

/// A hook that lets an external coordinator arbitrate which transactions of
/// an epoch are allowed to commit.
///
/// The sharded deployment (`obladi-shard`) installs one gate per shard: the
/// gate call doubles as an **epoch barrier** (it blocks until every shard has
/// reached the end of its epoch) and as a **commit vote** (a transaction that
/// spans several shards commits only if every participating shard reports it
/// as ready).  A proxy without a gate behaves exactly as before.
///
/// `permit_commits` runs on the epoch-driver thread with no proxy locks
/// held; it may block.  Commit requests that arrive after the coordinator's
/// decision are aborted with [`AbortReason::EpochEnd`] (retryable) so
/// nothing can commit behind the coordinator's back.
pub trait EpochGate: Send + Sync {
    /// Called before finalising `epoch`; `candidates` yields the proxy's
    /// commit candidates when sampled, and `preparer` durably logs 2PC
    /// prepare records on this proxy for transactions the coordinator is
    /// about to permit on several shards.  Returns the set of transactions
    /// allowed to commit; every other commit-requested transaction aborts
    /// with a retryable reason.
    ///
    /// An `Err` — the barrier watchdog converting an indefinite park into
    /// [`ObladiError::BarrierStalled`] — means the gate reached no decision
    /// at all.  The proxy treats it as an *empty* permit set: every commit
    /// candidate aborts retryably, the epoch finalises and the pipeline
    /// keeps moving (the error is diagnostic, not fatal — it must not
    /// fate-share into a crash).
    fn permit_commits(
        &self,
        epoch: EpochId,
        candidates: CandidateSource,
        preparer: TxnPreparer,
    ) -> Result<Vec<TxnId>>;

    /// Called after `epoch`'s outcomes have been published (durably when the
    /// epoch succeeded, as aborts when it failed).
    fn epoch_finalized(&self, epoch: EpochId) {
        let _ = epoch;
    }

    /// Called (with no proxy locks held) just before a read batch of
    /// `epoch` executes.  With the pipelined epoch barrier, batches of
    /// epoch `N+1` fire while epoch `N`'s `permit_commits` call is still in
    /// flight; instrumented gates use this to prove the overlap.
    fn read_batch_starting(&self, epoch: EpochId) {
        let _ = epoch;
    }

    /// Called (with no proxy locks held) right after a read batch of
    /// `epoch` has executed and its values registered.  Together with
    /// [`EpochGate::write_back_starting`] / [`EpochGate::write_back_finished`]
    /// this lets an instrumented gate prove that a whole epoch `N+1` read
    /// batch started *and completed* while epoch `N`'s write-back was still
    /// in flight — the overlap the split ORAM client exists for.
    fn read_batch_finished(&self, epoch: EpochId) {
        let _ = epoch;
    }

    /// Called just before the decider hands epoch `N`'s write batch, flush
    /// and checkpoint to the write-back engine.
    fn write_back_starting(&self, epoch: EpochId) {
        let _ = epoch;
    }

    /// Called once epoch `N`'s write-back (including the checkpoint) has
    /// completed successfully, before its outcomes publish.
    fn write_back_finished(&self, epoch: EpochId) {
        let _ = epoch;
    }

    /// Called once `epoch` has become durable, with the transactions whose
    /// commits it made durable.  A coordinator uses this to retire the
    /// prepare/decision state of cross-shard transactions: once every
    /// participant has reported the commit durable, no recovery will ever
    /// ask about it again.
    fn epoch_durable(&self, epoch: EpochId, committed: &[TxnId]) {
        let _ = (epoch, committed);
    }

    /// Called (with no proxy locks held) when the proxy crashes — whether by
    /// an explicit [`ObladiDb::crash`] or by storage-fault fate sharing.  A
    /// coordinator must stop waiting for this proxy at epoch rendezvous.
    fn proxy_crashed(&self) {}

    /// Called (with no proxy locks held) when [`ObladiDb::recover`]
    /// completes, so a coordinator can re-admit the proxy to rendezvous.
    fn proxy_recovered(&self) {}

    /// Called (with no proxy locks held) when [`ObladiDb::shutdown`] begins,
    /// before the epoch threads are joined.  A coordinator must stop
    /// waiting for this proxy at the rendezvous, or the decider thread —
    /// possibly parked there — could never be joined.
    fn proxy_stopping(&self) {}
}

/// Aggregate proxy statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Epochs finalised since the proxy started.
    pub epochs: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (any reason).
    pub aborted: u64,
    /// Read batches executed.
    pub read_batches: u64,
    /// Real (non-padding) read slots used across all batches.
    pub real_reads: u64,
    /// Padding read slots across all batches.
    pub padded_reads: u64,
    /// Real writes shipped in write batches.
    pub real_writes: u64,
}

/// The *executing* epoch: read batches still run, transactions begin and
/// buffer reads/writes here.
struct EpochState {
    epoch: EpochId,
    generation: u64,
    mvtso: MvtsoManager,
    pending_fetch: Vec<Key>,
    pending_set: HashSet<Key>,
    in_flight: HashSet<Key>,
    batches_issued: u32,
    active_txns: HashSet<TxnId>,
}

impl EpochState {
    fn new(epoch: EpochId, generation: u64) -> Self {
        EpochState {
            epoch,
            generation,
            mvtso: MvtsoManager::new(),
            pending_fetch: Vec::new(),
            pending_set: HashSet::new(),
            in_flight: HashSet::new(),
            batches_issued: 0,
            active_txns: HashSet::new(),
        }
    }
}

/// The *deciding* epoch: its read phase is over and its snapshot sits here
/// from the moment the executor rolls the proxy over to the next epoch
/// until the decider publishes its outcomes.  Commit requests (and aborts)
/// for its transactions still land in this snapshot — the coordinator
/// samples commit candidates at decision time, which may be well after the
/// rollover — but no new reads or writes do.
struct DecidingEpoch {
    epoch: EpochId,
    generation: u64,
    mvtso: MvtsoManager,
    active_txns: HashSet<TxnId>,
    /// The *late-read batch*: keys deciding-epoch transactions asked to
    /// read that missed the snapshot's version cache.  The executing
    /// epoch's padded read batches carry them in their spare (padding)
    /// slots — the ORAM still holds the pre-decision state the snapshot
    /// read against, so a late fetch observes exactly what an in-epoch
    /// fetch would have.  Swapping a real request into a slot that would
    /// otherwise carry a dummy leaves the physical trace unchanged.
    late_pending: Vec<Key>,
    late_pending_set: HashSet<Key>,
    late_in_flight: HashSet<Key>,
    /// Late reads admitted so far (capacity enforcement: at most one
    /// epoch's worth of reads may ride the next epoch's padding).
    late_enqueued: usize,
    /// Set once the decision has been applied (the permit verdict folded in
    /// and the MVTSO finalized): from then on nothing can join the epoch.
    closed: bool,
}

/// Everything behind the proxy's single state lock: the executing epoch,
/// the deciding epoch (if one is in flight), the carry set pinning the
/// executing epoch's reads to the pre-decision snapshot, and the published
/// outcomes clients collect.
struct ProxyState {
    exec: EpochState,
    deciding: Option<DecidingEpoch>,
    /// Keys the deciding epoch wrote (committed or not).  A read of one of
    /// these in the executing epoch must not fetch from the ORAM until the
    /// decision publishes: the ORAM still holds the pre-decision value, and
    /// serving either value early would leak an undecided epoch's fate.
    carry_pending: HashSet<Key>,
    outcomes: HashMap<TxnId, TxnOutcome>,
}

impl ProxyState {
    fn new(epoch: EpochId, generation: u64) -> Self {
        ProxyState {
            exec: EpochState::new(epoch, generation),
            deciding: None,
            carry_pending: HashSet::new(),
            outcomes: HashMap::new(),
        }
    }
}

struct ProxyInner {
    config: ObladiConfig,
    keys: KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    durability: DurabilityManager,
    /// The ORAM client's read plane, driven only by the epoch executor.
    /// With the split client the executor and decider no longer contend on
    /// one `&mut` client: epoch `N+1`'s read batches genuinely overlap
    /// epoch `N`'s write-back I/O, coordinated inside the shared client
    /// state (see `obladi_oram::split`).
    reader: Mutex<Option<OramReader>>,
    /// The ORAM client's write-back engine, driven only by the epoch
    /// decider (and by recovery).
    engine: Mutex<Option<WritebackEngine>>,
    state: Mutex<ProxyState>,
    /// Wakes client threads waiting for read results or commit outcomes.
    client_wakeup: Condvar,
    /// Wakes the epoch executor early (full batch, shutdown, recovery, a
    /// freed pipeline slot).
    driver_wakeup: Condvar,
    /// Wakes the epoch decider when a snapshot lands in the deciding slot.
    decider_wakeup: Condvar,
    next_ts: AtomicU64,
    shutdown: AtomicBool,
    crashed: AtomicBool,
    /// Incremented (under the state lock) every time a recovery completes.
    /// Storage failures observed by the epoch threads carry the life they
    /// were observed in; a failure from a previous life must not fate-share
    /// into a crash — with the pipelined split, a decider can surface an
    /// I/O error from *before* a crash long after recovery already rebuilt
    /// the state it would wipe.
    lives: AtomicU64,
    stats: Mutex<ProxyStats>,
    epoch_gate: Mutex<Option<Arc<dyn EpochGate>>>,
    /// Hands read batches to the pool of batch-runner threads so up to
    /// `read_batches_in_flight` batches overlap their physical fetches
    /// inside one epoch (the split client plans them in dispatch order
    /// under its own lock, so the access pattern is unchanged).
    read_dispatch: ReadDispatch,
}

/// The executor-to-runner handoff for read batches.
struct ReadDispatch {
    queue: Mutex<ReadQueue>,
    cond: Condvar,
}

struct ReadQueue {
    /// Batches dispatched but not yet picked up by a runner.
    pending: usize,
    /// Batches a runner is currently executing.
    in_flight: usize,
    /// Set at shutdown; runners exit, dispatch and drain stop blocking.
    stop: bool,
}

impl ReadDispatch {
    fn new() -> Self {
        ReadDispatch {
            queue: Mutex::new(ReadQueue {
                pending: 0,
                in_flight: 0,
                stop: false,
            }),
            cond: Condvar::new(),
        }
    }
}

/// The Obladi database handle (the trusted proxy).
pub struct ObladiDb {
    inner: Arc<ProxyInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ObladiDb {
    /// Opens a proxy over a freshly built storage backend chosen by the
    /// configuration.
    pub fn open(config: ObladiConfig) -> Result<ObladiDb> {
        let store = build_backend(config.backend, config.latency_scale, config.seed);
        let counter = TrustedCounter::new();
        let keys = KeyMaterial::for_tests(config.seed);
        ObladiDb::open_with(config, store, counter, keys)
    }

    /// Opens a proxy over an existing storage backend, trusted counter and
    /// key material (used by tests, recovery scenarios and benchmarks that
    /// need to share the backend with a baseline).
    pub fn open_with(
        config: ObladiConfig,
        store: Arc<dyn UntrustedStore>,
        counter: Arc<TrustedCounter>,
        keys: KeyMaterial,
    ) -> Result<ObladiDb> {
        let mut config = config;
        // The stash must absorb everything that can accumulate between the
        // engine's maintenance passes.  With the split client the executor
        // *never* runs maintenance after a read batch (the monolithic
        // facade did): every eviction owed by an epoch's read accesses is
        // deferred to the decider's write-back, so the deciding epoch's
        // read targets sit in the stash for its whole write-back window in
        // addition to the up-to-`pipeline_depth` epochs of reads the
        // pipelined barrier allows in flight.  Hence one extra epoch of
        // read headroom over the pre-split bound, plus the write batch and
        // an eviction-path margin.  A stash overflow mid-plan poisons the
        // client (checkpoints refuse, the proxy fate-shares and recovers),
        // so an undersized bound costs availability, never durability —
        // but raise it here regardless.
        // Each *extra* concurrently in-flight batch can additionally hold a
        // batch's worth of planned-but-not-ingested blocks mid-air on top
        // of the per-epoch accounting.
        let stash_floor = (config.epoch.pipeline_depth.max(1) as usize + 1)
            * config.epoch.reads_per_epoch()
            + config.epoch.write_batch_size
            + config.epoch.read_batches_in_flight.saturating_sub(1) * config.epoch.read_batch_size
            + 4 * config.oram.z as usize;
        config.oram.max_stash = config.oram.max_stash.max(stash_floor);
        config.validate()?;
        let durability = DurabilityManager::new(&keys, store.clone(), counter, &config.epoch);
        let exec = ExecOptions {
            parallel: true,
            threads: config.epoch.executor_threads,
            deferred_writes: true,
            encrypt: true,
            fast_init: config.oram.num_objects > 50_000,
        };
        let oram = RingOram::new(config.oram, &keys, store.clone(), exec, config.seed)?;
        let (reader, engine) = oram.split();
        durability.set_current_epoch(1);

        let inner = Arc::new(ProxyInner {
            config,
            keys,
            store,
            durability,
            reader: Mutex::new(Some(reader)),
            engine: Mutex::new(Some(engine)),
            state: Mutex::new(ProxyState::new(1, 0)),
            client_wakeup: Condvar::new(),
            driver_wakeup: Condvar::new(),
            decider_wakeup: Condvar::new(),
            next_ts: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            lives: AtomicU64::new(0),
            stats: Mutex::new(ProxyStats::default()),
            epoch_gate: Mutex::new(None),
            read_dispatch: ReadDispatch::new(),
        });
        let exec_inner = inner.clone();
        let executor = std::thread::Builder::new()
            .name("obladi-epoch-executor".into())
            .spawn(move || epoch_executor(exec_inner))
            .map_err(|e| ObladiError::Internal(format!("failed to spawn epoch executor: {e}")))?;
        let decide_inner = inner.clone();
        let decider = std::thread::Builder::new()
            .name("obladi-epoch-decider".into())
            .spawn(move || epoch_decider(decide_inner))
            .map_err(|e| ObladiError::Internal(format!("failed to spawn epoch decider: {e}")))?;
        let mut threads = vec![executor, decider];
        for i in 0..inner.config.epoch.read_batches_in_flight {
            let runner_inner = inner.clone();
            let runner = std::thread::Builder::new()
                .name(format!("obladi-read-runner-{i}"))
                .spawn(move || read_batch_runner(runner_inner))
                .map_err(|e| ObladiError::Internal(format!("failed to spawn read runner: {e}")))?;
            threads.push(runner);
        }
        Ok(ObladiDb {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// The configuration this proxy runs with.
    pub fn config(&self) -> &ObladiConfig {
        &self.inner.config
    }

    /// The underlying untrusted store (benchmarks read its counters).
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.inner.store
    }

    /// Proxy statistics snapshot.
    pub fn stats(&self) -> ProxyStats {
        *self.inner.stats.lock()
    }

    /// ORAM statistics snapshot (physical requests, evictions, …).
    pub fn oram_stats(&self) -> Option<obladi_oram::OramStats> {
        self.inner.reader.lock().as_ref().map(|r| r.stats())
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Result<ObladiTxn<'_>> {
        let ts = self.inner.next_ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.begin_at(ts)
    }

    /// Begins a transaction with an externally assigned MVTSO timestamp.
    ///
    /// The sharded front door stamps transactions from one global timestamp
    /// oracle so the serialization order is total *across* shards; each
    /// participating shard then opens its local piece of the transaction at
    /// that same timestamp.  The caller must guarantee timestamps are unique
    /// per proxy; the proxy's own generator is bumped past `ts` so mixing
    /// [`ObladiDb::begin`] calls in cannot collide.
    pub fn begin_at(&self, ts: TxnId) -> Result<ObladiTxn<'_>> {
        self.begin_at_checked(ts, None)
    }

    /// Like [`ObladiDb::begin_at`], but fails (retryably) unless the proxy
    /// still hosts the epoch identified by `generation` — either as the
    /// executing epoch or as a still-open (not yet decided) deciding epoch.
    ///
    /// The sharded front door draws a global timestamp, samples each
    /// shard's target generation ([`ObladiDb::stamp_generation`]), and
    /// opens legs lazily; a leg must open in the same local epoch the
    /// timestamp was sampled against, or the timestamp could be smaller
    /// than timestamps already folded into the epoch's base versions.
    /// Checking the generation *inside* the proxy's state lock makes the
    /// check atomic with the epoch rollover — no external barrier or
    /// coordinator rendezvous is involved, so beginning a transaction never
    /// blocks on an epoch decision.
    ///
    /// A leg that lands in a *deciding* epoch (its read phase is over, its
    /// cross-shard decision still in flight) joins with reduced powers: it
    /// can read cached values, write keys the next epoch has not yet
    /// fetched, and request commit — exactly what a transaction parked at
    /// the old stop-the-world barrier could do.
    pub fn begin_at_generation(&self, ts: TxnId, generation: u64) -> Result<ObladiTxn<'_>> {
        self.begin_at_checked(ts, Some(generation))
    }

    fn begin_at_checked(&self, ts: TxnId, generation: Option<u64>) -> Result<ObladiTxn<'_>> {
        if self.inner.crashed.load(Ordering::SeqCst) {
            return Err(ObladiError::ProxyUnavailable);
        }
        self.inner.next_ts.fetch_max(ts, Ordering::SeqCst);
        let mut state = self.inner.state.lock();
        let target = match generation {
            None => state.exec.generation,
            Some(expected) if expected == state.exec.generation => expected,
            Some(expected) => match state.deciding.as_ref() {
                Some(deciding) if deciding.generation == expected && !deciding.closed => expected,
                _ => {
                    return Err(ObladiError::TxnAborted(AbortReason::EpochEnd.to_string()));
                }
            },
        };
        if target == state.exec.generation {
            state.exec.mvtso.begin(ts);
            state.exec.active_txns.insert(ts);
        } else {
            let deciding = state.deciding.as_mut().expect("checked above");
            deciding.mvtso.begin(ts);
            deciding.active_txns.insert(ts);
        }
        Ok(ObladiTxn {
            db: self,
            id: ts,
            generation: target,
            finished: false,
        })
    }

    /// The generations a new externally-stamped transaction can target on
    /// this shard: the executing epoch's, and — while an epoch is sealed in
    /// the deciding slot with its decision still open — that epoch's too.
    ///
    /// The pair encodes which rendezvous each target decides at: an open
    /// deciding epoch decides at the shard's *next* rendezvous and the
    /// executing epoch one later; with no open deciding epoch the executing
    /// epoch is itself next.  The sharded front door samples every shard's
    /// pair at stamping and picks per-leg targets that all decide at one
    /// rendezvous (see `ShardedDb::begin`).
    pub fn stamp_targets(&self) -> (u64, Option<u64>) {
        let state = self.inner.state.lock();
        let deciding = state
            .deciding
            .as_ref()
            .filter(|deciding| !deciding.closed)
            .map(|deciding| deciding.generation);
        (state.exec.generation, deciding)
    }

    /// The generation of the epoch currently executing.
    pub fn current_generation(&self) -> u64 {
        self.inner.state.lock().exec.generation
    }

    /// Installs an [`EpochGate`] consulted before every epoch finalisation.
    pub fn set_epoch_gate(&self, gate: Arc<dyn EpochGate>) {
        *self.inner.epoch_gate.lock() = Some(gate);
    }

    /// Blocks until the epoch that is current at the time of the call has
    /// been superseded (or `timeout` elapses, or the proxy crashes / shuts
    /// down).  Returns `true` if a fresh epoch began.
    ///
    /// Epoch-overflow aborts (`BatchFull`) are retryable but pointless to
    /// retry *within* the same epoch — its batch capacity stays exhausted
    /// until finalisation.  Retry loops (the sharded front door, clients)
    /// use this to wait exactly as long as needed and no longer.
    pub fn wait_epoch_rollover(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        let generation = state.exec.generation;
        loop {
            if state.exec.generation != generation {
                return true;
            }
            if self.inner.shutdown.load(Ordering::SeqCst)
                || self.inner.crashed.load(Ordering::SeqCst)
            {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .client_wakeup
                .wait_for(&mut state, deadline - now);
        }
    }

    /// The identifier of the epoch currently executing.
    pub fn current_epoch(&self) -> EpochId {
        self.inner.state.lock().exec.epoch
    }

    /// The identifier of the epoch currently deciding (rendezvous, commit
    /// vote, write-back in flight), if any.
    pub fn deciding_epoch(&self) -> Option<EpochId> {
        self.inner.state.lock().deciding.as_ref().map(|d| d.epoch)
    }

    /// Simulates a proxy crash: all volatile state (epoch state, version
    /// cache, ORAM client metadata, stash) is dropped and every in-flight
    /// transaction aborts.  The trusted counter and cloud storage survive.
    pub fn crash(&self) {
        crash_inner(&self.inner);
    }

    /// Recovers from a crash using the recovery unit (§8) and resumes
    /// processing.  Returns the timing breakdown reported in Table 11b.
    ///
    /// In-doubt 2PC-prepared transactions are presumed aborted; a sharded
    /// deployment recovers through [`ObladiDb::recover_resolving`] instead,
    /// so voted cross-shard transactions can be finished.
    pub fn recover(&self) -> Result<RecoveryReport> {
        self.recover_resolving(&|_| false).map(|(report, _)| report)
    }

    /// Like [`ObladiDb::recover`], but resolves in-doubt 2PC-prepared
    /// transactions through `resolve`: `resolve(txn)` returns whether the
    /// deployment coordinator decided to commit `txn`.  Committed in-doubt
    /// transactions are replayed from their durable prepare records and made
    /// durable *before* the proxy resumes serving, so the shard rejoins with
    /// its half of every voted cross-shard transaction in place.  Returns
    /// the report and the prepared transactions this shard can now vouch
    /// for (replayed plus already-durable, for acknowledging the
    /// coordinator).
    pub fn recover_resolving(
        &self,
        resolve: &dyn Fn(TxnId) -> bool,
    ) -> Result<(RecoveryReport, crate::durability::RecoveredTxns)> {
        if !self.inner.crashed.load(Ordering::SeqCst) {
            return Err(ObladiError::Recovery("proxy has not crashed".into()));
        }
        let exec = ExecOptions {
            parallel: true,
            threads: self.inner.config.epoch.executor_threads,
            deferred_writes: true,
            encrypt: true,
            fast_init: false,
        };
        let (oram, next_epoch, report, resolved) = self.inner.durability.recover_resolving(
            self.inner.config.oram,
            &self.inner.keys,
            exec,
            self.inner.config.seed,
            resolve,
        )?;
        let (new_reader, new_engine) = oram.split();
        {
            // The fresh halves are installed *inside* the state-lock (and
            // therefore `lives`) critical section, mirroring the wipe in
            // `crash_inner_guarded`: a stale guarded self-crash — a decider
            // surfacing a pre-crash I/O failure right now — either runs
            // before this section (wiping the old, already-empty slots) or
            // after it, where the bumped life token makes it a no-op.
            // Installing the halves first and bumping `lives` later would
            // leave a window where the stale crash wipes the freshly
            // recovered client on a proxy about to be marked healthy.
            let mut state = self.inner.state.lock();
            *self.inner.reader.lock() = Some(new_reader);
            *self.inner.engine.lock() = Some(new_engine);
            let generation = state.exec.generation + 1;
            let outcomes_carry = std::mem::take(&mut state.outcomes);
            *state = ProxyState::new(next_epoch, generation);
            state.outcomes = outcomes_carry;
            // A new life: failures observed before this point must no
            // longer fate-share into a crash (see `ProxyInner::lives`).
            self.inner.lives.fetch_add(1, Ordering::SeqCst);
        }
        self.inner.crashed.store(false, Ordering::SeqCst);
        self.inner.driver_wakeup.notify_all();
        self.inner.decider_wakeup.notify_all();
        let gate = self.inner.epoch_gate.lock().clone();
        if let Some(gate) = gate {
            gate.proxy_recovered();
        }
        Ok((report, resolved))
    }

    /// Whether the proxy is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// Stops the epoch driver and releases resources.  Outstanding
    /// transactions abort.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // The decider may be parked at a cross-shard rendezvous; tell the
        // gate this proxy is leaving so the coordinator releases it (and
        // stops counting it into future barriers).
        let gate = self.inner.epoch_gate.lock().clone();
        if let Some(gate) = gate {
            gate.proxy_stopping();
        }
        self.inner.driver_wakeup.notify_all();
        self.inner.decider_wakeup.notify_all();
        self.inner.client_wakeup.notify_all();
        {
            let mut queue = self.inner.read_dispatch.queue.lock();
            queue.stop = true;
            self.inner.read_dispatch.cond.notify_all();
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ObladiDb {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl crate::api::FrontDoor for ObladiDb {
    fn deployment(&self) -> String {
        "obladi".to_string()
    }

    fn stop(&self) {
        self.shutdown();
    }
}

impl KvDatabase for ObladiDb {
    fn execute<T>(&self, body: &mut dyn FnMut(&mut dyn KvTransaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin()?;
        let result = body(&mut txn);
        match result {
            Ok(value) => {
                // Client-observed commit latency: from the commit request to
                // the acknowledged outcome (decision instant, decision
                // durability or publish — whichever ack wave applied).
                let commit_started = Instant::now();
                txn.commit()?;
                obladi_common::stats::record_commit_latency(commit_started.elapsed());
                Ok(value)
            }
            Err(err) => {
                txn.rollback();
                Err(err)
            }
        }
    }

    fn engine_name(&self) -> &'static str {
        "obladi"
    }
}

/// A transaction handle on the Obladi proxy.
pub struct ObladiTxn<'db> {
    db: &'db ObladiDb,
    id: TxnId,
    generation: u64,
    finished: bool,
}

impl ObladiTxn<'_> {
    /// The transaction's MVTSO timestamp.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Reads a key, blocking until the read batch containing it has executed
    /// if the value is not already cached for this epoch.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>> {
        let inner = &self.db.inner;
        let mut state = inner.state.lock();
        loop {
            if self.db.inner.crashed.load(Ordering::SeqCst) {
                self.finished = true;
                return Err(ObladiError::ProxyUnavailable);
            }
            if state.exec.generation != self.generation {
                // A transaction that joined the *deciding* epoch (or was
                // sealed into it) can still read values cached in that
                // epoch's version chains.  A miss is routed through the
                // epoch's late-read batch (the next epoch's padded batches
                // carry it in their spare slots) while the decision is
                // still open; once it has closed, or the batch is out of
                // capacity, the read aborts retryably, exactly as at the
                // old stop-the-world barrier.  No `closed` check is needed
                // to keep finalized-but-not-yet-durable values from
                // leaking here: `finalize()` settles every transaction of
                // the epoch, so once the decision has been applied this
                // transaction is Aborted (or Committed) in the snapshot's
                // MVTSO and `read` fails its `check_active` instead of
                // returning a value.
                match state.deciding.as_mut() {
                    Some(deciding) if deciding.generation == self.generation => {
                        match deciding.mvtso.read(self.id, key)? {
                            ReadOutcome::Value { value, .. } => return Ok(value),
                            ReadOutcome::NeedsFetch => {
                                // Depth 1 keeps the strict barrier shape
                                // (no batches run while an epoch decides),
                                // so late reads exist only at depth >= 2.
                                let config = &inner.config.epoch;
                                let queued = deciding.late_pending_set.contains(&key)
                                    || deciding.late_in_flight.contains(&key);
                                let admissible = config.pipeline_depth >= 2
                                    && !deciding.closed
                                    && (queued
                                        || deciding.late_enqueued < config.reads_per_epoch());
                                if !admissible {
                                    deciding.mvtso.abort(self.id, AbortReason::BatchFull);
                                    deciding.active_txns.remove(&self.id);
                                    self.finished = true;
                                    obladi_obs::global()
                                        .counter("proxy.late_read.declined")
                                        .inc();
                                    return Err(ObladiError::BatchFull(format!(
                                        "read of key {key} missed the cache of a deciding epoch"
                                    )));
                                }
                                if !queued {
                                    deciding.late_pending.push(key);
                                    deciding.late_pending_set.insert(key);
                                    deciding.late_enqueued += 1;
                                }
                            }
                        }
                    }
                    _ => {
                        self.finished = true;
                        return Err(ObladiError::TxnAborted(AbortReason::EpochEnd.to_string()));
                    }
                }
                // Enqueued (or already in flight): wake the executor —
                // which may be parked in its hold-back loop — and wait for
                // the fetched value to register, the decision to settle
                // this transaction, or the slot to clear.
                inner.driver_wakeup.notify_all();
                inner
                    .client_wakeup
                    .wait_for(&mut state, Duration::from_secs(10));
                continue;
            }
            match state.exec.mvtso.read(self.id, key)? {
                ReadOutcome::Value { value, .. } => return Ok(value),
                ReadOutcome::NeedsFetch => {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        self.finished = true;
                        return Err(ObladiError::ProxyUnavailable);
                    }
                    if state.carry_pending.contains(&key) {
                        // The deciding epoch wrote this key and its fate is
                        // not yet published: fetching now would surface the
                        // pre-decision value even if the write commits, and
                        // registering the new value early would leak an
                        // undecided epoch's write.  Park until the decision
                        // publishes — it registers committed carry values as
                        // this epoch's base versions and releases the rest
                        // for normal fetching.
                        inner
                            .client_wakeup
                            .wait_for(&mut state, Duration::from_secs(10));
                        continue;
                    }
                    let late_conflict = state.deciding.as_ref().is_some_and(|deciding| {
                        deciding.late_pending_set.contains(&key)
                            || deciding.late_in_flight.contains(&key)
                    });
                    if late_conflict {
                        // The deciding epoch is fetching (or queued to
                        // fetch) this key through its late-read batch;
                        // admitting it here too could put the same key into
                        // two concurrently in-flight batches, which the
                        // split client forbids (pairwise-disjoint read
                        // sets).  Once that fetch ingests — or the decision
                        // publishes — the key admits normally, resolving
                        // from the stash at plan time.
                        inner
                            .client_wakeup
                            .wait_for(&mut state, Duration::from_secs(10));
                        continue;
                    }
                    if !state.exec.pending_set.contains(&key)
                        && !state.exec.in_flight.contains(&key)
                    {
                        // Will the request fit into any remaining batch of
                        // this epoch?
                        let config = &inner.config.epoch;
                        let remaining_batches = config
                            .read_batches
                            .saturating_sub(state.exec.batches_issued)
                            as usize;
                        let capacity = remaining_batches * config.read_batch_size;
                        if state.exec.pending_fetch.len() >= capacity {
                            state.exec.mvtso.abort(self.id, AbortReason::BatchFull);
                            self.finished = true;
                            state.exec.active_txns.remove(&self.id);
                            return Err(ObladiError::BatchFull(format!(
                                "read of key {key} does not fit in the epoch's remaining batches"
                            )));
                        }
                        state.exec.pending_fetch.push(key);
                        state.exec.pending_set.insert(key);
                        if state.exec.pending_fetch.len() >= config.read_batch_size {
                            inner.driver_wakeup.notify_all();
                        }
                    }
                    // Wait for the batch to execute (or the epoch to end).
                    inner
                        .client_wakeup
                        .wait_for(&mut state, Duration::from_secs(10));
                }
            }
        }
    }

    /// Buffers a write in the epoch's version cache.
    pub fn write(&mut self, key: Key, value: Value) -> Result<()> {
        let inner = &self.db.inner;
        let mut state = inner.state.lock();
        if self.db.inner.crashed.load(Ordering::SeqCst) {
            self.finished = true;
            return Err(ObladiError::ProxyUnavailable);
        }
        if state.exec.generation != self.generation {
            return self.write_deciding(&mut state, key, value);
        }
        match state.exec.mvtso.write(self.id, key, value) {
            Ok(()) => Ok(()),
            Err(err) => {
                self.finished = true;
                state.exec.active_txns.remove(&self.id);
                Err(err)
            }
        }
    }

    /// A write by a transaction living in the deciding epoch.  Allowed —
    /// the decision has not sampled candidates with finality until the
    /// epoch closes — but only while the *executing* epoch has not already
    /// fetched (or begun fetching) the key: such a fetch registered the
    /// pre-decision value as the next epoch's base, and a late commit of
    /// this write would invalidate it.  The key joins the carry set so the
    /// executing epoch's future reads wait for the decision.
    fn write_deciding(
        &mut self,
        state: &mut MutexGuard<'_, ProxyState>,
        key: Key,
        value: Value,
    ) -> Result<()> {
        let fetched_by_next = state.exec.mvtso.has_base(key)
            || state.exec.pending_set.contains(&key)
            || state.exec.in_flight.contains(&key);
        let Some(deciding) = state
            .deciding
            .as_mut()
            .filter(|deciding| deciding.generation == self.generation)
        else {
            self.finished = true;
            return Err(ObladiError::TxnAborted(AbortReason::EpochEnd.to_string()));
        };
        if fetched_by_next {
            deciding.mvtso.abort(self.id, AbortReason::EpochEnd);
            deciding.active_txns.remove(&self.id);
            self.finished = true;
            return Err(ObladiError::TxnAborted(format!(
                "write to key {key} raced the next epoch's read of it"
            )));
        }
        let result = deciding.mvtso.write(self.id, key, value);
        if result.is_err() {
            deciding.active_txns.remove(&self.id);
        }
        match result {
            Ok(()) => {
                state.carry_pending.insert(key);
                Ok(())
            }
            Err(err) => {
                self.finished = true;
                Err(err)
            }
        }
    }

    /// Requests commit and blocks until the epoch ends, returning the
    /// commit/abort decision (delayed visibility).
    pub fn commit(mut self) -> Result<TxnOutcome> {
        self.request_commit()?;
        self.await_outcome()
    }

    /// Registers the commit request without waiting for the epoch to end.
    ///
    /// Together with [`ObladiTxn::await_outcome`] this splits [`ObladiTxn::commit`]
    /// in two, which a multi-shard transaction needs: its commit must be
    /// *requested* on every participating shard before the global epoch
    /// barrier, and only then can the caller block for the (coordinated)
    /// outcomes.  After this call the transaction can no longer be rolled
    /// back by the client.
    pub fn request_commit(&mut self) -> Result<()> {
        let inner = &self.db.inner;
        let mut state = inner.state.lock();
        self.finished = true;
        if state.exec.generation == self.generation {
            let requested = state.exec.mvtso.request_commit(self.id);
            if requested.is_err() {
                // The client observes the failure as an error; the epoch's
                // published outcome would never be collected, so drop the
                // transaction from the active set now (outcomes are only
                // published for still-active transactions).
                state.exec.active_txns.remove(&self.id);
            }
            requested?;
        } else if let Some(deciding) = state.deciding.as_mut() {
            if deciding.generation == self.generation {
                // The transaction's epoch has rolled out of execution but
                // its decision is still in flight: the request still counts,
                // because the coordinator samples commit candidates at
                // decision time.  A failure here means the decision already
                // closed over this transaction; its (abort) outcome will be
                // published like any other.
                let _ = deciding.mvtso.request_commit(self.id);
            }
        }
        Ok(())
    }

    /// Blocks until the transaction's outcome is acknowledged and returns
    /// the decision.  Call after [`ObladiTxn::request_commit`].  Aborts and
    /// dependency-free read-only commits surface at their epoch's decision
    /// instant, write commits once the epoch's decision record is durable,
    /// and everything else (durability disabled, decision-log fallback) at
    /// publish time.
    pub fn await_outcome(self) -> Result<TxnOutcome> {
        let parked = Instant::now();
        let result = self.await_outcome_parked();
        obladi_obs::global()
            .histogram("proxy.phase.commit_wait_us")
            .record_duration(parked.elapsed());
        result
    }

    /// The parked wait loop behind [`ObladiTxn::await_outcome`], timed
    /// separately so commit parking is attributable on its own in
    /// `--metrics-out` dumps (`proxy.phase.commit_wait_us`) rather than
    /// disappearing between the executor's `slot_wait_us` sites.
    fn await_outcome_parked(self) -> Result<TxnOutcome> {
        let inner = &self.db.inner;
        let mut state = inner.state.lock();
        loop {
            // The outcome map is the source of truth; it is populated once
            // the transaction's epoch has been made durable.
            if let Some(outcome) = state.outcomes.remove(&self.id) {
                return Ok(outcome);
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                return Ok(TxnOutcome::Aborted(AbortReason::EpochEnd));
            }
            // If our epoch's successor has itself finished and no outcome
            // was ever published, this transaction's state was lost (e.g. a
            // crash wiped the epoch) — report the abort rather than waiting
            // forever.  (An epoch's outcomes publish before the pipeline
            // slot frees, and the next rollover needs the free slot, so a
            // two-generation gap really does imply a lost outcome.)
            if state.exec.generation > self.generation + 1 {
                return Ok(TxnOutcome::Aborted(AbortReason::EpochEnd));
            }
            inner
                .client_wakeup
                .wait_for(&mut state, Duration::from_secs(10));
        }
    }

    /// Aborts the transaction.
    pub fn rollback(mut self) {
        self.abort_internal();
    }

    fn abort_internal(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let inner = &self.db.inner;
        let mut state = inner.state.lock();
        if state.exec.generation == self.generation {
            state.exec.mvtso.abort(self.id, AbortReason::UserRequested);
            state.exec.active_txns.remove(&self.id);
        } else if let Some(deciding) = state.deciding.as_mut() {
            if deciding.generation == self.generation {
                deciding.mvtso.abort(self.id, AbortReason::UserRequested);
                deciding.active_txns.remove(&self.id);
            }
        }
        // The client observed the abort through an error; its epoch-end
        // outcome (if recorded) will never be collected, so drop it.
        state.outcomes.remove(&self.id);
    }
}

impl KvTransaction for ObladiTxn<'_> {
    fn read(&mut self, key: Key) -> Result<Option<Value>> {
        ObladiTxn::read(self, key)
    }

    fn write(&mut self, key: Key, value: Value) -> Result<()> {
        ObladiTxn::write(self, key, value)
    }

    fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for ObladiTxn<'_> {
    fn drop(&mut self) {
        self.abort_internal();
    }
}

impl ObladiTxn<'_> {
    /// Consumes the transaction, committing it and mapping aborts to errors.
    pub fn commit_or_err(self) -> Result<()> {
        crate::api::outcome_to_result(self.commit()?)
    }
}

// ----------------------------------------------------------------------
// Epoch pipeline: executor + decider
// ----------------------------------------------------------------------
//
// The epoch lifecycle is split across two threads forming a bounded
// pipeline (depth `config.epoch.pipeline_depth`):
//
// * the **executor** runs an epoch's `R` read batches, then snapshots the
//   epoch's MVTSO state into the *deciding* slot, rolls the proxy over to
//   the next epoch, and (at depth 2) immediately starts that epoch's read
//   batches;
// * the **decider** drains the slot: it consults the epoch gate (for a
//   sharded deployment this is the cross-shard rendezvous + commit vote +
//   durable prepares), applies the verdict, performs the write batch /
//   flush / checkpoint, and publishes the outcomes — which frees the slot
//   for the next epoch.
//
// The overlap this buys is exactly the ROADMAP "pipelined epoch barrier":
// epoch `N+1`'s reads execute while epoch `N`'s decision is still in
// flight, instead of every shard parking at the rendezvous.  Reads of keys
// the deciding epoch wrote are pinned to the pre-decision snapshot via
// `ProxyState::carry_pending` (see `ObladiTxn::read`), so no read ever
// observes an undecided epoch's writes.  At depth 1 the executor waits for
// the slot to drain before starting the next epoch's batches, restoring
// the stop-the-world barrier (the differential baseline).

fn epoch_executor(inner: Arc<ProxyInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            // Wake anyone still parked, then exit.
            inner.client_wakeup.notify_all();
            inner.decider_wakeup.notify_all();
            return;
        }
        if inner.crashed.load(Ordering::SeqCst) {
            // Park until recovery or shutdown.
            let mut state = inner.state.lock();
            inner
                .driver_wakeup
                .wait_for(&mut state, Duration::from_millis(50));
            continue;
        }

        // ---- R read batches, shipped every Δ. ----
        //
        // The first half fires on the normal Δ rhythm — with the pipeline,
        // typically while the previous epoch's decision is still in flight
        // (the overlap).  The second half is held back until the pipeline
        // slot frees (the previous epoch published): if all R batches
        // burned out early, reads arriving later in the epoch's window —
        // and especially chains of dependent reads, which need one batch
        // per link — would abort `BatchFull`, and the parked-window problem
        // would just have moved one epoch ahead.  The split depends only on
        // pipeline state, never on demand, so batch timing stays
        // workload-independent; the count is always exactly R padded
        // batches per epoch.
        let read_batches = inner.config.epoch.read_batches;
        let reserved = read_batches.div_ceil(2);
        for batch_index in 0..read_batches {
            if batch_index + reserved >= read_batches {
                let hold_started = Instant::now();
                let mut state = inner.state.lock();
                // The hold releases early when the deciding epoch has late
                // reads queued: spending one of the reserved batches on
                // them *is* the reservation's purpose — a deciding-epoch
                // leg parked on an uncached key would otherwise wait out
                // the entire gate rendezvous this very loop is parked on.
                // The hold lasts until the slot *frees* (not merely until
                // the decision closes): clients collect outcomes at publish
                // and immediately issue dependent reads, which must still
                // find batches in this epoch.
                while state.deciding.is_some()
                    && !late_reads_pending(&state)
                    && !inner.shutdown.load(Ordering::SeqCst)
                    && !inner.crashed.load(Ordering::SeqCst)
                {
                    inner.driver_wakeup.wait(&mut state);
                }
                drop(state);
                obladi_obs::global()
                    .histogram("proxy.phase.slot_wait_us")
                    .record_duration(hold_started.elapsed());
            }
            wait_for_batch(&inner);
            if inner.shutdown.load(Ordering::SeqCst) || inner.crashed.load(Ordering::SeqCst) {
                break;
            }
            if !dispatch_read_batch(&inner) {
                break;
            }
        }
        // Every batch of this epoch must land before the rollover: a batch
        // registers its fetched values against the epoch it planned in, so
        // none may straddle the snapshot.
        drain_read_batches(&inner);
        if inner.shutdown.load(Ordering::SeqCst) || inner.crashed.load(Ordering::SeqCst) {
            continue;
        }

        // ---- Hand the epoch to the decider and roll over. ----
        let rollover_started = Instant::now();
        let mut state = inner.state.lock();
        // Bounded depth: at most one epoch may be deciding.
        while state.deciding.is_some()
            && !inner.shutdown.load(Ordering::SeqCst)
            && !inner.crashed.load(Ordering::SeqCst)
        {
            inner.driver_wakeup.wait(&mut state);
        }
        obladi_obs::global()
            .histogram("proxy.phase.slot_wait_us")
            .record_duration(rollover_started.elapsed());
        if inner.shutdown.load(Ordering::SeqCst) || inner.crashed.load(Ordering::SeqCst) {
            continue;
        }
        let next_epoch = state.exec.epoch + 1;
        let next_generation = state.exec.generation + 1;
        let snapshot = std::mem::replace(
            &mut state.exec,
            EpochState::new(next_epoch, next_generation),
        );
        state.carry_pending = snapshot.mvtso.written_keys();
        state.deciding = Some(DecidingEpoch {
            epoch: snapshot.epoch,
            generation: snapshot.generation,
            mvtso: snapshot.mvtso,
            active_txns: snapshot.active_txns,
            late_pending: Vec::new(),
            late_pending_set: HashSet::new(),
            late_in_flight: HashSet::new(),
            late_enqueued: 0,
            closed: false,
        });
        obladi_obs::global().gauge("proxy.pipeline.deciding").set(1);
        drop(state);
        inner.decider_wakeup.notify_all();
        // Readers parked on batches of the snapshotted epoch must wake and
        // observe the rollover.
        inner.client_wakeup.notify_all();
        if inner.config.epoch.pipeline_depth <= 1 {
            // Depth 1: stop-the-world barrier semantics — no batch of the
            // next epoch executes until the decision has fully published.
            let barrier_started = Instant::now();
            let mut state = inner.state.lock();
            while state.deciding.is_some()
                && !inner.shutdown.load(Ordering::SeqCst)
                && !inner.crashed.load(Ordering::SeqCst)
            {
                inner.driver_wakeup.wait(&mut state);
            }
            drop(state);
            obladi_obs::global()
                .histogram("proxy.phase.slot_wait_us")
                .record_duration(barrier_started.elapsed());
        }
    }
}

/// Dispatches one read batch to the runner pool.  Returns `false` if the
/// proxy is stopping or crashed.
///
/// Overlap is demand-gated: a second batch is dispatched while the first
/// is still in flight only when a full batch of keys is already queued (or
/// the deciding epoch has late reads waiting) — that backlog is exactly
/// the case where overlapping the physical fetches hides storage latency.
/// With less than a full batch pending, dispatch falls back to the old
/// one-at-a-time rhythm: the next batch plans only after the previous one
/// has ingested, so a chain of dependent reads (read → ingest → next read)
/// catches one batch per link instead of watching the whole epoch's batch
/// budget burn in a few Δ intervals and aborting `BatchFull`.
fn dispatch_read_batch(inner: &Arc<ProxyInner>) -> bool {
    let full_cap = inner.config.epoch.read_batches_in_flight;
    let batch_size = inner.config.epoch.read_batch_size;
    loop {
        let backlog = {
            let state = inner.state.lock();
            state.exec.pending_fetch.len() >= batch_size || late_reads_pending(&state)
        };
        let cap = if backlog { full_cap } else { 1 };
        let mut queue = inner.read_dispatch.queue.lock();
        if queue.stop || inner.crashed.load(Ordering::SeqCst) {
            return false;
        }
        if queue.pending + queue.in_flight < cap {
            queue.pending += 1;
            inner.read_dispatch.cond.notify_all();
            return true;
        }
        // Re-sample the backlog once a slot frees or after a short nap —
        // demand may have built up while the in-flight batch fetched.
        inner
            .read_dispatch
            .cond
            .wait_for(&mut queue, Duration::from_millis(1));
    }
}

/// Blocks until every dispatched read batch has completed (or the proxy is
/// stopping).  The executor calls this before the epoch rollover; failed
/// batches finish their fate-sharing crash before they count as drained,
/// so the executor's crash check right after is conclusive.
fn drain_read_batches(inner: &Arc<ProxyInner>) {
    let mut queue = inner.read_dispatch.queue.lock();
    while queue.pending + queue.in_flight > 0 && !queue.stop {
        inner.read_dispatch.cond.wait(&mut queue);
    }
}

/// One read-batch runner thread: executes the batches the epoch executor
/// dispatches, so up to `read_batches_in_flight` batches overlap their
/// physical fetches inside one epoch.  Plans still serialize (briefly) on
/// the split client's state lock in dispatch order; only the storage
/// round-trips overlap.
fn read_batch_runner(inner: Arc<ProxyInner>) {
    loop {
        {
            let mut queue = inner.read_dispatch.queue.lock();
            while queue.pending == 0 && !queue.stop {
                inner.read_dispatch.cond.wait(&mut queue);
            }
            if queue.stop {
                return;
            }
            queue.pending -= 1;
            queue.in_flight += 1;
        }
        // The life token is sampled right before the I/O it guards: the
        // batch runs against the reader it clones under the reader lock,
        // and the clone keeps that client alive for the whole batch even
        // if a recovery swaps in a fresh one meanwhile — so a failure here
        // always belongs to the life sampled here, making the stale-failure
        // check in `self_crash` exact.
        let life = inner.lives.load(Ordering::SeqCst);
        let result = execute_read_batch(&inner);
        if let Err(err) = result {
            // Storage failure mid-epoch: the ORAM client's in-memory
            // metadata may already have diverged from what the failed
            // reads actually delivered, so continuing (and checkpointing
            // that state in later epochs) would make the divergence
            // durable.  Fate sharing treats the failure as a crash: drop
            // all volatile state and wait for recovery (§8).  The crash
            // completes before the batch counts as drained (below), so the
            // executor's post-drain crash check is conclusive.
            self_crash(&inner, life, &err);
        }
        {
            let mut queue = inner.read_dispatch.queue.lock();
            queue.in_flight -= 1;
            inner.read_dispatch.cond.notify_all();
        }
    }
}

fn epoch_decider(inner: Arc<ProxyInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            inner.client_wakeup.notify_all();
            return;
        }
        // Wait for a snapshot to decide.
        let pending = {
            let mut state = inner.state.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                match state.deciding.as_ref() {
                    Some(deciding) if !inner.crashed.load(Ordering::SeqCst) => {
                        break Some((
                            deciding.epoch,
                            deciding.generation,
                            inner.lives.load(Ordering::SeqCst),
                        ));
                    }
                    _ => inner.decider_wakeup.wait(&mut state),
                }
            }
        };
        let Some((epoch, generation, life)) = pending else {
            continue;
        };
        // The epoch's transactions have already been told they aborted if
        // this fails (epoch fate sharing); the client state may be torn in
        // the same way as a failed read batch, so treat it as a crash too.
        if let Err(err) = decide_epoch(&inner, epoch, generation) {
            self_crash(&inner, life, &err);
        }
    }
}

/// Crash entry point for the epoch threads' fate-sharing paths.
///
/// `ProxyUnavailable` means the ORAM client was already taken away by a
/// concurrent external [`ObladiDb::crash`]; re-crashing here would race an
/// interleaved [`ObladiDb::recover`] and wipe the freshly recovered state,
/// so the thread just parks (the crashed flag, or its absence after a
/// completed recovery, steers the main loop).  `life` guards the same race
/// for genuine storage failures: a failure observed before a crash that has
/// since been *recovered* (the executor and decider run concurrently, so a
/// decider's slow failing write-back can outlive a whole crash-and-recover
/// cycle) must not wipe the fresh state.  Every current-life error is a
/// genuine storage/integrity failure discovered by this thread, which owns
/// the decision to fate-share it into a crash.
fn self_crash(inner: &Arc<ProxyInner>, life: u64, err: &ObladiError) {
    if matches!(err, ObladiError::ProxyUnavailable) {
        return;
    }
    crash_inner_guarded(inner, Some(life));
}

/// Drops all volatile proxy state after a crash (simulated or storage-fault
/// induced): the ORAM client is discarded, every in-flight transaction
/// aborts, and the proxy refuses work until [`ObladiDb::recover`] runs.
/// Already-published outcomes are preserved so waiting clients can still
/// collect their verdicts.
fn crash_inner(inner: &Arc<ProxyInner>) {
    crash_inner_guarded(inner, None);
}

fn crash_inner_guarded(inner: &Arc<ProxyInner>, life: Option<u64>) {
    let mut state = inner.state.lock();
    // `lives` only changes under the state lock (recovery), so the check
    // and the wipe are atomic with respect to it.
    if let Some(life) = life {
        if inner.lives.load(Ordering::SeqCst) != life {
            return;
        }
    }
    inner.crashed.store(true, Ordering::SeqCst);
    let mut active: Vec<TxnId> = state.exec.active_txns.drain().collect();
    if let Some(deciding) = state.deciding.as_mut() {
        // The deciding epoch's volatile half dies with the crash too; its
        // waiting clients get the same crash abort (recovery may still
        // finish durably-prepared cross-shard halves later).
        active.extend(deciding.active_txns.drain());
    }
    for txn in active {
        state
            .outcomes
            .insert(txn, TxnOutcome::Aborted(AbortReason::Crash));
    }
    let epoch = state.exec.epoch;
    let generation = state.exec.generation + 1;
    let outcomes_carry = std::mem::take(&mut state.outcomes);
    *state = ProxyState::new(epoch, generation);
    state.outcomes = outcomes_carry;
    obladi_obs::global().counter("proxy.crashes").inc();
    obladi_obs::global().gauge("proxy.pipeline.deciding").set(0);
    obladi_obs::trace::global().record("proxy.crash", epoch, 0);
    // Volatile ORAM client state is lost.  The wipe happens *inside* the
    // state-lock (and therefore `lives`) critical section: if it happened
    // after the lock dropped, a recovery interleaving in that window could
    // install a fresh ORAM only to have this stale wipe destroy it on a
    // proxy already marked un-crashed.  Nothing holds the reader or engine
    // lock while acquiring the state lock, so the nesting cannot deadlock
    // (it can wait for an in-flight read batch or write-back to finish,
    // which is fine — the crashed flag is already set, and the split
    // client's internal waits all terminate without external help).
    *inner.reader.lock() = None;
    *inner.engine.lock() = None;
    drop(state);
    inner.client_wakeup.notify_all();
    inner.driver_wakeup.notify_all();
    inner.decider_wakeup.notify_all();
    // The executor may be parked waiting for a free dispatch slot.
    inner.read_dispatch.cond.notify_all();
    // Tell the gate (if any) with no proxy locks held: an external epoch
    // coordinator must stop waiting for this proxy at the rendezvous, or a
    // self-inflicted crash (storage-fault fate sharing) would stall every
    // peer behind the barrier.
    let gate = inner.epoch_gate.lock().clone();
    if let Some(gate) = gate {
        gate.proxy_crashed();
    }
}

/// Whether the deciding epoch has late reads waiting for a batch's spare
/// slots (only while the decision is still open — a closed epoch's queue
/// is settled by its `finalize`, not by fetching).
fn late_reads_pending(state: &ProxyState) -> bool {
    state
        .deciding
        .as_ref()
        .is_some_and(|deciding| !deciding.closed && !deciding.late_pending.is_empty())
}

/// Sleeps until the batch interval elapses, a full batch is queued, or the
/// deciding epoch has late reads waiting to ride the batch's spare slots.
fn wait_for_batch(inner: &Arc<ProxyInner>) {
    let interval = inner.config.epoch.batch_interval;
    let batch_size = inner.config.epoch.read_batch_size;
    let mut state = inner.state.lock();
    if state.exec.pending_fetch.len() >= batch_size || late_reads_pending(&state) {
        return;
    }
    inner.driver_wakeup.wait_for(&mut state, interval);
}

fn execute_read_batch(inner: &Arc<ProxyInner>) -> Result<()> {
    let obs = obladi_obs::global();
    let batch_size = inner.config.epoch.read_batch_size;
    // Take up to `b_read` pending keys (deduplicated at enqueue time).
    let plan_started = Instant::now();
    let (epoch, keys, late) = {
        let mut state = inner.state.lock();
        let take = state.exec.pending_fetch.len().min(batch_size);
        let keys: Vec<Key> = state.exec.pending_fetch.drain(..take).collect();
        for key in &keys {
            state.exec.pending_set.remove(key);
            state.exec.in_flight.insert(*key);
        }
        // The batch's spare (padding) slots carry the deciding epoch's
        // late reads.  The ORAM still holds the state that epoch read
        // against (its write-back starts only after the decision), so a
        // late fetch is indistinguishable from one the epoch issued in
        // its own read phase — and a real request in a slot that would
        // have carried a dummy leaves the physical trace unchanged.
        let mut late: Option<(u64, Vec<Key>)> = None;
        let state = &mut *state;
        if let Some(deciding) = state.deciding.as_mut() {
            if !deciding.closed && !deciding.late_pending.is_empty() {
                let spare = batch_size - keys.len();
                if spare > 0 {
                    // A late key the executing epoch is itself fetching (or
                    // has queued) is deferred, not dropped: concurrently
                    // in-flight batches must never carry the same key twice
                    // (the split client requires pairwise-disjoint read
                    // sets), and once the executing epoch's fetch ingests,
                    // a later batch resolves the deferred key from the
                    // stash at plan time.
                    let mut late_keys: Vec<Key> = Vec::with_capacity(spare);
                    let mut deferred: Vec<Key> = Vec::new();
                    for key in deciding.late_pending.drain(..) {
                        if late_keys.len() < spare
                            && !state.exec.pending_set.contains(&key)
                            && !state.exec.in_flight.contains(&key)
                        {
                            deciding.late_pending_set.remove(&key);
                            deciding.late_in_flight.insert(key);
                            late_keys.push(key);
                        } else {
                            deferred.push(key);
                        }
                    }
                    deciding.late_pending = deferred;
                    if !late_keys.is_empty() {
                        late = Some((deciding.generation, late_keys));
                    }
                }
            }
        }
        state.exec.batches_issued += 1;
        (state.exec.epoch, keys, late)
    };
    obs.histogram("proxy.phase.read_plan_us")
        .record_duration(plan_started.elapsed());

    // Overlap instrumentation: with pipelining this fires for epoch N+1
    // while epoch N's permit_commits call may still be in flight.
    let gate = inner.epoch_gate.lock().clone();
    if let Some(gate) = &gate {
        gate.read_batch_starting(epoch);
    }

    inner.durability.begin_read_batch();

    // Pad the batch to its fixed size with dummy requests; late reads of
    // the deciding epoch ride what would otherwise be padding.
    let mut requests: Vec<Option<Key>> = keys.iter().copied().map(Some).collect();
    if let Some((_, late_keys)) = &late {
        requests.extend(late_keys.iter().copied().map(Some));
    }
    requests.resize(batch_size, None);

    let values = {
        let _span = obladi_obs::trace::global().span("proxy.read_fetch", epoch);
        let fetch_timer = obs.histogram("proxy.phase.read_fetch_us");
        // Clone the reader out of the lock: the read plane is `Clone` (all
        // clones share the client state), so concurrent runners never
        // serialize on this proxy-level lock — their batches overlap inside
        // the split client, which plans each under its own lock and runs
        // the physical fetches lock-free.  The clone also keeps the client
        // alive for the whole batch even if a crash wipes the slot.
        let reader = inner
            .reader
            .lock()
            .as_ref()
            .ok_or(ObladiError::ProxyUnavailable)?
            .clone();
        // The logger carries this epoch explicitly: the decider's write-back
        // logs the *deciding* epoch's paths concurrently through its own
        // tagged logger, so the two threads cannot mislabel each other's
        // records.
        let logger = inner.durability.logger_for(epoch);
        fetch_timer.time(|| reader.read_batch(&requests, &logger))?
    };

    {
        let mut stats = inner.stats.lock();
        stats.read_batches += 1;
        stats.real_reads += keys.len() as u64;
        stats.padded_reads += (batch_size - keys.len()) as u64;
    }

    let ingest_started = Instant::now();
    let mut values = values.into_iter();
    let exec_values: Vec<Option<Value>> = values.by_ref().take(keys.len()).collect();
    let mut state = inner.state.lock();
    if state.exec.epoch == epoch {
        for (key, value) in keys.iter().zip(exec_values) {
            state.exec.mvtso.register_base(*key, value);
            state.exec.in_flight.remove(key);
        }
    }
    if let Some((late_generation, late_keys)) = late {
        let mut served = 0u64;
        if let Some(deciding) = state.deciding.as_mut() {
            if deciding.generation == late_generation {
                for (key, value) in late_keys.iter().zip(values.take(late_keys.len())) {
                    deciding.late_in_flight.remove(key);
                    // A decision that closed while the fetch was in flight
                    // already settled every reader; the value is stale
                    // against nothing (the snapshot never changes), but
                    // registering it would be pointless.
                    if !deciding.closed {
                        deciding.mvtso.register_base(*key, value);
                        served += 1;
                    }
                }
            }
        }
        obs.counter("proxy.late_read.served").add(served);
    }
    drop(state);
    obs.histogram("proxy.phase.read_ingest_us")
        .record_duration(ingest_started.elapsed());
    inner.client_wakeup.notify_all();
    if let Some(gate) = &gate {
        gate.read_batch_finished(epoch);
    }
    Ok(())
}

/// Decides, writes back and publishes the epoch sitting in the deciding
/// slot.  Runs on the decider thread; the executor is meanwhile free to run
/// the next epoch's read batches.
fn decide_epoch(inner: &Arc<ProxyInner>, epoch: EpochId, generation: u64) -> Result<()> {
    let obs = obladi_obs::global();
    let tracer = obladi_obs::trace::global();
    let write_capacity = inner.config.epoch.write_batch_size;
    let gate = inner.epoch_gate.lock().clone();

    // Phase 0 (only when an epoch gate is installed): hand the gate a live
    // view of this epoch's commit candidates and collect the permitted set.
    // The gate call may block on the cross-shard epoch barrier, so no proxy
    // lock is held across it; the candidate source re-samples (and
    // capacity-enforces) the snapshot's commit-requested set whenever the
    // coordinator asks, so commit requests that land while this epoch is
    // already deciding still make the vote.
    let permitted: Option<HashSet<TxnId>> = match &gate {
        None => None,
        Some(gate) => {
            let source_inner = inner.clone();
            let candidates: CandidateSource = Arc::new(move || {
                let mut state = source_inner.state.lock();
                match state.deciding.as_mut() {
                    Some(deciding) if deciding.generation == generation => {
                        enforce_write_capacity(&mut deciding.mvtso, write_capacity);
                        deciding.mvtso.commit_candidates()
                    }
                    // The snapshot was wiped (crash): nothing can commit.
                    _ => Vec::new(),
                }
            });
            // The preparer runs at the coordinator's decision time, before
            // this shard's vote counts for a cross-shard transaction: it
            // snapshots each transaction's buffered write set under the
            // state lock, then appends the sealed prepare records to the
            // WAL (no proxy lock held across the storage writes).
            let prep_inner = inner.clone();
            let preparer: TxnPreparer = Arc::new(move |txns: &[TxnId]| {
                let gathered: Vec<(TxnId, Vec<(Key, Value)>)> = {
                    let state = prep_inner.state.lock();
                    match state.deciding.as_ref() {
                        Some(deciding) if deciding.generation == generation => txns
                            .iter()
                            .map(|&txn| (txn, deciding.mvtso.txn_writes(txn)))
                            .collect(),
                        _ => return Err(ObladiError::ProxyUnavailable),
                    }
                };
                // Prepare I/O is timed apart from the enclosing gate wait:
                // the WAL appends are this proxy's own cost, the rest of the
                // rendezvous is time spent waiting on peers.
                let prepare_timer = obladi_obs::global().histogram("proxy.phase.prepare_io_us");
                prepare_timer.time(|| {
                    for (txn, writes) in gathered {
                        prep_inner.durability.prepare_txn(epoch, txn, &writes)?;
                    }
                    Ok(())
                })
            });
            let _span = tracer.span("proxy.gate_wait", epoch);
            let gate_timer = obs.histogram("proxy.phase.gate_wait_us");
            match gate_timer.time(|| gate.permit_commits(epoch, candidates, preparer)) {
                Ok(permits) => Some(permits.into_iter().collect()),
                Err(err) => {
                    // The gate reached no decision (the barrier watchdog
                    // fired).  Fate-sharing this into a crash would turn a
                    // liveness hiccup into lost volatile state on a healthy
                    // shard; instead the verdict is an empty permit set —
                    // every candidate aborts retryably, the epoch finalises
                    // and the pipeline keeps moving.
                    obs.counter("proxy.gate.stalled").inc();
                    eprintln!(
                        "obladi: epoch gate failed for epoch {epoch} \
                         (generation {generation}), aborting its candidates: {err}"
                    );
                    Some(HashSet::new())
                }
            }
        }
    };

    // Phase 1 (under the state lock): apply the verdict to the snapshot and
    // decide commits.  The epoch rollover already happened when the
    // executor snapshotted this epoch, so transactions that began or
    // requested commit since then live in the *next* epoch.  No outcome
    // surfaces before this decision instant — after the epoch closed — so
    // delayed visibility is preserved; *when* each outcome surfaces depends
    // on what it needs to stay truthful:
    //
    //   - aborts and dependency-free read-only commits are acknowledged
    //     here, at the decision instant (an abort is exactly what recovery
    //     would presume; a read-only transaction without same-epoch read
    //     dependencies observed only already-durable base versions);
    //   - the remaining commits are acknowledged once the decision record
    //     is durable in the WAL (phase 1.5) — before write-back and
    //     checkpoint, which recovery replays from that record alone;
    //   - with durability disabled there is no decision record to lean on,
    //     so every outcome waits for publish (phase 3), as before.
    let early_ack = inner.durability.enabled();
    let decide_started = Instant::now();
    let (writes, committed, mut held, mut publish, aborted_count, mut acked_commits) = {
        let mut state = inner.state.lock();
        let Some(deciding) = state
            .deciding
            .as_mut()
            .filter(|deciding| deciding.generation == generation)
        else {
            // A concurrent crash wiped the snapshot mid-decision.
            return Err(ObladiError::ProxyUnavailable);
        };

        // Apply the gate's verdict: every commit-requested transaction the
        // coordinator did not permit — including requests that raced in
        // after the decision — aborts retryably.
        if let Some(permits) = &permitted {
            for txn in deciding.mvtso.commit_requested_txns() {
                if !permits.contains(&txn) {
                    deciding.mvtso.abort(txn, AbortReason::EpochEnd);
                }
            }
        }

        // Enforce the write-batch capacity: commit-requested transactions
        // are admitted in timestamp order until their combined (deduplicated)
        // write set no longer fits; the rest abort with `BatchFull`.  (With
        // a gate this re-runs over the already-enforced permitted set and is
        // a no-op.)
        enforce_write_capacity(&mut deciding.mvtso, write_capacity);

        // Sample which candidates are read-only and dependency-free while
        // they are still commit-requested: `finalize` below consumes the
        // dependency bookkeeping.
        let mut decision_ackable: HashSet<TxnId> = HashSet::new();
        if early_ack {
            for candidate in deciding.mvtso.commit_candidates() {
                if candidate.deps.is_empty() && deciding.mvtso.write_set(candidate.txn).is_empty() {
                    decision_ackable.insert(candidate.txn);
                }
            }
        }

        let (committed, aborted) = deciding.mvtso.finalize();
        deciding.closed = true;
        let writes = deciding.mvtso.committed_tail_writes();

        // Outcomes are acknowledged only for transactions still in the
        // epoch's active set: a transaction that already surfaced its
        // abort to the client as an error (and was dropped from the set)
        // has no one left to collect the outcome, and the entry would
        // leak in the outcomes map forever.  (The crash path makes the
        // same choice.)  Every committed transaction is necessarily still
        // active — an error-aborted one can never reach `Committed`.
        let committed: Vec<TxnId> = committed
            .into_iter()
            .filter(|txn| deciding.active_txns.contains(txn))
            .collect();
        let mut ack_now: Vec<(TxnId, TxnOutcome)> = Vec::new();
        let mut held: Vec<TxnId> = Vec::new();
        let mut publish: Vec<(TxnId, TxnOutcome)> = Vec::new();
        let mut acked_commits = 0u64;
        for txn in &committed {
            if decision_ackable.contains(txn) {
                acked_commits += 1;
                ack_now.push((*txn, TxnOutcome::Committed));
            } else if early_ack {
                held.push(*txn);
            } else {
                publish.push((*txn, TxnOutcome::Committed));
            }
        }
        let mut aborted_count = 0u64;
        for txn in &aborted {
            if !deciding.active_txns.contains(txn) {
                continue;
            }
            aborted_count += 1;
            let reason = match deciding.mvtso.status(*txn) {
                Some(TxnStatus::Aborted(reason)) => reason,
                _ => AbortReason::EpochEnd,
            };
            if early_ack {
                ack_now.push((*txn, TxnOutcome::Aborted(reason)));
            } else {
                publish.push((*txn, TxnOutcome::Aborted(reason)));
            }
        }
        // First ack wave, at the decision instant.  An acknowledged
        // transaction leaves the active set so a later crash cannot
        // overwrite its truthful outcome with `Aborted(Crash)`.
        for (txn, _) in &ack_now {
            deciding.active_txns.remove(txn);
        }
        if acked_commits > 0 {
            obs.counter("proxy.commit.acked_at_decision")
                .add(acked_commits);
        }
        for (txn, outcome) in ack_now {
            state.outcomes.insert(txn, outcome);
        }
        (
            writes,
            committed,
            held,
            publish,
            aborted_count,
            acked_commits,
        )
    };
    obs.histogram("proxy.phase.decide_us")
        .record_duration(decide_started.elapsed());
    // The epoch just closed: the executor's reserved-batch hold releases at
    // `closed` (the batches it frees overlap the write-back below), and
    // readers parked on this epoch's late slots must re-check.  The
    // first-wave acknowledgements ride the same wakeup.
    inner.driver_wakeup.notify_all();
    inner.client_wakeup.notify_all();

    // Phase 1.5: write transactions are acknowledged as soon as the commit
    // decision is durable.  The decision record (committed set + merged
    // writes) lands in the WAL *before* write-back and checkpoint run;
    // recovery replays a decided epoch from that record alone, so
    // acked-implies-durable holds by construction.  If the append fails
    // nothing has been acknowledged yet: the held transactions fall back to
    // the publish path and fate-share whatever phase 2 decides.
    if !held.is_empty() {
        let decision_result = obs.histogram("proxy.phase.decision_log_us").time(|| {
            inner
                .durability
                .decision_durable(epoch, &committed, &writes)
        });
        match decision_result {
            Ok(()) => {
                let mut state = inner.state.lock();
                if let Some(deciding) = state
                    .deciding
                    .as_mut()
                    .filter(|deciding| deciding.generation == generation)
                {
                    held.retain(|txn| deciding.active_txns.remove(txn));
                } else {
                    // A crash wiped the slot after the decision was already
                    // appended: the crash path has published an (ambiguous)
                    // `Aborted(Crash)` for every parked waiter, and recovery
                    // will still replay the decision record.
                    held.clear();
                }
                if !held.is_empty() {
                    acked_commits += held.len() as u64;
                    obs.counter("proxy.commit.acked_at_durable")
                        .add(held.len() as u64);
                    for txn in held.drain(..) {
                        state.outcomes.insert(txn, TxnOutcome::Committed);
                    }
                    drop(state);
                    inner.client_wakeup.notify_all();
                }
            }
            Err(err) => {
                eprintln!(
                    "obladi: decision log append failed for epoch {epoch}, \
                     falling back to publish-time acks: {err}"
                );
                publish.extend(held.drain(..).map(|txn| (txn, TxnOutcome::Committed)));
            }
        }
    }
    // Every outcome that will ever be acknowledged ahead of publish has
    // been by now; commit visibility closes here unless a remainder is
    // still parked for phase 3.
    if publish.is_empty() {
        obs.histogram("proxy.phase.commit_visible_us")
            .record_duration(decide_started.elapsed());
    }

    // Phase 2 (no state lock held): apply the write batch (padded to its
    // fixed size), flush all buffered bucket writes, then checkpoint (§8
    // ordering) — all on the write-back engine half of the split client.
    // The executor's concurrent read batches for the next epoch run on the
    // read plane meanwhile: the two halves coordinate inside the shared
    // client state (limbo keys, the write fence), so this entire phase —
    // the eviction round-trips, the bucket flush, the checkpoint append —
    // overlaps the next epoch's read I/O instead of blocking it behind one
    // client lock.  The WAL's epoch-ordering rule still guarantees that
    // none of the next epoch's records is acknowledged ahead of this
    // decision's.  If this fails, the epoch's transactions are reported as
    // aborted (epoch fate sharing).
    let io_result = (|| -> Result<()> {
        let _span = tracer.span("proxy.write_back", epoch);
        let mut engine_guard = inner.engine.lock();
        let engine = engine_guard.as_mut().ok_or(ObladiError::ProxyUnavailable)?;
        if let Some(gate) = &gate {
            gate.write_back_starting(epoch);
        }
        let logger = inner.durability.logger_for(epoch);
        obs.histogram("proxy.phase.write_back_us").time(|| {
            engine.write_batch_padded(&writes, write_capacity, &logger)?;
            engine.flush_writes(&logger)
        })?;
        obs.histogram("proxy.phase.checkpoint_us")
            .time(|| inner.durability.commit_epoch(epoch, engine))?;
        if let Some(gate) = &gate {
            gate.write_back_finished(epoch);
        }
        Ok(())
    })();

    // Phase 3: publish the remaining outcomes (downgraded to aborts if the
    // write-back or checkpoint failed — outcomes acknowledged early stay
    // truthful regardless: their commits replay from the decision record),
    // resolve the carry set, free the pipeline slot and wake everyone.
    let publish_started = Instant::now();
    let mut state = inner.state.lock();
    let slot_live = matches!(
        state.deciding.as_ref(),
        Some(deciding) if deciding.generation == generation
    );
    if slot_live {
        state.deciding = None;
        obs.gauge("proxy.pipeline.deciding").set(0);
    }
    let late_publish = !publish.is_empty();
    let mut publish_commits = 0u64;
    for (txn, outcome) in publish {
        let outcome = if io_result.is_ok() {
            outcome
        } else {
            TxnOutcome::Aborted(AbortReason::Crash)
        };
        if outcome.is_committed() {
            publish_commits += 1;
        }
        state.outcomes.insert(txn, outcome);
    }
    if publish_commits > 0 {
        obs.counter("proxy.commit.acked_at_publish")
            .add(publish_commits);
    }
    if slot_live && io_result.is_ok() {
        // Carry resolution: the epoch's committed writes are durable now,
        // so they become the executing epoch's base versions (sparing a
        // pointless re-fetch); keys whose writers aborted are released for
        // normal fetching.  Readers parked on carry keys wake below.  On a
        // *failed* write-back the carry set is deliberately left pinned:
        // releasing it here would let a parked reader fetch a half-applied
        // epoch's write from the torn ORAM in the window before the
        // imminent fate-sharing crash (which resets the carry set) lands.
        if state.exec.generation == generation + 1 {
            for (key, value) in &writes {
                state.exec.mvtso.register_base(*key, Some(value.clone()));
            }
        }
        state.carry_pending.clear();
    }
    drop(state);
    if late_publish {
        obs.histogram("proxy.phase.commit_visible_us")
            .record_duration(decide_started.elapsed());
    }

    // When the epoch's I/O failed, the early-acknowledged commits are the
    // only ones that stay committed (their decision record replays at
    // recovery); everything held for publish was downgraded above.
    let committed_count = if io_result.is_ok() {
        committed.len() as u64
    } else {
        acked_commits
    };
    let aborted_total = aborted_count + (committed.len() as u64 - committed_count);
    {
        let mut stats = inner.stats.lock();
        stats.epochs += 1;
        stats.committed += committed_count;
        stats.aborted += aborted_total;
        stats.real_writes += writes.len() as u64;
    }
    obs.counter("proxy.epochs").inc();
    obs.counter("proxy.txn.committed").add(committed_count);
    obs.counter("proxy.txn.aborted").add(aborted_total);
    inner.client_wakeup.notify_all();
    // The executor may be waiting for the freed slot.
    inner.driver_wakeup.notify_all();
    if let Some(gate) = &gate {
        if io_result.is_ok() {
            // The full committed set — early-acknowledged and published
            // alike — retires at the coordinator here.
            gate.epoch_durable(epoch, &committed);
        }
        gate.epoch_finalized(epoch);
    }
    obs.histogram("proxy.phase.publish_us")
        .record_duration(publish_started.elapsed());
    tracer.record("proxy.epoch_done", epoch, 0);
    io_result
}

/// Enforces the write-batch capacity: commit-requested transactions are
/// admitted in timestamp order until their combined (deduplicated) write set
/// no longer fits; the rest abort with [`AbortReason::BatchFull`].
fn enforce_write_capacity(mvtso: &mut MvtsoManager, write_capacity: usize) {
    let mut planned: HashSet<Key> = HashSet::new();
    for txn in mvtso.commit_requested_txns() {
        let write_set = mvtso.write_set(txn);
        let new_keys = write_set.iter().filter(|k| !planned.contains(*k)).count();
        if planned.len() + new_keys > write_capacity {
            mvtso.abort(txn, AbortReason::BatchFull);
        } else {
            planned.extend(write_set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::config::ObladiConfig;

    fn test_db() -> ObladiDb {
        let mut config = ObladiConfig::small_for_tests(512);
        config.epoch.batch_interval = Duration::from_millis(1);
        ObladiDb::open(config).unwrap()
    }

    fn val(v: u64) -> Value {
        v.to_le_bytes().to_vec()
    }

    #[test]
    fn single_transaction_commit_and_read_back() {
        let db = test_db();
        let mut txn = db.begin().unwrap();
        assert_eq!(txn.read(1).unwrap(), None);
        txn.write(1, val(10)).unwrap();
        assert_eq!(txn.read(1).unwrap(), Some(val(10)));
        let outcome = txn.commit().unwrap();
        assert!(outcome.is_committed());

        let mut txn = db.begin().unwrap();
        assert_eq!(txn.read(1).unwrap(), Some(val(10)));
        txn.commit().unwrap();
        db.shutdown();
    }

    #[test]
    fn writes_are_not_visible_until_commit_epoch_ends() {
        let db = test_db();
        // Write in one transaction, read in a later one (after its epoch).
        let mut t1 = db.begin().unwrap();
        t1.write(7, val(70)).unwrap();
        assert!(t1.commit().unwrap().is_committed());
        let mut t2 = db.begin().unwrap();
        assert_eq!(t2.read(7).unwrap(), Some(val(70)));
        t2.commit().unwrap();
        db.shutdown();
    }

    #[test]
    fn rolled_back_transaction_leaves_no_trace() {
        let db = test_db();
        let mut t1 = db.begin().unwrap();
        t1.write(3, val(33)).unwrap();
        t1.rollback();
        let mut t2 = db.begin().unwrap();
        assert_eq!(t2.read(3).unwrap(), None);
        t2.commit().unwrap();
        db.shutdown();
    }

    #[test]
    fn concurrent_transactions_in_one_epoch_see_uncommitted_writes() {
        // Long batch interval so the whole scenario fits in one epoch.
        let mut config = ObladiConfig::small_for_tests(512);
        config.epoch.batch_interval = Duration::from_millis(100);
        let db = Arc::new(ObladiDb::open(config).unwrap());

        // Transaction A writes, transaction B (started later, larger
        // timestamp) reads the uncommitted value, both commit concurrently.
        // The pair may straddle an epoch boundary (in which case B cannot
        // see A's buffered write); retry on a fresh key until both land in
        // the same epoch — with 300 ms epochs this succeeds immediately in
        // practice.
        let mut succeeded = false;
        for attempt in 0..10u64 {
            let key = 1000 + attempt;
            let mut a = db.begin().unwrap();
            a.write(key, val(1)).unwrap();
            let mut b = db.begin().unwrap();
            // MVTSO makes A's uncommitted write immediately visible to B.
            let seen = b.read(key).unwrap();
            if seen != Some(val(1)) {
                a.rollback();
                b.rollback();
                continue;
            }
            let (ra, rb) = std::thread::scope(|scope| {
                let committer = scope.spawn(move || a.commit().unwrap());
                let rb = b.commit().unwrap();
                (committer.join().unwrap(), rb)
            });
            assert!(ra.is_committed());
            assert!(
                rb.is_committed(),
                "B read A's write and A committed, so B must commit too (got {rb:?})"
            );
            succeeded = true;
            break;
        }
        assert!(succeeded, "could not fit the scenario inside one epoch");
        db.shutdown();
    }

    #[test]
    fn execute_api_commits_and_retries() {
        let db = test_db();
        let result = db
            .execute(&mut |txn| {
                txn.write(9, val(99))?;
                txn.read(9)
            })
            .unwrap();
        assert_eq!(result, Some(val(99)));
        assert_eq!(db.engine_name(), "obladi");
        db.shutdown();
    }

    #[test]
    fn many_threads_commit_disjoint_keys() {
        let db = Arc::new(test_db());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5u64 {
                    let key = t * 100 + i;
                    let mut txn = db.begin().unwrap();
                    txn.write(key, val(key)).unwrap();
                    assert!(txn.commit().unwrap().is_committed());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Verify all writes landed.
        for t in 0..4u64 {
            for i in 0..5u64 {
                let key = t * 100 + i;
                let mut txn = db.begin().unwrap();
                assert_eq!(txn.read(key).unwrap(), Some(val(key)), "key {key}");
                txn.commit().unwrap();
            }
        }
        let stats = db.stats();
        assert!(stats.committed >= 20);
        db.shutdown();
    }

    #[test]
    fn write_conflict_aborts_via_mvtso() {
        let db = test_db();
        // t2 (later ts) reads key 5; t1 (earlier ts) then tries to write it.
        let mut t1 = db.begin().unwrap();
        let mut t2 = db.begin().unwrap();
        assert_eq!(t2.read(5).unwrap(), None);
        let err = t1.write(5, val(1)).unwrap_err();
        assert!(matches!(err, ObladiError::TxnAborted(_)));
        assert!(t2.commit().unwrap().is_committed());
        db.shutdown();
    }

    #[test]
    fn crash_aborts_inflight_and_recovery_preserves_committed() {
        let db = test_db();
        // Commit an epoch's worth of data.
        for k in 0..8u64 {
            let mut txn = db.begin().unwrap();
            txn.write(k, val(k + 1)).unwrap();
            assert!(txn.commit().unwrap().is_committed());
        }
        // Crash with a transaction in flight.
        let mut doomed = db.begin().unwrap();
        doomed.write(100, val(1)).unwrap();
        db.crash();
        assert!(db.is_crashed());
        // The in-flight transaction aborts (reason is Crash unless its epoch
        // happened to end just before the crash).
        assert!(!doomed.commit().unwrap().is_committed());
        assert!(
            db.begin().is_err(),
            "crashed proxy rejects new transactions"
        );

        let report = db.recover().unwrap();
        assert!(report.recovered_epoch >= 1);
        for k in 0..8u64 {
            let mut txn = db.begin().unwrap();
            assert_eq!(txn.read(k).unwrap(), Some(val(k + 1)), "key {k}");
            txn.commit().unwrap();
        }
        // The uncommitted write must be gone.
        let mut txn = db.begin().unwrap();
        assert_eq!(txn.read(100).unwrap(), None);
        txn.commit().unwrap();
        db.shutdown();
    }

    #[test]
    fn epoch_padding_keeps_batches_fixed_size() {
        let db = test_db();
        // Commit a couple of transactions, then check that padded reads were
        // issued (batches are always full-size).
        for k in 0..3u64 {
            let mut txn = db.begin().unwrap();
            txn.read(k).unwrap();
            txn.write(k, val(k)).unwrap();
            txn.commit().unwrap();
        }
        let stats = db.stats();
        assert!(stats.read_batches > 0);
        assert!(
            stats.padded_reads > 0,
            "read batches must be padded to their fixed size"
        );
        db.shutdown();
    }
}
