//! Proxy key material and sub-key derivation.
//!
//! The proxy holds two long-term secrets (an encryption key and a MAC key,
//! §Appendix A).  Both are derived from a single master secret so tests and
//! recovery only need to persist one value.  Derivation is HKDF-style:
//! `subkey = HMAC(master, label)`.

use crate::hmac::HmacSha256;
use rand::RngCore;

/// The proxy's long-term secrets.
///
/// These survive proxy crashes (the paper assumes cryptographic keys are the
/// only proxy state that is not volatile, §B.1) and are therefore stored
/// outside the proxy's in-memory state.
#[derive(Clone)]
pub struct KeyMaterial {
    master: [u8; 32],
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl KeyMaterial {
    /// Derives key material from a 32-byte master secret.
    pub fn from_master(master: [u8; 32]) -> Self {
        let kdf = HmacSha256::new(&master);
        KeyMaterial {
            master,
            enc_key: kdf.mac(b"obladi:encryption-key:v1"),
            mac_key: kdf.mac(b"obladi:mac-key:v1"),
        }
    }

    /// Generates fresh random key material from the OS RNG.
    pub fn generate() -> Self {
        let mut master = [0u8; 32];
        rand::thread_rng().fill_bytes(&mut master);
        KeyMaterial::from_master(master)
    }

    /// Deterministic key material for tests and reproducible benchmarks.
    pub fn for_tests(seed: u64) -> Self {
        let mut master = [0u8; 32];
        master[..8].copy_from_slice(&seed.to_le_bytes());
        master[8..16].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9).to_le_bytes());
        KeyMaterial::from_master(master)
    }

    /// The master secret (persist this to survive proxy crashes).
    pub fn master(&self) -> &[u8; 32] {
        &self.master
    }

    /// The ChaCha20 encryption key.
    pub fn enc_key(&self) -> &[u8; 32] {
        &self.enc_key
    }

    /// The HMAC key.
    pub fn mac_key(&self) -> &[u8; 32] {
        &self.mac_key
    }
}

impl std::fmt::Debug for KeyMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secrets.
        f.debug_struct("KeyMaterial").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = KeyMaterial::from_master([7u8; 32]);
        let b = KeyMaterial::from_master([7u8; 32]);
        assert_eq!(a.enc_key(), b.enc_key());
        assert_eq!(a.mac_key(), b.mac_key());
    }

    #[test]
    fn subkeys_differ_from_each_other_and_master() {
        let keys = KeyMaterial::from_master([9u8; 32]);
        assert_ne!(keys.enc_key(), keys.mac_key());
        assert_ne!(keys.enc_key(), keys.master());
        assert_ne!(keys.mac_key(), keys.master());
    }

    #[test]
    fn generate_produces_distinct_keys() {
        let a = KeyMaterial::generate();
        let b = KeyMaterial::generate();
        assert_ne!(a.master(), b.master());
    }

    #[test]
    fn test_keys_depend_on_seed() {
        assert_ne!(
            KeyMaterial::for_tests(1).enc_key(),
            KeyMaterial::for_tests(2).enc_key()
        );
        assert_eq!(
            KeyMaterial::for_tests(3).mac_key(),
            KeyMaterial::for_tests(3).mac_key()
        );
    }

    #[test]
    fn debug_does_not_leak_secrets() {
        let keys = KeyMaterial::for_tests(4);
        let printed = format!("{keys:?}");
        assert!(!printed.contains("enc_key"));
        assert_eq!(printed, "KeyMaterial { .. }");
    }
}
