//! Authenticated, location-bound encryption envelopes for ORAM blocks.
//!
//! Every piece of data Obladi sends to untrusted storage — bucket contents,
//! checkpoint deltas, the padded stash, read-path logs — is wrapped in an
//! envelope that provides:
//!
//! 1. **Confidentiality**: ChaCha20 with a fresh random nonce per seal, so
//!    re-encrypting the same plaintext yields an unrelated ciphertext
//!    ("randomized encryption", §4).
//! 2. **Indistinguishability**: plaintexts are padded to a fixed size before
//!    sealing, so real and dummy blocks produce byte-identical-length
//!    ciphertexts.
//! 3. **Integrity and freshness** (Appendix A): an HMAC over
//!    `location || counter || nonce || ciphertext` lets the proxy detect a
//!    malicious server substituting stale or relocated data.  `location`
//!    identifies the storage slot (bucket id / log record id), `counter` is
//!    the epoch or read-batch counter from the trusted counter `F_epc`.

use crate::chacha20::ChaCha20;
use crate::hmac::HmacSha256;
use crate::keys::KeyMaterial;
use obladi_common::error::{ObladiError, Result};
use rand::RngCore;

/// Length of the MAC tag appended to each envelope.
pub const TAG_LEN: usize = 32;
/// Length of the nonce prepended to each envelope.
pub const NONCE_LEN: usize = 12;
/// Length prefix encoding the true payload size inside the padded plaintext.
const LEN_PREFIX: usize = 4;

/// A sealed (encrypted + authenticated) block as stored on the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlock {
    /// Raw envelope bytes: `nonce || ciphertext || tag`.
    pub bytes: Vec<u8>,
}

impl SealedBlock {
    /// Total size of the sealed representation.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the envelope is empty (never true for well-formed blocks).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Seals and opens blocks with the proxy's [`KeyMaterial`].
#[derive(Clone)]
pub struct Envelope {
    cipher: ChaCha20,
    hmac: HmacSha256,
}

impl Envelope {
    /// Creates an envelope codec from key material.
    pub fn new(keys: &KeyMaterial) -> Self {
        Envelope {
            cipher: ChaCha20::new(keys.enc_key()),
            hmac: HmacSha256::new(keys.mac_key()),
        }
    }

    /// Sealed size for a given padded plaintext capacity.
    pub fn sealed_len(padded_capacity: usize) -> usize {
        NONCE_LEN + LEN_PREFIX + padded_capacity + TAG_LEN
    }

    /// Seals `plaintext`, padding it to `padded_capacity` bytes and binding
    /// the ciphertext to `(location, counter)`.
    ///
    /// Returns an error if the plaintext does not fit in the capacity.
    pub fn seal(
        &self,
        location: u64,
        counter: u64,
        plaintext: &[u8],
        padded_capacity: usize,
    ) -> Result<SealedBlock> {
        if plaintext.len() > padded_capacity {
            return Err(ObladiError::Codec(format!(
                "plaintext of {} bytes exceeds padded capacity {}",
                plaintext.len(),
                padded_capacity
            )));
        }
        let mut nonce = [0u8; NONCE_LEN];
        rand::thread_rng().fill_bytes(&mut nonce);

        // length prefix || payload || zero padding
        let mut body = Vec::with_capacity(LEN_PREFIX + padded_capacity);
        body.extend_from_slice(&(plaintext.len() as u32).to_le_bytes());
        body.extend_from_slice(plaintext);
        body.resize(LEN_PREFIX + padded_capacity, 0);

        self.cipher.apply_keystream(&nonce, 1, &mut body);

        let tag = self.hmac.mac_parts(&[
            &location.to_le_bytes(),
            &counter.to_le_bytes(),
            &nonce,
            &body,
        ]);

        let mut bytes = Vec::with_capacity(Self::sealed_len(padded_capacity));
        bytes.extend_from_slice(&nonce);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&tag);
        Ok(SealedBlock { bytes })
    }

    /// Opens a sealed block, verifying the MAC against `(location, counter)`.
    pub fn open(&self, location: u64, counter: u64, sealed: &SealedBlock) -> Result<Vec<u8>> {
        let bytes = &sealed.bytes;
        if bytes.len() < NONCE_LEN + LEN_PREFIX + TAG_LEN {
            return Err(ObladiError::Codec(format!(
                "sealed block too short: {} bytes",
                bytes.len()
            )));
        }
        let (nonce_bytes, rest) = bytes.split_at(NONCE_LEN);
        let (body, tag) = rest.split_at(rest.len() - TAG_LEN);

        let ok = self.hmac.verify_parts(
            &[
                &location.to_le_bytes(),
                &counter.to_le_bytes(),
                nonce_bytes,
                body,
            ],
            tag,
        );
        if !ok {
            return Err(ObladiError::Integrity(format!(
                "MAC verification failed for location {location} counter {counter}"
            )));
        }

        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(nonce_bytes);
        let mut plain = body.to_vec();
        self.cipher.apply_keystream(&nonce, 1, &mut plain);

        let len = u32::from_le_bytes([plain[0], plain[1], plain[2], plain[3]]) as usize;
        if len > plain.len() - LEN_PREFIX {
            return Err(ObladiError::Codec(format!(
                "corrupt length prefix {len} for body of {}",
                plain.len() - LEN_PREFIX
            )));
        }
        Ok(plain[LEN_PREFIX..LEN_PREFIX + len].to_vec())
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope() -> Envelope {
        Envelope::new(&KeyMaterial::for_tests(42))
    }

    #[test]
    fn roundtrip_preserves_plaintext() {
        let env = envelope();
        let sealed = env.seal(5, 9, b"hello obladi", 64).unwrap();
        let opened = env.open(5, 9, &sealed).unwrap();
        assert_eq!(opened, b"hello obladi");
    }

    #[test]
    fn sealed_size_is_independent_of_payload_length() {
        let env = envelope();
        let a = env.seal(1, 1, b"", 128).unwrap();
        let b = env.seal(1, 1, &[7u8; 128], 128).unwrap();
        let c = env.seal(1, 1, b"short", 128).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        assert_eq!(a.len(), Envelope::sealed_len(128));
    }

    #[test]
    fn sealing_is_randomized() {
        let env = envelope();
        let a = env.seal(3, 3, b"same plaintext", 64).unwrap();
        let b = env.seal(3, 3, b"same plaintext", 64).unwrap();
        assert_ne!(a, b, "two seals of identical data must differ");
    }

    #[test]
    fn oversized_plaintext_is_rejected() {
        let env = envelope();
        assert!(env.seal(0, 0, &[0u8; 65], 64).is_err());
    }

    #[test]
    fn wrong_location_or_counter_fails_verification() {
        let env = envelope();
        let sealed = env.seal(10, 20, b"secret", 32).unwrap();
        assert!(env.open(10, 20, &sealed).is_ok());
        assert!(matches!(
            env.open(11, 20, &sealed),
            Err(ObladiError::Integrity(_))
        ));
        assert!(matches!(
            env.open(10, 21, &sealed),
            Err(ObladiError::Integrity(_))
        ));
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let env = envelope();
        let mut sealed = env.seal(1, 2, b"payload", 32).unwrap();
        let mid = sealed.bytes.len() / 2;
        sealed.bytes[mid] ^= 0xff;
        assert!(matches!(
            env.open(1, 2, &sealed),
            Err(ObladiError::Integrity(_))
        ));
    }

    #[test]
    fn wrong_key_cannot_open() {
        let env = envelope();
        let other = Envelope::new(&KeyMaterial::for_tests(43));
        let sealed = env.seal(1, 1, b"data", 32).unwrap();
        assert!(other.open(1, 1, &sealed).is_err());
    }

    #[test]
    fn truncated_envelope_is_rejected_gracefully() {
        let env = envelope();
        let sealed = SealedBlock {
            bytes: vec![0u8; 10],
        };
        assert!(matches!(
            env.open(0, 0, &sealed),
            Err(ObladiError::Codec(_))
        ));
    }
}
