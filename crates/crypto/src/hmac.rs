//! HMAC-SHA-256 (RFC 2104 / RFC 4231).
//!
//! Appendix A of the paper extends Obladi to a malicious storage server by
//! attaching a MAC to every value written to the cloud, keyed by a secret
//! only the proxy knows and covering the value, its location and a freshness
//! counter.  This module provides that MAC.

use crate::sha256::Sha256;

const BLOCK_SIZE: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// HMAC-SHA-256 instance bound to one key.
#[derive(Clone)]
pub struct HmacSha256 {
    ipad_key: [u8; BLOCK_SIZE],
    opad_key: [u8; BLOCK_SIZE],
}

impl HmacSha256 {
    /// Creates an HMAC instance from an arbitrary-length key.
    pub fn new(key: &[u8]) -> Self {
        let mut normalized = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = Sha256::digest(key);
            normalized[..32].copy_from_slice(&digest);
        } else {
            normalized[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_SIZE];
        let mut opad_key = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad_key[i] = normalized[i] ^ IPAD;
            opad_key[i] = normalized[i] ^ OPAD;
        }
        HmacSha256 { ipad_key, opad_key }
    }

    /// Computes the MAC over `parts` concatenated in order.
    ///
    /// Accepting multiple parts avoids allocating a contiguous buffer for
    /// `location || counter || ciphertext` on every bucket write.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; 32] {
        let mut inner = Sha256::new();
        inner.update(&self.ipad_key);
        for part in parts {
            inner.update(part);
        }
        let inner_digest = inner.finalize();

        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Computes the MAC of a single message.
    pub fn mac(&self, message: &[u8]) -> [u8; 32] {
        self.mac_parts(&[message])
    }

    /// Verifies a MAC in constant time with respect to the tag contents.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        self.verify_parts(&[message], tag)
    }

    /// Verifies a MAC computed over multiple parts.
    pub fn verify_parts(&self, parts: &[&[u8]], tag: &[u8]) -> bool {
        let expected = self.mac_parts(parts);
        constant_time_eq(&expected, tag)
    }
}

/// Constant-time byte-slice comparison (length leaks, contents do not).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = HmacSha256::new(&key).mac(b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = HmacSha256::new(b"Jefe").mac(b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = HmacSha256::new(&key).mac(&data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac =
            HmacSha256::new(&key).mac(b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_equivalent_to_concatenation() {
        let hmac = HmacSha256::new(b"key material");
        let whole = hmac.mac(b"abcdef");
        let parts = hmac.mac_parts(&[b"ab", b"cd", b"ef"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn verify_accepts_valid_and_rejects_tampered() {
        let hmac = HmacSha256::new(b"secret");
        let tag = hmac.mac(b"payload");
        assert!(hmac.verify(b"payload", &tag));
        assert!(!hmac.verify(b"payl0ad", &tag));
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        assert!(!hmac.verify(b"payload", &bad_tag));
        assert!(!hmac.verify(b"payload", &tag[..31]));
    }
}
