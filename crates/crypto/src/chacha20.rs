//! ChaCha20 stream cipher (RFC 8439 block function and counter mode).
//!
//! Obladi re-encrypts every bucket it writes back to untrusted storage with
//! fresh randomness so the server cannot correlate bucket contents across
//! writes.  ChaCha20 in counter mode with a per-write random nonce provides
//! exactly that "randomized encryption" primitive.

/// ChaCha20 cipher instance holding a 256-bit key.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
}

impl ChaCha20 {
    /// Constructs a cipher from a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut words = [0u32; 8];
        for (i, word) in words.iter_mut().enumerate() {
            *word =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        ChaCha20 { key: words }
    }

    /// Produces one 64-byte keystream block for `(nonce, counter)`.
    pub fn block(&self, nonce: &[u8; 12], counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` in place (XOR with the keystream starting
    /// at block counter `initial_counter`).
    pub fn apply_keystream(&self, nonce: &[u8; 12], initial_counter: u32, data: &mut [u8]) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(64) {
            let keystream = self.block(nonce, counter);
            for (byte, k) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Convenience: returns an encrypted copy of `data`.
    pub fn encrypt(&self, nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(nonce, 1, &mut out);
        out
    }

    /// Convenience: returns a decrypted copy of `data` (identical to
    /// [`ChaCha20::encrypt`] since XOR is an involution).
    pub fn decrypt(&self, nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        self.encrypt(nonce, data)
    }
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2: key = 00..1f, nonce = 000000090000004a00000000,
        // counter = 1.
        let cipher = ChaCha20::new(&rfc_key());
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = cipher.block(&nonce, 1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce = [7u8; 12];
        let plaintext = b"the quick brown fox jumps over the lazy dog".to_vec();
        let ciphertext = cipher.encrypt(&nonce, &plaintext);
        assert_ne!(ciphertext, plaintext);
        assert_eq!(cipher.decrypt(&nonce, &ciphertext), plaintext);
    }

    #[test]
    fn different_nonces_give_different_ciphertexts() {
        let cipher = ChaCha20::new(&rfc_key());
        let plaintext = vec![0u8; 128];
        let c1 = cipher.encrypt(&[1u8; 12], &plaintext);
        let c2 = cipher.encrypt(&[2u8; 12], &plaintext);
        assert_ne!(c1, c2);
    }

    #[test]
    fn keystream_spans_multiple_blocks() {
        let cipher = ChaCha20::new(&rfc_key());
        let nonce = [3u8; 12];
        // 200 bytes spans four 64-byte keystream blocks.
        let plaintext: Vec<u8> = (0..200u16).map(|v| (v % 251) as u8).collect();
        let ciphertext = cipher.encrypt(&nonce, &plaintext);
        assert_eq!(cipher.decrypt(&nonce, &ciphertext), plaintext);
    }

    #[test]
    fn empty_input_is_fine() {
        let cipher = ChaCha20::new(&rfc_key());
        assert!(cipher.encrypt(&[0u8; 12], &[]).is_empty());
    }
}
