//! From-scratch cryptographic primitives for the Obladi reproduction.
//!
//! The original system uses BouncyCastle for randomized encryption of ORAM
//! blocks and (in the malicious-server extension of Appendix A) MACs bound
//! to a trusted epoch counter for freshness.  This crate provides the same
//! functionality with self-contained implementations:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439 core);
//! * [`sha256`] — SHA-256;
//! * [`hmac`] — HMAC-SHA-256;
//! * [`envelope`] — an encrypt-then-MAC envelope that binds ciphertexts to a
//!   storage location and a freshness counter, plus fixed-size padding so
//!   every sealed ORAM block is indistinguishable from every other.
//!
//! The implementations follow the published algorithms and pass the standard
//! test vectors, but they have not been audited or hardened against side
//! channels; they exist so the reproduction exercises realistic CPU costs
//! (the `ParallelCrypto` series of Figure 10a) without pulling in
//! dependencies outside the allowed crate set.

#![warn(missing_docs)]

pub mod chacha20;
pub mod envelope;
pub mod hmac;
pub mod keys;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use envelope::{Envelope, SealedBlock};
pub use hmac::HmacSha256;
pub use keys::KeyMaterial;
pub use sha256::Sha256;
