//! The client-side stash (§4).
//!
//! Blocks that have been read out of the tree (or written dummilessly,
//! §6.3) live in the stash until an eviction flushes them back.  Ring ORAM
//! bounds the stash size by a constant; Obladi additionally pads the stash
//! to its maximum size when checkpointing it so the checkpoint length does
//! not reveal access skew (§8).

use crate::block::Block;
use crate::codec::{Decoder, Encoder};
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{Key, Leaf, Value};
use std::collections::HashMap;

/// The client-side stash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stash {
    blocks: HashMap<Key, (Leaf, Value)>,
    /// High-water mark, for statistics and bound checking in tests.
    peak: usize,
}

impl Stash {
    /// Creates an empty stash.
    pub fn new() -> Self {
        Stash::default()
    }

    /// Number of blocks currently stashed.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Largest size the stash has reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Inserts or replaces a block, enforcing `max` as a hard bound.
    pub fn insert(&mut self, key: Key, leaf: Leaf, value: Value, max: usize) -> Result<()> {
        self.blocks.insert(key, (leaf, value));
        self.peak = self.peak.max(self.blocks.len());
        if self.blocks.len() > max {
            return Err(ObladiError::StashOverflow {
                len: self.blocks.len(),
                max,
            });
        }
        Ok(())
    }

    /// Looks up a block without removing it.
    pub fn get(&self, key: Key) -> Option<(Leaf, &Value)> {
        self.blocks.get(&key).map(|(leaf, value)| (*leaf, value))
    }

    /// Whether the stash holds `key`.
    pub fn contains(&self, key: Key) -> bool {
        self.blocks.contains_key(&key)
    }

    /// Removes and returns a block.
    pub fn remove(&mut self, key: Key) -> Option<(Leaf, Value)> {
        self.blocks.remove(&key)
    }

    /// Updates the leaf a stashed block is mapped to (remap on access).
    pub fn remap(&mut self, key: Key, new_leaf: Leaf) -> bool {
        if let Some((leaf, _)) = self.blocks.get_mut(&key) {
            *leaf = new_leaf;
            true
        } else {
            false
        }
    }

    /// Keys of blocks eligible for a bucket: those whose leaf agrees with
    /// `target_leaf` on at least the first `level + 1` branches, i.e. whose
    /// path passes through the bucket at `level` on the path to
    /// `target_leaf`.
    pub fn eligible_for<F>(&self, shares_bucket: F) -> Vec<Key>
    where
        F: Fn(Leaf) -> bool,
    {
        let mut keys: Vec<Key> = self
            .blocks
            .iter()
            .filter(|(_, (leaf, _))| shares_bucket(*leaf))
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Iterates over `(key, leaf)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Key, Leaf)> + '_ {
        self.blocks.iter().map(|(k, (leaf, _))| (*k, *leaf))
    }

    /// Serialises the stash, padding to `padded_entries` blocks of
    /// `block_size` payload bytes each so the encoding length is constant.
    pub fn encode_padded(&self, padded_entries: usize, block_size: usize) -> Vec<u8> {
        let mut entries: Vec<(&Key, &(Leaf, Value))> = self.blocks.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| **k);
        let mut enc = Encoder::with_capacity(8 + padded_entries * (20 + block_size));
        enc.put_u64(self.blocks.len() as u64);
        for (key, (leaf, value)) in &entries {
            enc.put_u64(**key);
            enc.put_u64(*leaf);
            enc.put_bytes(value);
        }
        // Pad with dummy entries so ciphertext length is workload independent.
        let pad_value = vec![0u8; block_size];
        for _ in entries.len()..padded_entries {
            enc.put_u64(u64::MAX);
            enc.put_u64(0);
            enc.put_bytes(&pad_value);
        }
        enc.finish()
    }

    /// Decodes a stash written by [`Stash::encode_padded`].
    pub fn decode_padded(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut blocks = HashMap::with_capacity(count);
        for _ in 0..count {
            let key = dec.get_u64()?;
            let leaf = dec.get_u64()?;
            let value = dec.get_bytes()?;
            blocks.insert(key, (leaf, value));
        }
        // Remaining padding entries are ignored.
        let peak = blocks.len();
        Ok(Stash { blocks, peak })
    }

    /// Converts the stash contents into [`Block`]s (test/debug helper).
    pub fn to_blocks(&self) -> Vec<Block> {
        let mut blocks: Vec<Block> = self
            .blocks
            .iter()
            .map(|(k, (leaf, value))| Block::real(*k, *leaf, value.clone()))
            .collect();
        blocks.sort_unstable_by_key(|b| b.key);
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut stash = Stash::new();
        stash.insert(1, 5, vec![1, 2, 3], 10).unwrap();
        assert!(stash.contains(1));
        assert_eq!(stash.get(1), Some((5, &vec![1, 2, 3])));
        assert_eq!(stash.remove(1), Some((5, vec![1, 2, 3])));
        assert!(stash.is_empty());
    }

    #[test]
    fn overflow_is_reported_but_block_is_kept() {
        let mut stash = Stash::new();
        stash.insert(1, 0, vec![], 2).unwrap();
        stash.insert(2, 0, vec![], 2).unwrap();
        let err = stash.insert(3, 0, vec![], 2).unwrap_err();
        assert!(matches!(err, ObladiError::StashOverflow { len: 3, max: 2 }));
        assert_eq!(stash.len(), 3, "block is retained so data is not lost");
        assert_eq!(stash.peak(), 3);
    }

    #[test]
    fn remap_changes_leaf() {
        let mut stash = Stash::new();
        stash.insert(7, 1, vec![9], 10).unwrap();
        assert!(stash.remap(7, 4));
        assert_eq!(stash.get(7).unwrap().0, 4);
        assert!(!stash.remap(8, 4));
    }

    #[test]
    fn eligible_filtering() {
        let mut stash = Stash::new();
        stash.insert(1, 0, vec![], 10).unwrap();
        stash.insert(2, 3, vec![], 10).unwrap();
        stash.insert(3, 7, vec![], 10).unwrap();
        let eligible = stash.eligible_for(|leaf| leaf >= 3);
        assert_eq!(eligible, vec![2, 3]);
    }

    #[test]
    fn padded_encoding_has_constant_length() {
        let mut small = Stash::new();
        small.insert(1, 1, vec![7; 16], 100).unwrap();
        let mut large = Stash::new();
        for k in 0..10 {
            large.insert(k, k, vec![7; 16], 100).unwrap();
        }
        let a = small.encode_padded(20, 16);
        let b = large.encode_padded(20, 16);
        assert_eq!(a.len(), b.len());

        let decoded = Stash::decode_padded(&b).unwrap();
        assert_eq!(decoded.len(), 10);
        assert_eq!(decoded.get(3), Some((3, &vec![7; 16])));
    }

    #[test]
    fn to_blocks_is_sorted() {
        let mut stash = Stash::new();
        stash.insert(9, 1, vec![1], 10).unwrap();
        stash.insert(2, 2, vec![2], 10).unwrap();
        let blocks = stash.to_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].key, 2);
        assert_eq!(blocks[1].key, 9);
    }
}
