//! The position map: logical key → leaf label (§4).
//!
//! The position map is client-side state.  Obladi checkpoints it for
//! durability; to keep checkpoints small it normally logs *deltas* (the keys
//! remapped since the last checkpoint), padded to the maximum number of
//! entries an epoch could have changed so the delta size does not leak how
//! many real requests the epoch contained (§8, Optimizations).

use crate::codec::{Decoder, Encoder};
use obladi_common::error::Result;
use obladi_common::types::{Key, Leaf};
use std::collections::{HashMap, HashSet};

/// Map from logical keys to the leaf each key is currently assigned to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PositionMap {
    positions: HashMap<Key, Leaf>,
    dirty: HashSet<Key>,
}

impl PositionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        PositionMap::default()
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current leaf of `key`, if the key exists.
    pub fn get(&self, key: Key) -> Option<Leaf> {
        self.positions.get(&key).copied()
    }

    /// Assigns `key` to `leaf`, marking the entry dirty for the next delta
    /// checkpoint.  Returns the previous leaf, if any.
    pub fn set(&mut self, key: Key, leaf: Leaf) -> Option<Leaf> {
        self.dirty.insert(key);
        self.positions.insert(key, leaf)
    }

    /// Removes a key entirely (used when a transaction deletes an object).
    pub fn remove(&mut self, key: Key) -> Option<Leaf> {
        self.dirty.insert(key);
        self.positions.remove(&key)
    }

    /// Clears dirty tracking without producing a delta (used when a cloned
    /// map is a read-only snapshot whose dirtiness is meaningless).
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: Key) -> bool {
        self.positions.contains_key(&key)
    }

    /// Number of entries modified since the last [`PositionMap::take_delta`].
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Drains the dirty set into a delta: `(key, Option<leaf>)` pairs where
    /// `None` means the key was removed.
    pub fn take_delta(&mut self) -> Vec<(Key, Option<Leaf>)> {
        let mut delta: Vec<(Key, Option<Leaf>)> = self
            .dirty
            .drain()
            .map(|k| (k, self.positions.get(&k).copied()))
            .collect();
        delta.sort_unstable_by_key(|(k, _)| *k);
        delta
    }

    /// Applies a delta produced by [`PositionMap::take_delta`].
    pub fn apply_delta(&mut self, delta: &[(Key, Option<Leaf>)]) {
        for (key, leaf) in delta {
            match leaf {
                Some(l) => {
                    self.positions.insert(*key, *l);
                }
                None => {
                    self.positions.remove(key);
                }
            }
        }
    }

    /// Serialises the full map.
    pub fn encode(&self) -> Vec<u8> {
        let mut entries: Vec<(Key, Leaf)> = self.positions.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable();
        let mut enc = Encoder::with_capacity(8 + entries.len() * 16);
        enc.put_u64(entries.len() as u64);
        for (key, leaf) in entries {
            enc.put_u64(key);
            enc.put_u64(leaf);
        }
        enc.finish()
    }

    /// Deserialises a full map.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut positions = HashMap::with_capacity(count);
        for _ in 0..count {
            let key = dec.get_u64()?;
            let leaf = dec.get_u64()?;
            positions.insert(key, leaf);
        }
        dec.expect_end()?;
        Ok(PositionMap {
            positions,
            dirty: HashSet::new(),
        })
    }

    /// Serialises a delta, padding it with sentinel entries to
    /// `padded_entries` so the ciphertext length does not reveal how many
    /// keys were actually touched.
    pub fn encode_delta(delta: &[(Key, Option<Leaf>)], padded_entries: usize) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(8 + padded_entries * 18);
        enc.put_u64(delta.len() as u64);
        for (key, leaf) in delta {
            enc.put_u64(*key);
            match leaf {
                Some(l) => {
                    enc.put_bool(true);
                    enc.put_u64(*l);
                }
                None => {
                    enc.put_bool(false);
                    enc.put_u64(0);
                }
            }
        }
        // Padding entries: never decoded (count above bounds the real ones).
        for _ in delta.len()..padded_entries {
            enc.put_u64(u64::MAX);
            enc.put_bool(false);
            enc.put_u64(0);
        }
        enc.finish()
    }

    /// Decodes a delta written by [`PositionMap::encode_delta`].
    pub fn decode_delta(bytes: &[u8]) -> Result<Vec<(Key, Option<Leaf>)>> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut delta = Vec::with_capacity(count);
        for _ in 0..count {
            let key = dec.get_u64()?;
            let present = dec.get_bool()?;
            let leaf = dec.get_u64()?;
            delta.push((key, if present { Some(leaf) } else { None }));
        }
        // Remaining bytes are padding; ignore them.
        Ok(delta)
    }

    /// Iterates over all `(key, leaf)` entries (test helper).
    pub fn iter(&self) -> impl Iterator<Item = (Key, Leaf)> + '_ {
        self.positions.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut map = PositionMap::new();
        assert!(map.is_empty());
        assert_eq!(map.set(1, 10), None);
        assert_eq!(map.set(1, 20), Some(10));
        assert_eq!(map.get(1), Some(20));
        assert!(map.contains(1));
        assert_eq!(map.remove(1), Some(20));
        assert!(!map.contains(1));
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn delta_contains_only_dirty_entries() {
        let mut map = PositionMap::new();
        map.set(1, 10);
        map.set(2, 20);
        let _ = map.take_delta();
        map.set(2, 25);
        map.remove(1);
        let delta = map.take_delta();
        assert_eq!(delta, vec![(1, None), (2, Some(25))]);
        assert_eq!(map.dirty_len(), 0);
    }

    #[test]
    fn apply_delta_reconstructs_state() {
        let mut original = PositionMap::new();
        original.set(5, 50);
        original.set(6, 60);
        let mut replica = PositionMap::new();
        replica.apply_delta(&original.clone().take_delta());
        assert_eq!(replica.get(5), Some(50));
        assert_eq!(replica.get(6), Some(60));

        original.remove(5);
        original.set(6, 61);
        replica.apply_delta(&original.take_delta());
        assert_eq!(replica.get(5), None);
        assert_eq!(replica.get(6), Some(61));
    }

    #[test]
    fn full_encode_decode_roundtrip() {
        let mut map = PositionMap::new();
        for key in 0..100 {
            map.set(key, key * 3 % 17);
        }
        let decoded = PositionMap::decode(&map.encode()).unwrap();
        assert_eq!(decoded.len(), 100);
        for key in 0..100 {
            assert_eq!(decoded.get(key), map.get(key));
        }
    }

    #[test]
    fn delta_encoding_is_padded_to_fixed_size() {
        let small = PositionMap::encode_delta(&[(1, Some(2))], 10);
        let large =
            PositionMap::encode_delta(&(0..10).map(|k| (k, Some(k))).collect::<Vec<_>>(), 10);
        assert_eq!(small.len(), large.len(), "padded deltas must not leak size");
        let decoded = PositionMap::decode_delta(&small).unwrap();
        assert_eq!(decoded, vec![(1, Some(2))]);
    }

    #[test]
    fn delta_roundtrip_with_removals() {
        let delta = vec![(3, None), (9, Some(4))];
        let bytes = PositionMap::encode_delta(&delta, 5);
        assert_eq!(PositionMap::decode_delta(&bytes).unwrap(), delta);
    }
}
