//! Epoch-generation version chains for the split ORAM client (MVCC).
//!
//! The split client publishes a *generation* — an immutable snapshot of the
//! checkpointable metadata (position map, bucket metadata, stash, counters)
//! — at the end of every flush.  Readers and checkpoints pin a generation
//! instead of quiescing the other plane: the write-back engine keeps
//! mutating the live state while every pinned generation stays
//! materializable, byte for byte, until its last pin drops.
//!
//! A generation is not stored as a full copy.  Each retained entry keeps an
//! **undo overlay** over the live state:
//!
//! * `position_undo` — for every key mutated since this generation
//!   published, the value it had *at publish time* (`None` = absent).  The
//!   first live mutation of a key records the pre-image into every retained
//!   entry that does not have it yet (see [`GenerationChain::note_position`]),
//!   so each entry independently converges on "my value of the key".
//! * `bucket_undo` — the same scheme for buckets, made cheap by the
//!   copy-on-write `Arc<BucketMeta>` representation: recording a pre-image
//!   is one `Arc` clone, and [`OramMeta::bucket_mut`] clones the bucket data
//!   only when a snapshot actually still shares it.
//! * `stash` / counters — snapshotted eagerly at publish (the flush's delta
//!   checkpoint clones the stash anyway, so this comes for free).
//!
//! Materializing a generation is therefore: clone the live position map and
//! bucket pointer vector, apply the entry's undo overlays, attach the
//! entry's stash and counters.  Because the full-state encoders sort their
//! entries, two materializations of the same generation — no matter how far
//! the live state has advanced in between — encode to identical bytes,
//! which is exactly the snapshot-isolation property the generation tests
//! assert.
//!
//! Each entry also carries the **frozen delta** its publish captured
//! (`OramMeta::take_delta` output, patched by the publisher so in-flight
//! reader targets stay accounted for).  A delta checkpoint consumes it; if
//! nobody does before the next publish, it is merged into the successor's
//! delta so the checkpoint chain never loses a change.

use crate::bucket::BucketMeta;
use crate::metadata::{MetaDelta, OramMeta};
use crate::stash::Stash;
use obladi_common::types::{BucketId, Key, Leaf};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One published generation (see the module docs).
struct GenEntry {
    id: u64,
    /// Pre-images of keys mutated since this generation published.
    position_undo: HashMap<Key, Option<Leaf>>,
    /// Pre-images of buckets mutated since this generation published.
    bucket_undo: HashMap<BucketId, Arc<BucketMeta>>,
    /// Stash at publish time.
    stash: Stash,
    access_count: u64,
    evict_count: u64,
    /// The delta this publish captured; consumed by at most one delta
    /// checkpoint, merged forward otherwise.
    frozen_delta: Option<MetaDelta>,
    /// Outstanding pins (in-flight reader batches, checkpoint guards).
    pins: usize,
}

/// The chain of retained generations, oldest first.  Never empty after
/// [`GenerationChain::seed`]; the last entry is the latest committed
/// generation, earlier entries are kept alive only by their pins.
pub(crate) struct GenerationChain {
    entries: Vec<GenEntry>,
    next_id: u64,
}

impl GenerationChain {
    pub(crate) fn new() -> Self {
        GenerationChain {
            entries: Vec::new(),
            next_id: 0,
        }
    }

    /// Publishes the construction-time state as generation 0 so the chain
    /// is never empty (checkpoints and pins always have a target).
    pub(crate) fn seed(&mut self, stash: Stash, access_count: u64, evict_count: u64) {
        debug_assert!(self.entries.is_empty(), "seed on a non-empty chain");
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(GenEntry {
            id,
            position_undo: HashMap::new(),
            bucket_undo: HashMap::new(),
            stash,
            access_count,
            evict_count,
            frozen_delta: None,
            pins: 0,
        });
    }

    /// Number of retained generations (latest + pinned history).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Id of the latest committed generation.
    pub(crate) fn latest_id(&self) -> u64 {
        self.entries.last().expect("chain is never empty").id
    }

    /// Total outstanding pins across all retained generations.
    pub(crate) fn total_pins(&self) -> usize {
        self.entries.iter().map(|e| e.pins).sum()
    }

    /// Records the pre-image of `key` (its *current* live value) into every
    /// retained generation that has not seen the key change yet.  Must be
    /// called before every live position-map mutation.
    pub(crate) fn note_position(&mut self, key: Key, live: Option<Leaf>) {
        for entry in &mut self.entries {
            entry.position_undo.entry(key).or_insert(live);
        }
    }

    /// Records the pre-image of `bucket` (one `Arc` clone of its current
    /// live metadata) into every retained generation that has not seen the
    /// bucket change yet.  Must be called before every live bucket mutation.
    pub(crate) fn note_bucket(&mut self, bucket: BucketId, live: &Arc<BucketMeta>) {
        for entry in &mut self.entries {
            entry
                .bucket_undo
                .entry(bucket)
                .or_insert_with(|| live.clone());
        }
    }

    /// Pins the latest generation and returns its id.
    pub(crate) fn pin_latest(&mut self) -> u64 {
        let entry = self.entries.last_mut().expect("chain is never empty");
        entry.pins += 1;
        entry.id
    }

    /// Drops one pin from generation `id`, retiring any generation that is
    /// neither latest nor pinned.  Returns how many entries were retired.
    pub(crate) fn unpin(&mut self, id: u64) -> usize {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.id == id) {
            debug_assert!(entry.pins > 0, "unpin without a pin");
            entry.pins = entry.pins.saturating_sub(1);
        }
        self.retire_unpinned()
    }

    /// Publishes a new generation.  `frozen_delta` is the patched
    /// `take_delta` output of this publish; `position_undo` / `bucket_undo`
    /// seed the new entry's overlays with the in-flight reader targets that
    /// must stay accounted for (see `split::publish_generation`).  If the
    /// previous latest generation's frozen delta was never consumed it is
    /// merged into the new one.  Returns `(id, retired)`.
    pub(crate) fn publish(
        &mut self,
        mut frozen_delta: MetaDelta,
        stash: Stash,
        access_count: u64,
        evict_count: u64,
        position_undo: HashMap<Key, Option<Leaf>>,
        bucket_undo: HashMap<BucketId, Arc<BucketMeta>>,
    ) -> (u64, usize) {
        if let Some(prior) = self.entries.last_mut().and_then(|e| e.frozen_delta.take()) {
            frozen_delta = merge_frozen(prior, frozen_delta);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(GenEntry {
            id,
            position_undo,
            bucket_undo,
            stash,
            access_count,
            evict_count,
            frozen_delta: Some(frozen_delta),
            pins: 0,
        });
        let retired = self.retire_unpinned();
        (id, retired)
    }

    /// Consumes the latest generation's frozen delta for a delta
    /// checkpoint.  If it was already consumed (no publish since), returns
    /// an *empty* delta carrying the generation's counters and stash — a
    /// no-op on apply, keeping the checkpoint chain contiguous.
    pub(crate) fn take_frozen_delta(
        &mut self,
        max_position_delta: usize,
        stash_pad: usize,
        block_size: usize,
    ) -> MetaDelta {
        let entry = self.entries.last_mut().expect("chain is never empty");
        let mut delta = entry.frozen_delta.take().unwrap_or_else(|| MetaDelta {
            access_count: entry.access_count,
            evict_count: entry.evict_count,
            position_delta: Vec::new(),
            max_position_delta,
            buckets: Vec::new(),
            stash: entry.stash.clone(),
            stash_pad,
            block_size,
        });
        delta.max_position_delta = max_position_delta;
        delta
    }

    /// Reconstructs the full metadata of generation `id` from the live
    /// state and the entry's undo overlays.  Returns `None` if the
    /// generation has been retired.
    pub(crate) fn materialize(&self, id: u64, live: &OramMeta) -> Option<OramMeta> {
        let entry = self.entries.iter().find(|e| e.id == id)?;
        let mut position = live.position.clone();
        for (&key, pre) in &entry.position_undo {
            match pre {
                Some(leaf) => {
                    position.set(key, *leaf);
                }
                None => {
                    position.remove(key);
                }
            }
        }
        position.clear_dirty();
        let mut buckets = live.buckets.clone();
        for (&bucket, arc) in &entry.bucket_undo {
            buckets[bucket as usize] = arc.clone();
        }
        Some(OramMeta::from_snapshot_parts(
            live.config,
            position,
            buckets,
            entry.stash.clone(),
            entry.access_count,
            entry.evict_count,
        ))
    }

    /// Drops every generation that is neither latest nor pinned.
    fn retire_unpinned(&mut self) -> usize {
        let latest = self.latest_id();
        let before = self.entries.len();
        self.entries.retain(|e| e.id == latest || e.pins > 0);
        before - self.entries.len()
    }
}

/// Folds an unconsumed frozen delta into its successor.  Deltas carry
/// absolute values, so the newer entry wins per key / bucket and the merge
/// is idempotent; counters, stash and padding come from the newer delta.
fn merge_frozen(older: MetaDelta, newer: MetaDelta) -> MetaDelta {
    let mut position: BTreeMap<Key, Option<Leaf>> = older.position_delta.into_iter().collect();
    position.extend(newer.position_delta);
    let mut buckets: BTreeMap<BucketId, BucketMeta> = older.buckets.into_iter().collect();
    buckets.extend(newer.buckets);
    MetaDelta {
        access_count: newer.access_count,
        evict_count: newer.evict_count,
        position_delta: position.into_iter().collect(),
        max_position_delta: newer.max_position_delta,
        buckets: buckets.into_iter().collect(),
        stash: newer.stash,
        stash_pad: newer.stash_pad,
        block_size: newer.block_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::config::OramConfig;
    use obladi_common::rng::DetRng;

    fn live_meta() -> OramMeta {
        let config = OramConfig::small_for_tests(64);
        let mut rng = DetRng::new(7);
        OramMeta::new(config, &mut rng)
    }

    fn empty_delta(meta: &OramMeta) -> MetaDelta {
        MetaDelta {
            access_count: meta.access_count,
            evict_count: meta.evict_count,
            position_delta: Vec::new(),
            max_position_delta: 8,
            buckets: Vec::new(),
            stash: meta.stash.clone(),
            stash_pad: meta.config.max_stash,
            block_size: meta.config.block_size,
        }
    }

    #[test]
    fn materialize_applies_undo_overlays() {
        let mut live = live_meta();
        let mut chain = GenerationChain::new();
        chain.seed(live.stash.clone(), 0, 0);
        live.position.set(5, 3);
        let delta = live.take_delta(8);
        let (id, _) = chain.publish(
            delta,
            live.stash.clone(),
            live.access_count,
            live.evict_count,
            HashMap::new(),
            HashMap::new(),
        );

        // Mutate the live state after the publish, noting pre-images.
        chain.note_position(5, live.position.get(5));
        live.position.set(5, 9);
        chain.note_position(6, live.position.get(6));
        live.position.set(6, 1);
        chain.note_bucket(0, &live.buckets[0]);
        live.bucket_mut(0).reads_since_shuffle = 3;

        let snap = chain.materialize(id, &live).expect("latest is retained");
        assert_eq!(snap.position.get(5), Some(3), "pre-mutation value");
        assert_eq!(snap.position.get(6), None, "key added later is absent");
        assert_eq!(snap.buckets[0].reads_since_shuffle, 0, "bucket pre-image");
        // The live state is untouched by materialization.
        assert_eq!(live.position.get(5), Some(9));
        assert_eq!(live.buckets[0].reads_since_shuffle, 3);
    }

    #[test]
    fn pins_keep_generations_alive_and_retire_frees_them() {
        let live = live_meta();
        let mut chain = GenerationChain::new();
        chain.seed(live.stash.clone(), 0, 0);
        let g0 = chain.pin_latest();
        let (g1, retired) = chain.publish(
            empty_delta(&live),
            live.stash.clone(),
            0,
            0,
            HashMap::new(),
            HashMap::new(),
        );
        assert_eq!(retired, 0, "a pinned generation must not retire");
        assert_eq!(chain.len(), 2);
        let (_, retired) = chain.publish(
            empty_delta(&live),
            live.stash.clone(),
            0,
            0,
            HashMap::new(),
            HashMap::new(),
        );
        assert_eq!(retired, 1, "the unpinned middle generation retires");
        assert!(chain.materialize(g0, &live).is_some());
        assert!(chain.materialize(g1, &live).is_none());
        let retired = chain.unpin(g0);
        assert_eq!(retired, 1);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn unconsumed_frozen_delta_merges_forward() {
        let mut live = live_meta();
        let mut chain = GenerationChain::new();
        chain.seed(live.stash.clone(), 0, 0);
        live.position.set(1, 10);
        live.position.set(2, 20);
        live.access_count = 2;
        let first = live.take_delta(8);
        chain.publish(
            first,
            live.stash.clone(),
            2,
            0,
            HashMap::new(),
            HashMap::new(),
        );
        // Nobody consumed the first delta; the second publish must carry
        // both epochs' changes.
        live.position.set(2, 25);
        live.position.set(3, 30);
        live.access_count = 4;
        let second = live.take_delta(8);
        chain.publish(
            second,
            live.stash.clone(),
            4,
            0,
            HashMap::new(),
            HashMap::new(),
        );
        let merged = chain.take_frozen_delta(8, 4, 8);
        assert_eq!(
            merged.position_delta,
            vec![(1, Some(10)), (2, Some(25)), (3, Some(30))]
        );
        assert_eq!(merged.access_count, 4);
        // Consumed: the next take synthesizes an empty, no-op delta.
        let empty = chain.take_frozen_delta(8, 4, 8);
        assert!(empty.position_delta.is_empty());
        assert!(empty.buckets.is_empty());
        assert_eq!(empty.access_count, 4);
    }
}
