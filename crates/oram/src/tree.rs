//! Geometry of the Ring ORAM binary tree.
//!
//! Buckets are numbered heap-style: the root is bucket `0`, the children of
//! bucket `i` are `2i + 1` and `2i + 2`.  A tree with `levels` levels has
//! `2^(levels-1)` leaves and `2^levels - 1` buckets.  Leaves are labelled
//! `0..num_leaves` from left to right; the *path* to leaf `l` is the list of
//! buckets from the root down to the leaf bucket.
//!
//! Eviction targets follow Ring ORAM's deterministic reverse-lexicographic
//! order: the `g`-th eviction touches the path whose leaf label is the
//! bit-reversal of `g mod num_leaves`.  This determinism is what Obladi's
//! recovery exploits to recompute bucket versions without logging them (§8).

use obladi_common::config::OramConfig;
use obladi_common::types::{BucketId, Leaf};

/// Tree geometry helper derived from an [`OramConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeGeometry {
    /// Number of levels (root is level 0).
    pub levels: u32,
}

impl TreeGeometry {
    /// Builds the geometry for a configuration.
    pub fn new(config: &OramConfig) -> Self {
        TreeGeometry {
            levels: config.levels,
        }
    }

    /// Builds a geometry directly from a level count (tests).
    pub fn with_levels(levels: u32) -> Self {
        assert!((1..=40).contains(&levels));
        TreeGeometry { levels }
    }

    /// Number of leaves (`2^(levels-1)`).
    pub fn num_leaves(&self) -> u64 {
        1u64 << (self.levels - 1)
    }

    /// Number of buckets (`2^levels - 1`).
    pub fn num_buckets(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// The bucket at `level` on the path from the root to `leaf`.
    ///
    /// `level` 0 is the root; `level == levels - 1` is the leaf bucket.
    pub fn bucket_at(&self, leaf: Leaf, level: u32) -> BucketId {
        debug_assert!(leaf < self.num_leaves());
        debug_assert!(level < self.levels);
        let first_of_level = (1u64 << level) - 1;
        let offset = leaf >> (self.levels - 1 - level);
        first_of_level + offset
    }

    /// All buckets on the path from root to `leaf`, root first.
    pub fn path(&self, leaf: Leaf) -> Vec<BucketId> {
        (0..self.levels)
            .map(|lvl| self.bucket_at(leaf, lvl))
            .collect()
    }

    /// The level of a bucket (root = 0).
    pub fn level_of(&self, bucket: BucketId) -> u32 {
        debug_assert!(bucket < self.num_buckets());
        64 - (bucket + 1).leading_zeros() - 1
    }

    /// Deepest level at which the paths to `a` and `b` share a bucket.
    ///
    /// Level 0 (the root) is always shared; the result is `levels - 1` when
    /// `a == b`.
    pub fn shared_depth(&self, a: Leaf, b: Leaf) -> u32 {
        let width = self.levels - 1;
        if width == 0 {
            return 0;
        }
        let diff = a ^ b;
        if diff == 0 {
            return width;
        }
        // Number of identical leading bits among the `width`-bit labels.
        let highest = 63 - diff.leading_zeros() as u64;
        (width as u64 - 1 - highest) as u32
    }

    /// Whether `bucket` lies on the path to `leaf`.
    pub fn on_path(&self, bucket: BucketId, leaf: Leaf) -> bool {
        let level = self.level_of(bucket);
        self.bucket_at(leaf, level) == bucket
    }

    /// The deterministic eviction target for the `g`-th `evict_path`
    /// (reverse-lexicographic order).
    pub fn evict_target(&self, g: u64) -> Leaf {
        let width = self.levels - 1;
        if width == 0 {
            return 0;
        }
        let index = g % self.num_leaves();
        // Bit-reverse `index` within `width` bits.
        let mut reversed = 0u64;
        for bit in 0..width {
            if (index >> bit) & 1 == 1 {
                reversed |= 1 << (width - 1 - bit);
            }
        }
        reversed
    }

    /// Iterator over all bucket ids.
    pub fn all_buckets(&self) -> impl Iterator<Item = BucketId> {
        0..self.num_buckets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn geo(levels: u32) -> TreeGeometry {
        TreeGeometry::with_levels(levels)
    }

    #[test]
    fn counts_match_formulae() {
        let g = geo(4);
        assert_eq!(g.num_leaves(), 8);
        assert_eq!(g.num_buckets(), 15);
        let g1 = geo(1);
        assert_eq!(g1.num_leaves(), 1);
        assert_eq!(g1.num_buckets(), 1);
    }

    #[test]
    fn path_walks_root_to_leaf() {
        let g = geo(4);
        // Leaf 0 is the leftmost path.
        assert_eq!(g.path(0), vec![0, 1, 3, 7]);
        // Leaf 7 is the rightmost path.
        assert_eq!(g.path(7), vec![0, 2, 6, 14]);
        // Leaf 5 = binary 101: root, right, left, right.
        assert_eq!(g.path(5), vec![0, 2, 5, 12]);
    }

    #[test]
    fn level_of_inverts_bucket_at() {
        let g = geo(5);
        for leaf in 0..g.num_leaves() {
            for level in 0..g.levels {
                let bucket = g.bucket_at(leaf, level);
                assert_eq!(g.level_of(bucket), level);
                assert!(g.on_path(bucket, leaf));
            }
        }
    }

    #[test]
    fn shared_depth_properties() {
        let g = geo(4);
        assert_eq!(g.shared_depth(3, 3), 3);
        assert_eq!(g.shared_depth(0, 7), 0);
        // Leaves 0 (000) and 1 (001) share the first two branches.
        assert_eq!(g.shared_depth(0, 1), 2);
        // Leaves 0 (000) and 2 (010) share only the first branch.
        assert_eq!(g.shared_depth(0, 2), 1);
        // Symmetric.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(g.shared_depth(a, b), g.shared_depth(b, a));
            }
        }
    }

    #[test]
    fn shared_depth_matches_path_intersection() {
        let g = geo(5);
        for a in 0..g.num_leaves() {
            for b in 0..g.num_leaves() {
                let pa = g.path(a);
                let pb = g.path(b);
                let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count() as u32;
                assert_eq!(g.shared_depth(a, b), common - 1);
            }
        }
    }

    #[test]
    fn evict_targets_cycle_through_all_leaves() {
        let g = geo(4);
        let targets: HashSet<Leaf> = (0..g.num_leaves()).map(|i| g.evict_target(i)).collect();
        assert_eq!(targets.len() as u64, g.num_leaves());
        // The order is the reverse-lexicographic order: consecutive targets
        // alternate between left and right subtrees.
        assert_eq!(g.evict_target(0), 0);
        assert_eq!(g.evict_target(1), 4);
        assert_eq!(g.evict_target(2), 2);
        assert_eq!(g.evict_target(3), 6);
        // The sequence repeats with period num_leaves.
        assert_eq!(g.evict_target(8), g.evict_target(0));
    }

    #[test]
    fn single_level_tree_is_degenerate_but_valid() {
        let g = geo(1);
        assert_eq!(g.path(0), vec![0]);
        assert_eq!(g.evict_target(5), 0);
        assert_eq!(g.shared_depth(0, 0), 0);
    }
}
