//! Aggregate client-side ORAM state and its (delta) serialization.
//!
//! Obladi's recovery design (§8) hinges on being able to persist and restore
//! everything the Ring ORAM client keeps in memory: the position map, the
//! per-bucket permutation / validity metadata, the stash, and the access /
//! eviction counters.  [`OramMeta`] gathers that state; full and delta
//! checkpoints are produced here and encrypted / logged by
//! `obladi-core::durability`.

use crate::bucket::BucketMeta;
use crate::codec::{Decoder, Encoder};
use crate::position_map::PositionMap;
use crate::stash::Stash;
use obladi_common::config::OramConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Key, Leaf};
use std::collections::HashSet;
use std::sync::Arc;

/// All client-side Ring ORAM state.
#[derive(Debug, Clone, PartialEq)]
pub struct OramMeta {
    /// Tree configuration.
    pub config: OramConfig,
    /// Key → leaf map.
    pub position: PositionMap,
    /// Per-bucket metadata, indexed by bucket id.  Buckets are shared
    /// copy-on-write: a generation snapshot holds the old `Arc` while the
    /// live state mutates through [`OramMeta::bucket_mut`], so pinning a
    /// snapshot costs one pointer per since-modified bucket, not a tree
    /// clone.
    pub buckets: Vec<Arc<BucketMeta>>,
    /// The client stash.
    pub stash: Stash,
    /// Number of logical accesses performed (reads + writes); evictions are
    /// owed every `A` accesses.
    pub access_count: u64,
    /// Number of `evict_path` operations performed so far (`G`).
    pub evict_count: u64,
    /// Buckets whose metadata changed since the last delta checkpoint.
    dirty_buckets: HashSet<BucketId>,
}

impl OramMeta {
    /// Creates fresh metadata for an empty tree.
    pub fn new(config: OramConfig, rng: &mut DetRng) -> Self {
        let num_buckets = config.num_buckets() as usize;
        let buckets = (0..num_buckets)
            .map(|_| Arc::new(BucketMeta::fresh(config.z, config.s, rng)))
            .collect();
        OramMeta {
            config,
            position: PositionMap::new(),
            buckets,
            stash: Stash::new(),
            access_count: 0,
            evict_count: 0,
            dirty_buckets: HashSet::new(),
        }
    }

    /// Marks a bucket's metadata as modified since the last checkpoint.
    pub fn mark_bucket_dirty(&mut self, bucket: BucketId) {
        self.dirty_buckets.insert(bucket);
    }

    /// Mutable access to one bucket's metadata, copy-on-write: if a
    /// generation snapshot still shares the bucket's `Arc`, the bucket is
    /// cloned first so the snapshot keeps observing its frozen state.
    pub fn bucket_mut(&mut self, bucket: BucketId) -> &mut BucketMeta {
        Arc::make_mut(&mut self.buckets[bucket as usize])
    }

    /// Number of dirty buckets.
    pub fn dirty_bucket_count(&self) -> usize {
        self.dirty_buckets.len()
    }

    /// Serialises the complete state (full checkpoint).
    pub fn encode_full(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(1024 + self.buckets.len() * 64);
        enc.put_u64(self.config.num_objects);
        enc.put_u32(self.config.z);
        enc.put_u32(self.config.s);
        enc.put_u32(self.config.a);
        enc.put_u32(self.config.levels);
        enc.put_u64(self.config.block_size as u64);
        enc.put_u64(self.config.max_stash as u64);
        enc.put_u64(self.access_count);
        enc.put_u64(self.evict_count);
        enc.put_bytes(&self.position.encode());
        enc.put_bytes(
            &self
                .stash
                .encode_padded(self.config.max_stash, self.config.block_size),
        );
        enc.put_u64(self.buckets.len() as u64);
        for bucket in &self.buckets {
            bucket.encode(&mut enc);
        }
        enc.finish()
    }

    /// Assembles metadata from already-reconstructed parts (generation
    /// materialization; see `crate::generations`).
    pub(crate) fn from_snapshot_parts(
        config: OramConfig,
        position: PositionMap,
        buckets: Vec<Arc<BucketMeta>>,
        stash: Stash,
        access_count: u64,
        evict_count: u64,
    ) -> Self {
        OramMeta {
            config,
            position,
            buckets,
            stash,
            access_count,
            evict_count,
            dirty_buckets: HashSet::new(),
        }
    }

    /// Restores state from a full checkpoint.
    pub fn decode_full(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let num_objects = dec.get_u64()?;
        let z = dec.get_u32()?;
        let s = dec.get_u32()?;
        let a = dec.get_u32()?;
        let levels = dec.get_u32()?;
        let block_size = dec.get_u64()? as usize;
        let max_stash = dec.get_u64()? as usize;
        let config = OramConfig {
            num_objects,
            z,
            s,
            a,
            levels,
            block_size,
            max_stash,
        };
        let access_count = dec.get_u64()?;
        let evict_count = dec.get_u64()?;
        let position = PositionMap::decode(&dec.get_bytes()?)?;
        let stash = Stash::decode_padded(&dec.get_bytes()?)?;
        let bucket_count = dec.get_u64()? as usize;
        if bucket_count != config.num_buckets() as usize {
            return Err(ObladiError::Codec(format!(
                "checkpoint has {bucket_count} buckets, config implies {}",
                config.num_buckets()
            )));
        }
        let mut buckets = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            buckets.push(Arc::new(BucketMeta::decode(&mut dec)?));
        }
        dec.expect_end()?;
        Ok(OramMeta {
            config,
            position,
            buckets,
            stash,
            access_count,
            evict_count,
            dirty_buckets: HashSet::new(),
        })
    }

    /// Produces a delta checkpoint: the position-map delta (padded to
    /// `max_position_delta` entries), the metadata of dirty buckets, the
    /// full (padded) stash and the counters.  Clears the dirty sets.
    pub fn take_delta(&mut self, max_position_delta: usize) -> MetaDelta {
        let position_delta = self.position.take_delta();
        let mut dirty: Vec<BucketId> = self.dirty_buckets.drain().collect();
        dirty.sort_unstable();
        let buckets = dirty
            .iter()
            .map(|&b| (b, (*self.buckets[b as usize]).clone()))
            .collect();
        MetaDelta {
            access_count: self.access_count,
            evict_count: self.evict_count,
            position_delta,
            max_position_delta,
            buckets,
            stash: self.stash.clone(),
            stash_pad: self.config.max_stash,
            block_size: self.config.block_size,
        }
    }

    /// Applies a delta checkpoint on top of the current state.
    pub fn apply_delta(&mut self, delta: &MetaDelta) {
        self.access_count = delta.access_count;
        self.evict_count = delta.evict_count;
        self.position.apply_delta(&delta.position_delta);
        for (bucket, meta) in &delta.buckets {
            self.buckets[*bucket as usize] = Arc::new(meta.clone());
        }
        self.stash = delta.stash.clone();
    }

    /// Sanity check: every key in the position map is present in exactly one
    /// of stash or its path's buckets (used by invariant tests).
    pub fn locate_key(&self, key: Key, path: &[BucketId]) -> KeyLocation {
        if self.stash.contains(key) {
            return KeyLocation::Stash;
        }
        for &bucket in path {
            if self.buckets[bucket as usize].find_key(key).is_some() {
                return KeyLocation::Bucket(bucket);
            }
        }
        KeyLocation::Missing
    }
}

/// Where a key currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyLocation {
    /// In the client stash.
    Stash,
    /// In the given bucket.
    Bucket(BucketId),
    /// Nowhere (not yet written, or lost — a bug if the key exists).
    Missing,
}

/// A delta checkpoint of the proxy's ORAM metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaDelta {
    /// Logical access counter at checkpoint time.
    pub access_count: u64,
    /// Eviction counter at checkpoint time.
    pub evict_count: u64,
    /// Position-map changes since the previous checkpoint.
    pub position_delta: Vec<(Key, Option<Leaf>)>,
    /// Number of entries the position delta is padded to when encoded.
    pub max_position_delta: usize,
    /// Metadata of buckets touched since the previous checkpoint.
    pub buckets: Vec<(BucketId, BucketMeta)>,
    /// Full stash at checkpoint time.
    pub stash: Stash,
    /// Number of entries the stash is padded to when encoded.
    pub stash_pad: usize,
    /// Block size used for stash padding.
    pub block_size: usize,
}

impl MetaDelta {
    /// Serialises the delta.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.access_count);
        enc.put_u64(self.evict_count);
        enc.put_bytes(&PositionMap::encode_delta(
            &self.position_delta,
            self.max_position_delta,
        ));
        enc.put_u64(self.buckets.len() as u64);
        for (bucket, meta) in &self.buckets {
            enc.put_u64(*bucket);
            meta.encode(&mut enc);
        }
        enc.put_bytes(&self.stash.encode_padded(self.stash_pad, self.block_size));
        enc.put_u64(self.stash_pad as u64);
        enc.put_u64(self.block_size as u64);
        enc.put_u64(self.max_position_delta as u64);
        enc.finish()
    }

    /// Deserialises a delta.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let access_count = dec.get_u64()?;
        let evict_count = dec.get_u64()?;
        let position_delta = PositionMap::decode_delta(&dec.get_bytes()?)?;
        let bucket_count = dec.get_u64()? as usize;
        let mut buckets = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            let id = dec.get_u64()?;
            buckets.push((id, BucketMeta::decode(&mut dec)?));
        }
        let stash = Stash::decode_padded(&dec.get_bytes()?)?;
        let stash_pad = dec.get_u64()? as usize;
        let block_size = dec.get_u64()? as usize;
        let max_position_delta = dec.get_u64()? as usize;
        dec.expect_end()?;
        Ok(MetaDelta {
            access_count,
            evict_count,
            position_delta,
            max_position_delta,
            buckets,
            stash,
            stash_pad,
            block_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_meta() -> OramMeta {
        let config = OramConfig::small_for_tests(64);
        let mut rng = DetRng::new(3);
        OramMeta::new(config, &mut rng)
    }

    #[test]
    fn new_meta_has_fresh_buckets() {
        let meta = small_meta();
        assert_eq!(meta.buckets.len() as u64, meta.config.num_buckets());
        assert!(meta.position.is_empty());
        assert!(meta.stash.is_empty());
        assert_eq!(meta.access_count, 0);
    }

    #[test]
    fn full_checkpoint_roundtrip() {
        let mut meta = small_meta();
        meta.position.set(4, 2);
        meta.position.set(9, 1);
        meta.stash.insert(9, 1, vec![5; 8], 100).unwrap();
        meta.bucket_mut(0).real[0] = Some((4, 2));
        meta.access_count = 17;
        meta.evict_count = 2;

        let restored = OramMeta::decode_full(&meta.encode_full()).unwrap();
        assert_eq!(restored.config, meta.config);
        assert_eq!(restored.access_count, 17);
        assert_eq!(restored.evict_count, 2);
        assert_eq!(restored.position.get(4), Some(2));
        assert_eq!(restored.stash.get(9), Some((1, &vec![5; 8])));
        assert_eq!(restored.buckets[0].real[0], Some((4, 2)));
    }

    #[test]
    fn delta_roundtrip_restores_changes() {
        let mut meta = small_meta();
        let mut replica = meta.clone();

        meta.position.set(1, 3);
        meta.bucket_mut(2).real[0] = Some((1, 3));
        meta.mark_bucket_dirty(2);
        meta.stash.insert(5, 0, vec![1], 100).unwrap();
        meta.access_count = 9;

        let delta = meta.take_delta(16);
        let decoded = MetaDelta::decode(&delta.encode()).unwrap();
        assert_eq!(decoded, delta);

        replica.apply_delta(&decoded);
        assert_eq!(replica.position.get(1), Some(3));
        assert_eq!(replica.buckets[2].real[0], Some((1, 3)));
        assert!(replica.stash.contains(5));
        assert_eq!(replica.access_count, 9);
    }

    #[test]
    fn delta_is_cleared_after_take() {
        let mut meta = small_meta();
        meta.position.set(1, 1);
        meta.mark_bucket_dirty(0);
        let first = meta.take_delta(8);
        assert_eq!(first.buckets.len(), 1);
        assert_eq!(first.position_delta.len(), 1);
        let second = meta.take_delta(8);
        assert!(second.buckets.is_empty());
        assert!(second.position_delta.is_empty());
    }

    #[test]
    fn locate_key_distinguishes_stash_bucket_missing() {
        let mut meta = small_meta();
        meta.stash.insert(10, 0, vec![], 100).unwrap();
        meta.bucket_mut(1).real[0] = Some((11, 0));
        assert_eq!(meta.locate_key(10, &[0, 1]), KeyLocation::Stash);
        assert_eq!(meta.locate_key(11, &[0, 1]), KeyLocation::Bucket(1));
        assert_eq!(meta.locate_key(12, &[0, 1]), KeyLocation::Missing);
    }

    #[test]
    fn corrupt_full_checkpoint_is_rejected() {
        let meta = small_meta();
        let mut bytes = meta.encode_full();
        bytes.truncate(bytes.len() / 2);
        assert!(OramMeta::decode_full(&bytes).is_err());
    }
}
