//! A small persistent worker pool used by the parallel ORAM executor (§7).
//!
//! Physical slot reads of a batch are independent of each other (Ring ORAM
//! never reads the same physical slot twice between reshuffles, and write
//! deduplication guarantees each bucket is written at most once per epoch),
//! so they can all be issued concurrently.  Workers are plain OS threads:
//! most of their time is spent blocked on simulated storage latency, so a
//! generous thread count is cheap and models the asynchronous I/O of the
//! original Java implementation.

use crossbeam::channel::{unbounded, Sender};
use std::sync::mpsc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads with a scatter/gather helper.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool with `size` workers (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let receiver = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("oram-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .expect("failed to spawn ORAM worker thread");
            workers.push(handle);
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` over every item of `items` on the pool and returns the
    /// results in input order.  Blocks until all items have completed.
    ///
    /// `f` must be cheap to clone (it is shared by reference through an
    /// `Arc` internally); items are moved to the workers.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        // For a single item (or a single worker) avoid the scatter/gather
        // overhead entirely.
        if items.len() == 1 {
            let mut items = items;
            return vec![f(items.pop().expect("len checked"))];
        }

        let shared = std::sync::Arc::new(f);
        let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
        let count = items.len();
        let sender = self.sender.as_ref().expect("pool not shut down");
        for (idx, item) in items.into_iter().enumerate() {
            let f = shared.clone();
            let tx = result_tx.clone();
            let job: Job = Box::new(move || {
                let result = f(item);
                // The receiver only disappears if the caller panicked.
                let _ = tx.send((idx, result));
            });
            sender.send(job).expect("worker pool channel closed");
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
        for _ in 0..count {
            let (idx, result) = result_rx.recv().expect("worker dropped result");
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|r| r.expect("all results received"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes the workers exit their recv loop.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let results = pool.map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(results, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::new(2);
        let empty: Vec<i32> = pool.map(Vec::<i32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![5], |x: i32| x + 1), vec![6]);
    }

    #[test]
    fn work_actually_runs_concurrently() {
        let pool = ThreadPool::new(8);
        let start = Instant::now();
        pool.map((0..8).collect(), |_x: i32| {
            std::thread::sleep(Duration::from_millis(50));
        });
        // Eight 50 ms sleeps on eight workers should take well under 400 ms.
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn all_items_processed_exactly_once() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        pool.map((0..500).collect(), move |_x: i32| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn pool_of_size_zero_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |x: i32| x), vec![1, 2, 3]);
    }

    #[test]
    fn pool_can_be_reused_across_many_batches() {
        let pool = ThreadPool::new(4);
        for round in 0..20 {
            let results = pool.map((0..50).collect(), move |x: i32| x + round);
            assert_eq!(results.len(), 50);
            assert_eq!(results[0], round);
        }
    }
}
