//! Client-side bucket metadata (§4).
//!
//! Each bucket has `Z + S` physical slots.  The client remembers, per
//! bucket, a random permutation mapping *logical* slots to physical slots,
//! which logical slots are still valid (not yet read since the last time the
//! bucket was written), which real slots hold which keys, and how many times
//! the bucket has been accessed since its last reshuffle.  Logical slots
//! `0..Z` are real slots, `Z..Z+S` are dummy slots.
//!
//! In the paper this is the client-side "permutation map"; Obladi checkpoints
//! it (encrypted) for durability and recovers it after a crash rather than
//! scanning the whole ORAM (§8).

use crate::codec::{Decoder, Encoder};
use obladi_common::error::Result;
use obladi_common::rng::DetRng;
use obladi_common::types::{Key, Leaf, Version};

/// Client-side metadata for one bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketMeta {
    /// `perm[logical] = physical slot index`, length `Z + S`.
    pub perm: Vec<u32>,
    /// `valid[logical]`: whether the logical slot may still be read before
    /// the next reshuffle of this bucket.
    pub valid: Vec<bool>,
    /// Contents of the real slots: `real[i] = Some((key, leaf))` when logical
    /// real slot `i` holds `key` mapped to `leaf`.
    pub real: Vec<Option<(Key, Leaf)>>,
    /// Number of accesses (slot reads) since the bucket was last written.
    pub reads_since_shuffle: u32,
    /// Version of the bucket on untrusted storage that this metadata
    /// describes (0 = never written).
    pub version: Version,
}

impl BucketMeta {
    /// Creates metadata for a freshly (re)written bucket with no real
    /// blocks: a new random permutation, everything valid.
    pub fn fresh(z: u32, s: u32, rng: &mut DetRng) -> Self {
        let total = (z + s) as usize;
        BucketMeta {
            perm: rng.permutation(total),
            valid: vec![true; total],
            real: vec![None; z as usize],
            reads_since_shuffle: 0,
            version: 0,
        }
    }

    /// Number of real slots (`Z`).
    pub fn z(&self) -> usize {
        self.real.len()
    }

    /// Number of dummy slots (`S`).
    pub fn s(&self) -> usize {
        self.perm.len() - self.real.len()
    }

    /// Number of real blocks currently stored.
    pub fn num_real(&self) -> usize {
        self.real.iter().filter(|r| r.is_some()).count()
    }

    /// Logical index of `key` among the real slots, if present and valid.
    pub fn find_key(&self, key: Key) -> Option<usize> {
        self.real
            .iter()
            .position(|r| matches!(r, Some((k, _)) if *k == key))
    }

    /// Logical indices of valid dummy slots.
    pub fn valid_dummies(&self) -> Vec<usize> {
        (self.z()..self.perm.len())
            .filter(|&i| self.valid[i])
            .collect()
    }

    /// Logical indices of valid, occupied real slots.
    pub fn valid_reals(&self) -> Vec<usize> {
        (0..self.z())
            .filter(|&i| self.valid[i] && self.real[i].is_some())
            .collect()
    }

    /// Picks a uniformly random valid dummy slot, if any remain.
    pub fn pick_valid_dummy(&self, rng: &mut DetRng) -> Option<usize> {
        let dummies = self.valid_dummies();
        if dummies.is_empty() {
            None
        } else {
            Some(dummies[rng.below_usize(dummies.len())])
        }
    }

    /// Marks a logical slot as read and returns its physical slot index.
    pub fn mark_read(&mut self, logical: usize) -> u32 {
        debug_assert!(self.valid[logical], "slot read twice between shuffles");
        self.valid[logical] = false;
        self.reads_since_shuffle += 1;
        self.perm[logical]
    }

    /// Removes the key stored in logical real slot `logical` (the block has
    /// moved to the stash or been superseded by a newer write).
    pub fn clear_real(&mut self, logical: usize) -> Option<(Key, Leaf)> {
        self.real[logical].take()
    }

    /// Whether the bucket has run out of valid dummy slots, or has been
    /// accessed `s` times, and therefore needs an early reshuffle before it
    /// can be accessed again (§4).
    pub fn needs_early_reshuffle(&self) -> bool {
        self.valid_dummies().is_empty() || self.reads_since_shuffle as usize >= self.s()
    }

    /// Re-initialises the metadata after the bucket has been logically
    /// rewritten with `blocks` (at most `Z` of them).
    pub fn rewrite(&mut self, blocks: &[(Key, Leaf)], rng: &mut DetRng) {
        let z = self.z();
        let total = self.perm.len();
        debug_assert!(blocks.len() <= z);
        self.perm = rng.permutation(total);
        self.valid = vec![true; total];
        self.real = vec![None; z];
        for (i, (key, leaf)) in blocks.iter().enumerate() {
            self.real[i] = Some((*key, *leaf));
        }
        self.reads_since_shuffle = 0;
    }

    /// Serialises the metadata.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.perm.len() as u32);
        for &p in &self.perm {
            enc.put_u32(p);
        }
        for &v in &self.valid {
            enc.put_bool(v);
        }
        enc.put_u32(self.real.len() as u32);
        for slot in &self.real {
            match slot {
                Some((key, leaf)) => {
                    enc.put_bool(true);
                    enc.put_u64(*key);
                    enc.put_u64(*leaf);
                }
                None => enc.put_bool(false),
            }
        }
        enc.put_u32(self.reads_since_shuffle);
        enc.put_u64(self.version);
    }

    /// Deserialises metadata written by [`BucketMeta::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let total = dec.get_u32()? as usize;
        let mut perm = Vec::with_capacity(total);
        for _ in 0..total {
            perm.push(dec.get_u32()?);
        }
        let mut valid = Vec::with_capacity(total);
        for _ in 0..total {
            valid.push(dec.get_bool()?);
        }
        let z = dec.get_u32()? as usize;
        let mut real = Vec::with_capacity(z);
        for _ in 0..z {
            if dec.get_bool()? {
                let key = dec.get_u64()?;
                let leaf = dec.get_u64()?;
                real.push(Some((key, leaf)));
            } else {
                real.push(None);
            }
        }
        let reads_since_shuffle = dec.get_u32()?;
        let version = dec.get_u64()?;
        Ok(BucketMeta {
            perm,
            valid,
            real,
            reads_since_shuffle,
            version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> (BucketMeta, DetRng) {
        let mut rng = DetRng::new(1);
        (BucketMeta::fresh(3, 5, &mut rng), rng)
    }

    #[test]
    fn fresh_bucket_is_empty_and_valid() {
        let (m, _) = meta();
        assert_eq!(m.z(), 3);
        assert_eq!(m.s(), 5);
        assert_eq!(m.num_real(), 0);
        assert_eq!(m.valid_dummies().len(), 5);
        assert!(m.valid_reals().is_empty());
        assert!(!m.needs_early_reshuffle());
    }

    #[test]
    fn permutation_covers_all_physical_slots() {
        let (m, _) = meta();
        let mut phys: Vec<u32> = m.perm.clone();
        phys.sort_unstable();
        assert_eq!(phys, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn find_and_clear_real_keys() {
        let (mut m, _) = meta();
        m.real[1] = Some((42, 6));
        assert_eq!(m.find_key(42), Some(1));
        assert_eq!(m.find_key(43), None);
        assert_eq!(m.num_real(), 1);
        assert_eq!(m.clear_real(1), Some((42, 6)));
        assert_eq!(m.find_key(42), None);
    }

    #[test]
    fn mark_read_invalidates_and_counts() {
        let (mut m, _) = meta();
        let physical = m.mark_read(4);
        assert!(physical < 8);
        assert!(!m.valid[4]);
        assert_eq!(m.reads_since_shuffle, 1);
        assert_eq!(m.valid_dummies().len(), 4);
    }

    #[test]
    fn early_reshuffle_when_dummies_exhausted() {
        let (mut m, _) = meta();
        for i in m.z()..m.perm.len() {
            m.mark_read(i);
        }
        assert!(m.needs_early_reshuffle());
    }

    #[test]
    fn pick_valid_dummy_only_returns_valid_dummy_slots() {
        let (mut m, mut rng) = meta();
        for _ in 0..20 {
            if let Some(i) = m.pick_valid_dummy(&mut rng) {
                assert!(i >= m.z());
                assert!(m.valid[i]);
                m.mark_read(i);
            }
        }
        assert!(m.pick_valid_dummy(&mut rng).is_none());
    }

    #[test]
    fn rewrite_resets_state() {
        let (mut m, mut rng) = meta();
        m.mark_read(0);
        m.mark_read(5);
        m.rewrite(&[(7, 2), (9, 3)], &mut rng);
        assert_eq!(m.num_real(), 2);
        assert_eq!(m.find_key(7), Some(0));
        assert_eq!(m.find_key(9), Some(1));
        assert!(m.valid.iter().all(|&v| v));
        assert_eq!(m.reads_since_shuffle, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (mut m, mut rng) = meta();
        m.real[0] = Some((11, 4));
        m.mark_read(6);
        m.version = 9;
        m.rewrite(&[(1, 1)], &mut rng);
        m.real[2] = Some((3, 7));
        m.mark_read(1);

        let mut enc = Encoder::new();
        m.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let decoded = BucketMeta::decode(&mut dec).unwrap();
        dec.expect_end().unwrap();
        assert_eq!(decoded, m);
    }
}
