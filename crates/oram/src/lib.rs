//! Ring ORAM and Obladi's batched / parallel ORAM executor.
//!
//! This crate implements the oblivious-storage substrate of the paper:
//!
//! * [`tree`] — binary tree geometry, deterministic reverse-lexicographic
//!   eviction order;
//! * [`block`] — real/dummy block representation and fixed-size encoding;
//! * [`bucket`] — client-side per-bucket metadata (permutation map, validity
//!   bits, real-slot assignments);
//! * [`position_map`] / [`stash`] — the remaining client-side state, with
//!   padded serialization used by durability checkpoints;
//! * [`metadata`] — aggregate client state plus full/delta checkpoints;
//! * [`pool`] — the worker pool used for intra- and inter-request
//!   parallelism;
//! * [`split`] — the split client: [`split::OramReader`] (the concurrent
//!   read plane) and [`split::WritebackEngine`] (the background write-back
//!   engine), sharing the versioned client state behind one fine-grained
//!   lock so a proxy can overlap one epoch's reads with the previous
//!   epoch's write-back I/O;
//! * [`client`] — [`client::RingOram`], the single-threaded facade over the
//!   split halves: the batched executor with dummiless writes, epoch-local
//!   bucket buffering (delayed visibility), early reshuffles, path logging
//!   hooks and recovery support.
//!
//! See DESIGN.md at the repository root for how these pieces map onto the
//! sections of the paper and for the two documented deviations from
//! canonical Ring ORAM (batch-boundary evictions and buffer-served reads).

#![warn(missing_docs)]

pub mod block;
pub mod bucket;
pub mod client;
pub mod codec;
mod generations;
pub mod metadata;
pub mod pool;
pub mod position_map;
pub mod split;
pub mod stash;
pub mod tree;

pub use block::Block;
pub use bucket::BucketMeta;
pub use client::{ExecOptions, NoopPathLogger, OramStats, PathLogger, RingOram, SlotRead};
pub use metadata::{MetaDelta, OramMeta};
pub use pool::ThreadPool;
pub use position_map::PositionMap;
pub use split::{
    set_leak_skip_dummy_pads, CheckpointSource, OramReader, PinnedGeneration, WritebackEngine,
};
pub use stash::Stash;
pub use tree::TreeGeometry;
