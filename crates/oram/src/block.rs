//! Plaintext representation of ORAM blocks and their on-storage encoding.
//!
//! A *real* block carries a logical key, the leaf the key is currently
//! mapped to, and the value payload.  A *dummy* block carries no
//! information; its only purpose is to be indistinguishable from a real
//! block once sealed.  Obladi seals every slot with
//! [`obladi_crypto::Envelope`], which pads plaintexts to a fixed capacity so
//! the two kinds are the same size on the wire; when encryption is disabled
//! (the `Parallel` series of Figure 10a measures the ORAM without crypto
//! cost) blocks are padded to the same fixed size in the clear.

use crate::codec::{Decoder, Encoder};
use obladi_common::error::{ObladiError, Result};
use obladi_common::types::{Key, Leaf, Value};

/// Sentinel key marking a dummy block.
pub const DUMMY_KEY: Key = u64::MAX;

/// A decrypted ORAM block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Logical key, or [`DUMMY_KEY`] for dummies.
    pub key: Key,
    /// Leaf the key is mapped to (meaningless for dummies).
    pub leaf: Leaf,
    /// Value payload (empty for dummies).
    pub value: Value,
}

impl Block {
    /// Creates a real block.
    pub fn real(key: Key, leaf: Leaf, value: Value) -> Self {
        debug_assert_ne!(key, DUMMY_KEY, "DUMMY_KEY is reserved");
        Block { key, leaf, value }
    }

    /// Creates a dummy block.
    pub fn dummy() -> Self {
        Block {
            key: DUMMY_KEY,
            leaf: 0,
            value: Vec::new(),
        }
    }

    /// Whether this block is a dummy.
    pub fn is_dummy(&self) -> bool {
        self.key == DUMMY_KEY
    }

    /// Plaintext encoding: `key || leaf || value` (the envelope adds its own
    /// length prefix and padding).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(16 + self.value.len());
        enc.put_u64(self.key);
        enc.put_u64(self.leaf);
        enc.put_bytes(&self.value);
        enc.finish()
    }

    /// Decodes a plaintext block.
    pub fn decode(bytes: &[u8]) -> Result<Block> {
        let mut dec = Decoder::new(bytes);
        let key = dec.get_u64()?;
        let leaf = dec.get_u64()?;
        let value = dec.get_bytes()?;
        dec.expect_end()?;
        Ok(Block { key, leaf, value })
    }

    /// The plaintext capacity an envelope needs for blocks whose values are
    /// at most `block_size` bytes.
    pub fn padded_capacity(block_size: usize) -> usize {
        // key (8) + leaf (8) + value length prefix (4) + payload.
        20 + block_size
    }

    /// Validates that the value fits the configured block size.
    pub fn check_size(&self, block_size: usize) -> Result<()> {
        if self.value.len() > block_size {
            return Err(ObladiError::Codec(format!(
                "value of {} bytes exceeds block size {}",
                self.value.len(),
                block_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_block_roundtrip() {
        let block = Block::real(42, 7, vec![1, 2, 3, 4]);
        let decoded = Block::decode(&block.encode()).unwrap();
        assert_eq!(decoded, block);
        assert!(!decoded.is_dummy());
    }

    #[test]
    fn dummy_block_roundtrip() {
        let block = Block::dummy();
        let decoded = Block::decode(&block.encode()).unwrap();
        assert!(decoded.is_dummy());
        assert!(decoded.value.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Block::decode(&[1, 2, 3]).is_err());
        let mut good = Block::real(1, 1, vec![9; 10]).encode();
        good.push(0);
        assert!(Block::decode(&good).is_err(), "trailing byte must fail");
    }

    #[test]
    fn padded_capacity_covers_max_value() {
        let block = Block::real(5, 5, vec![0u8; 128]);
        assert!(block.encode().len() <= Block::padded_capacity(128));
        let empty = Block::real(5, 5, vec![]);
        assert!(empty.encode().len() <= Block::padded_capacity(128));
    }

    #[test]
    fn size_check() {
        let block = Block::real(1, 1, vec![0u8; 64]);
        assert!(block.check_size(64).is_ok());
        assert!(block.check_size(63).is_err());
    }
}
