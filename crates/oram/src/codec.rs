//! Minimal binary encoding helpers.
//!
//! Checkpoints, path logs and block payloads are serialized with a small
//! hand-rolled codec (length-prefixed little-endian fields) rather than an
//! external serialization crate, keeping the on-storage format explicit and
//! the dependency set within the allowed list.

use obladi_common::error::{ObladiError, Result};

/// Append-only encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Consumes the encoder and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(ObladiError::Codec(format!(
                "decode overrun: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns an error unless the buffer has been fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(ObladiError::Codec(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut enc = Encoder::new();
        enc.put_u64(0xDEAD_BEEF_1234_5678);
        enc.put_u32(77);
        enc.put_u8(3);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_bytes(b"hello");
        enc.put_bytes(b"");
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u64().unwrap(), 0xDEAD_BEEF_1234_5678);
        assert_eq!(dec.get_u32().unwrap(), 77);
        assert_eq!(dec.get_u8().unwrap(), 3);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.get_bytes().unwrap(), b"hello");
        assert_eq!(dec.get_bytes().unwrap(), b"");
        dec.expect_end().unwrap();
    }

    #[test]
    fn overrun_is_detected() {
        let mut enc = Encoder::new();
        enc.put_u32(5);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_u64().is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        enc.put_u32(2);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        dec.get_u32().unwrap();
        assert!(dec.expect_end().is_err());
        dec.get_u32().unwrap();
        dec.expect_end().unwrap();
    }

    #[test]
    fn corrupt_length_prefix_fails_cleanly() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"abc");
        let mut bytes = enc.finish();
        // Claim a huge length.
        bytes[0] = 0xff;
        bytes[1] = 0xff;
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_bytes().is_err());
    }

    #[test]
    fn encoder_capacity_and_len() {
        let mut enc = Encoder::with_capacity(64);
        assert!(enc.is_empty());
        enc.put_u8(1);
        assert_eq!(enc.len(), 1);
    }
}
