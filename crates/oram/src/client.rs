//! The Ring ORAM client facade and Obladi's batched / parallel executor
//! (§4, §6.3, §7).
//!
//! The client implementation lives in [`crate::split`]: a concurrent
//! **read plane** ([`crate::split::OramReader`]) and a background
//! **write-back engine** ([`crate::split::WritebackEngine`]) sharing the
//! versioned client state (position map, per-bucket metadata, stash,
//! buffered-bucket overlay) behind one fine-grained lock.  [`RingOram`]
//! composes the two halves back into the original single-threaded client
//! surface — the batch-oriented interface the Obladi proxy's recovery path,
//! the baselines and the benchmarks use:
//!
//! * [`RingOram::read_batch`] — executes one read batch: a metadata-only
//!   planning pass chooses exactly one slot per non-buffered bucket on each
//!   request's path, the physical reads are issued concurrently on a worker
//!   pool (intra- *and* inter-request parallelism), values are ingested into
//!   the stash, and any evictions that have come due (every `A` accesses)
//!   are performed with their bucket write-backs *deferred* into a local
//!   buffer;
//! * [`RingOram::write_batch`] — applies the epoch's write batch using
//!   dummiless writes (§6.3): new versions go straight to the stash, with no
//!   physical reads, while still advancing the eviction schedule;
//! * [`RingOram::flush_writes`] — seals and writes every buffered bucket
//!   back to storage, once per bucket (write deduplication), which is the
//!   only moment physical writes happen;
//! * [`RingOram::access`] — a sequential single-operation interface used by
//!   the non-batched baseline of Figure 10a;
//! * [`RingOram::split`] — hands the two halves to a caller that wants to
//!   drive them from separate threads (the pipelined proxy: its executor
//!   thread owns the read plane, its decider thread the write-back engine,
//!   so epoch `N+1`'s reads overlap epoch `N`'s write-back I/O).
//!
//! Two deliberate deviations from canonical Ring ORAM, both documented in
//! DESIGN.md, keep the batched implementation tractable without changing the
//! behaviour the evaluation measures: evictions owed in the middle of a
//! batch are performed at the end of that batch (the paper itself defers all
//! physical writes to the epoch boundary), and buckets that have already
//! been logically rewritten during the epoch are served from the local
//! buffer instead of being physically re-read (the paper's "reads are served
//! locally from the buffered buckets", §7).

use crate::codec::{Decoder, Encoder};
use crate::metadata::{MetaDelta, OramMeta};
use crate::split::{from_meta_split, new_split, CheckpointSource, OramReader, WritebackEngine};
use crate::tree::TreeGeometry;
use obladi_common::config::OramConfig;
use obladi_common::error::Result;
use obladi_common::types::{BucketId, Key, Value, Version};
use obladi_crypto::KeyMaterial;
use obladi_storage::UntrustedStore;
use std::sync::Arc;

/// How the executor runs physical I/O and write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Issue physical reads/writes concurrently on a worker pool.
    pub parallel: bool,
    /// Worker pool size (ignored when `parallel` is false).
    pub threads: usize,
    /// Defer bucket write-back to [`RingOram::flush_writes`] (delayed
    /// visibility).  When false every eviction writes its buckets
    /// immediately, as canonical Ring ORAM does.
    pub deferred_writes: bool,
    /// Seal blocks with ChaCha20 + HMAC.  Disabling isolates the ORAM's
    /// scheduling cost from its crypto cost (the `Parallel` vs
    /// `ParallelCrypto` series of Figure 10a).
    pub encrypt: bool,
    /// Initialise the tree by cloning a single sealed dummy per bucket
    /// instead of sealing every slot individually.  Initialisation is a
    /// one-off, offline step in a real deployment; this flag only shortens
    /// benchmark start-up and never affects steady-state behaviour.
    pub fast_init: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: true,
            threads: 8,
            deferred_writes: true,
            encrypt: true,
            fast_init: false,
        }
    }
}

impl ExecOptions {
    /// Canonical sequential Ring ORAM: no parallelism, immediate writes.
    pub fn sequential() -> Self {
        ExecOptions {
            parallel: false,
            threads: 1,
            deferred_writes: false,
            encrypt: true,
            fast_init: false,
        }
    }

    /// Parallel executor with `threads` workers and deferred writes.
    pub fn parallel(threads: usize) -> Self {
        ExecOptions {
            parallel: true,
            threads,
            deferred_writes: true,
            encrypt: true,
            fast_init: false,
        }
    }

    /// Disables encryption (the `Parallel` series of Figure 10a).
    pub fn without_crypto(mut self) -> Self {
        self.encrypt = false;
        self
    }

    /// Enables fast tree initialisation.
    pub fn with_fast_init(mut self) -> Self {
        self.fast_init = true;
        self
    }

    /// Enables or disables deferred (buffered) bucket write-back.
    pub fn with_deferred_writes(mut self, deferred: bool) -> Self {
        self.deferred_writes = deferred;
        self
    }
}

/// Operation counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Logical read requests processed (including padded dummy requests).
    pub logical_reads: u64,
    /// Logical write requests processed.
    pub logical_writes: u64,
    /// Physical slot reads issued to storage.
    pub physical_reads: u64,
    /// Physical bucket writes issued to storage.
    pub physical_writes: u64,
    /// `evict_path` operations performed.
    pub evictions: u64,
    /// Early reshuffles performed.
    pub early_reshuffles: u64,
    /// Bucket reads served from the epoch-local buffer instead of storage.
    pub buffered_reads: u64,
    /// Largest stash occupancy observed.
    pub stash_peak: u64,
}

/// One physical slot read: which bucket, which physical slot, and the bucket
/// version expected (bound into the envelope MAC for freshness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRead {
    /// Bucket to read from.
    pub bucket: BucketId,
    /// Physical slot index.
    pub slot: u32,
    /// Expected bucket version.
    pub version: Version,
}

impl SlotRead {
    /// Encodes a list of slot reads (for the durability path log).
    pub fn encode_list(reads: &[SlotRead]) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(8 + reads.len() * 20);
        enc.put_u64(reads.len() as u64);
        for r in reads {
            enc.put_u64(r.bucket);
            enc.put_u32(r.slot);
            enc.put_u64(r.version);
        }
        enc.finish()
    }

    /// Decodes a list written by [`SlotRead::encode_list`].
    pub fn decode_list(bytes: &[u8]) -> Result<Vec<SlotRead>> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut reads = Vec::with_capacity(count);
        for _ in 0..count {
            reads.push(SlotRead {
                bucket: dec.get_u64()?,
                slot: dec.get_u32()?,
                version: dec.get_u64()?,
            });
        }
        dec.expect_end()?;
        Ok(reads)
    }
}

/// Receives the physical read set of a batch *before* it executes, so the
/// proxy can durably log it (§8: recovery replays the logged paths).
pub trait PathLogger: Send + Sync {
    /// Called with every physical read about to be issued.
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()>;
}

/// A [`PathLogger`] that does nothing (durability disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPathLogger;

impl PathLogger for NoopPathLogger {
    fn log_reads(&self, _reads: &[SlotRead]) -> Result<()> {
        Ok(())
    }
}

/// The Ring ORAM client: the read plane and write-back engine composed back
/// into a single-threaded handle.
pub struct RingOram {
    reader: OramReader,
    engine: WritebackEngine,
    options: ExecOptions,
}

impl RingOram {
    /// Creates a client over `store`, initialising the tree on storage if it
    /// has never been written.
    pub fn new(
        config: OramConfig,
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        options: ExecOptions,
        seed: u64,
    ) -> Result<Self> {
        let (reader, engine) = new_split(config, keys, store, options, seed)?;
        Ok(RingOram {
            reader,
            engine,
            options,
        })
    }

    /// Restores a client from previously checkpointed metadata without
    /// re-initialising storage (used by crash recovery).
    pub fn from_meta(
        meta: OramMeta,
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        options: ExecOptions,
        seed: u64,
    ) -> Self {
        let (reader, engine) = from_meta_split(meta, keys, store, options, seed);
        RingOram {
            reader,
            engine,
            options,
        }
    }

    /// Splits the client into its two concurrently drivable halves.  The
    /// pipelined proxy hands the read plane to its epoch executor and the
    /// write-back engine to its epoch decider; the halves share the
    /// versioned client state, so all invariants keep holding while epoch
    /// `N+1`'s reads overlap epoch `N`'s write-back I/O.  The engine gets
    /// its own worker pool here (the facade shares one) so flush I/O never
    /// queues behind the read plane's fetches.
    pub fn split(self) -> (OramReader, WritebackEngine) {
        let mut engine = self.engine;
        engine.use_private_pool();
        (self.reader, engine)
    }

    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        self.reader.config()
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.reader.geometry()
    }

    /// Operation counters.
    pub fn stats(&self) -> OramStats {
        self.reader.stats()
    }

    /// Resets the operation counters (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.reader.reset_stats();
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.reader.stash_len()
    }

    /// Number of buckets currently buffered locally (awaiting flush).
    pub fn buffered_buckets(&self) -> usize {
        self.engine.buffered_buckets()
    }

    /// Access to the underlying store (for stats in benches).
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        self.reader.store()
    }

    /// A snapshot of the client metadata (tests and diagnostics).
    pub fn meta_snapshot(&self) -> OramMeta {
        self.engine.meta_snapshot()
    }

    /// Produces a delta checkpoint of the client metadata.  Fails if the
    /// read plane is poisoned (a fetched target block was lost in flight;
    /// see [`CheckpointSource`]).
    pub fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta> {
        CheckpointSource::checkpoint_delta(&mut self.engine, max_position_delta)
    }

    /// Produces a full checkpoint of the client metadata.  Fails if the
    /// read plane is poisoned (see [`CheckpointSource`]).
    pub fn checkpoint_full(&self) -> Result<Vec<u8>> {
        CheckpointSource::checkpoint_full(&self.engine)
    }

    // ------------------------------------------------------------------
    // Batched interface used by the Obladi proxy
    // ------------------------------------------------------------------

    /// Executes one read batch.  `requests[i] == None` denotes a padding
    /// (dummy) request that reads a uniformly random path.
    pub fn read_batch(
        &mut self,
        requests: &[Option<Key>],
        logger: &dyn PathLogger,
    ) -> Result<Vec<Option<Value>>> {
        let results = self.reader.read_batch(requests, logger)?;
        // Run any evictions / reshuffles that have come due, exactly where
        // the monolithic client ran them.
        self.engine.run_pending_maintenance(logger)?;
        if !self.options.deferred_writes {
            self.engine.flush_writes(logger)?;
        }
        Ok(results)
    }

    /// Applies a write batch using dummiless writes (§6.3): the new version
    /// of each object goes directly to the stash; no physical reads are
    /// issued, but the eviction schedule still advances.
    pub fn write_batch(&mut self, writes: &[(Key, Value)], logger: &dyn PathLogger) -> Result<()> {
        self.engine.write_batch(writes, logger)
    }

    /// Like [`RingOram::write_batch`], but pads the batch to `padded_to`
    /// logical writes so the eviction schedule (which advances once per `A`
    /// logical accesses) is independent of how many real writes the epoch
    /// produced — the workload-independence requirement of §6.2.
    pub fn write_batch_padded(
        &mut self,
        writes: &[(Key, Value)],
        padded_to: usize,
        logger: &dyn PathLogger,
    ) -> Result<()> {
        self.engine.write_batch_padded(writes, padded_to, logger)
    }

    /// Seals and writes every buffered bucket back to storage (one write per
    /// bucket — the last version wins) and clears the buffer.
    pub fn flush_writes(&mut self, logger: &dyn PathLogger) -> Result<()> {
        self.engine.flush_writes(logger)
    }

    /// Convenience sequential interface: a single read or write, with
    /// maintenance and write-back applied immediately.  Used by the
    /// sequential Ring ORAM baseline of Figure 10a.
    pub fn access(&mut self, key: Key, value: Option<Value>) -> Result<Option<Value>> {
        match value {
            Some(v) => {
                // A canonical Ring ORAM write performs a full path access;
                // we reproduce that here (the batched proxy path uses
                // dummiless writes instead).
                let previous = self.read_batch(&[Some(key)], &NoopPathLogger)?;
                self.write_batch(&[(key, v)], &NoopPathLogger)?;
                if !self.options.deferred_writes {
                    self.flush_writes(&NoopPathLogger)?;
                }
                Ok(previous.into_iter().next().flatten())
            }
            None => Ok(self
                .read_batch(&[Some(key)], &NoopPathLogger)?
                .into_iter()
                .next()
                .flatten()),
        }
    }

    // ------------------------------------------------------------------
    // Recovery support
    // ------------------------------------------------------------------

    /// Re-issues a previously logged set of physical reads, discarding the
    /// results.  Recovery replays the logged paths of the aborted epoch so
    /// the adversary observes a deterministic pattern (§8).
    pub fn replay_reads(&mut self, reads: &[SlotRead]) -> Result<()> {
        self.engine.replay_reads(reads)
    }

    /// Reverts every bucket on storage to the version recorded in the client
    /// metadata (shadow paging, §8).  Used by recovery to discard bucket
    /// writes from an epoch that did not commit.
    pub fn revert_storage_to_meta(&self) -> Result<()> {
        self.engine.revert_storage_to_meta()
    }

    /// Discards all epoch-local buffered state (aborting the epoch).
    pub fn discard_buffered(&mut self) {
        self.engine.discard_buffered()
    }
}

impl CheckpointSource for RingOram {
    fn checkpoint_full(&self) -> Result<Vec<u8>> {
        RingOram::checkpoint_full(self)
    }

    fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta> {
        RingOram::checkpoint_delta(self, max_position_delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::rng::DetRng;
    use obladi_storage::InMemoryStore;

    fn new_oram(num_objects: u64, options: ExecOptions) -> RingOram {
        let config = OramConfig::small_for_tests(num_objects);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        RingOram::new(config, &keys, store, options, 99).unwrap()
    }

    fn value(tag: u64) -> Value {
        tag.to_le_bytes().to_vec()
    }

    #[test]
    fn constructing_a_client_reinitialises_a_previously_used_store() {
        // A fresh client has a fresh position map and fresh permutations, so
        // it must rewrite the tree it finds on storage; anything a previous
        // client stored there is gone, and the new client's own writes work.
        let config = OramConfig::small_for_tests(128);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());

        let mut first =
            RingOram::new(config, &keys, store.clone(), ExecOptions::default(), 7).unwrap();
        first
            .write_batch(&[(1, value(111))], &NoopPathLogger)
            .unwrap();
        first.flush_writes(&NoopPathLogger).unwrap();
        drop(first);

        let mut second = RingOram::new(config, &keys, store, ExecOptions::default(), 8).unwrap();
        let results = second.read_batch(&[Some(1)], &NoopPathLogger).unwrap();
        assert_eq!(
            results[0], None,
            "old client's data must not survive re-init"
        );

        // The second client is fully functional: write, flush, evict, read.
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 500))).collect();
        second.write_batch(&writes, &NoopPathLogger).unwrap();
        second.flush_writes(&NoopPathLogger).unwrap();
        for k in 0..32u64 {
            let results = second.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                results[0],
                Some(value(k + 500)),
                "key {k} lost after re-init"
            );
            second.flush_writes(&NoopPathLogger).unwrap();
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(11)), (2, value(22))], &NoopPathLogger)
            .unwrap();
        let results = oram
            .read_batch(&[Some(1), Some(2), Some(3)], &NoopPathLogger)
            .unwrap();
        assert_eq!(results[0], Some(value(11)));
        assert_eq!(results[1], Some(value(22)));
        assert_eq!(results[2], None, "unwritten key reads as absent");
    }

    #[test]
    fn values_survive_flush_and_many_evictions() {
        let mut oram = new_oram(200, ExecOptions::default());
        let writes: Vec<(Key, Value)> = (0..64).map(|k| (k, value(k * 7))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();

        // Drive many accesses (and therefore evictions) and re-check.
        for round in 0..6 {
            let reads: Vec<Option<Key>> = (0..64).map(Some).collect();
            let results = oram.read_batch(&reads, &NoopPathLogger).unwrap();
            for (k, result) in results.iter().enumerate() {
                assert_eq!(
                    result.as_ref(),
                    Some(&value(k as u64 * 7)),
                    "round {round} key {k}"
                );
            }
            oram.flush_writes(&NoopPathLogger).unwrap();
        }
        assert!(oram.stats().evictions > 0);
    }

    #[test]
    fn overwrites_return_latest_value() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(5, value(1))], &NoopPathLogger).unwrap();
        oram.write_batch(&[(5, value(2))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(2)));
        oram.write_batch(&[(5, value(3))], &NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(3)));
    }

    #[test]
    fn dummy_requests_read_full_paths_but_return_nothing() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(1))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let before = oram.stats().physical_reads;
        let results = oram.read_batch(&[None, None], &NoopPathLogger).unwrap();
        assert_eq!(results, vec![None, None]);
        let after = oram.stats().physical_reads;
        assert!(
            after > before,
            "padding requests must still touch storage ({before} -> {after})"
        );
    }

    #[test]
    fn sequential_mode_matches_parallel_results() {
        let mut seq = new_oram(100, ExecOptions::sequential());
        let mut par = new_oram(100, ExecOptions::parallel(4));
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 100))).collect();
        seq.write_batch(&writes, &NoopPathLogger).unwrap();
        par.write_batch(&writes, &NoopPathLogger).unwrap();
        par.flush_writes(&NoopPathLogger).unwrap();
        for k in 0..32 {
            let a = seq.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            let b = par.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(a, b, "key {k}");
        }
    }

    #[test]
    fn access_api_reads_and_writes() {
        let mut oram = new_oram(100, ExecOptions::sequential());
        assert_eq!(oram.access(9, None).unwrap(), None);
        assert_eq!(oram.access(9, Some(value(5))).unwrap(), None);
        assert_eq!(oram.access(9, None).unwrap(), Some(value(5)));
        let old = oram.access(9, Some(value(6))).unwrap();
        assert_eq!(old, Some(value(5)));
        assert_eq!(oram.access(9, None).unwrap(), Some(value(6)));
    }

    #[test]
    fn unencrypted_mode_roundtrips() {
        let mut oram = new_oram(100, ExecOptions::default().without_crypto());
        oram.write_batch(&[(3, value(33))], &NoopPathLogger)
            .unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(3)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(33)));
    }

    #[test]
    fn deferred_mode_buffers_until_flush() {
        let mut oram = new_oram(200, ExecOptions::parallel(2));
        // Enough accesses to trigger at least one eviction.
        let writes: Vec<(Key, Value)> = (0..20).map(|k| (k, value(k))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        assert!(oram.stats().evictions > 0);
        assert!(oram.buffered_buckets() > 0, "evictions should be buffered");
        let writes_before = oram.stats().physical_writes;
        assert_eq!(writes_before, 0, "no physical writes before flush");
        oram.flush_writes(&NoopPathLogger).unwrap();
        assert!(oram.stats().physical_writes > 0);
        assert_eq!(oram.buffered_buckets(), 0);
    }

    #[test]
    fn immediate_mode_never_buffers() {
        let mut oram = new_oram(200, ExecOptions::sequential());
        let writes: Vec<(Key, Value)> = (0..20).map(|k| (k, value(k))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        assert_eq!(oram.buffered_buckets(), 0);
        assert!(oram.stats().physical_writes > 0);
    }

    #[test]
    fn stash_stays_bounded_under_load() {
        let mut oram = new_oram(256, ExecOptions::default());
        let mut rng = DetRng::new(5);
        for round in 0..20 {
            let writes: Vec<(Key, Value)> = (0..16)
                .map(|_| {
                    let k = rng.below(256);
                    (k, value(k))
                })
                .collect();
            oram.write_batch(&writes, &NoopPathLogger).unwrap();
            let reads: Vec<Option<Key>> = (0..16).map(|_| Some(rng.below(256))).collect();
            oram.read_batch(&reads, &NoopPathLogger).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            assert!(
                oram.stash_len() <= oram.config().max_stash,
                "round {round}: stash {} exceeds bound {}",
                oram.stash_len(),
                oram.config().max_stash
            );
        }
    }

    #[test]
    fn path_logger_sees_all_physical_reads() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct CountingLogger {
            count: Mutex<usize>,
        }
        impl PathLogger for CountingLogger {
            fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
                *self.count.lock() += reads.len();
                Ok(())
            }
        }

        let mut oram = new_oram(100, ExecOptions::default());
        let logger = CountingLogger::default();
        oram.write_batch(&[(1, value(1)), (2, value(2))], &logger)
            .unwrap();
        oram.read_batch(&[Some(1), Some(2)], &logger).unwrap();
        let logged = *logger.count.lock();
        let issued = oram.stats().physical_reads as usize;
        assert_eq!(logged, issued, "every physical read must be logged first");
    }

    #[test]
    fn slot_read_list_roundtrip() {
        let reads = vec![
            SlotRead {
                bucket: 1,
                slot: 2,
                version: 3,
            },
            SlotRead {
                bucket: 100,
                slot: 0,
                version: 7,
            },
        ];
        let decoded = SlotRead::decode_list(&SlotRead::encode_list(&reads)).unwrap();
        assert_eq!(decoded, reads);
        assert!(SlotRead::decode_list(&[1, 2, 3]).is_err());
    }

    #[test]
    fn checkpoint_and_restore_preserve_data() {
        let mut oram = new_oram(128, ExecOptions::default());
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 7))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();

        let checkpoint = oram.checkpoint_full().unwrap();
        let store = oram.store().clone();
        let keys = KeyMaterial::for_tests(1);
        drop(oram);

        let meta = OramMeta::decode_full(&checkpoint).unwrap();
        let mut recovered = RingOram::from_meta(meta, &keys, store, ExecOptions::default(), 123);
        for k in 0..32 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(result[0], Some(value(k + 7)), "key {k} after restore");
        }
    }

    #[test]
    fn checkpoint_refuses_to_capture_a_lost_in_flight_block() {
        use obladi_storage::{FaultPlan, FaultyStore};
        // A read batch plans a physical target (the block leaves its bucket
        // metadata), then the fetch fails: the value never reaches the
        // stash.  A checkpoint of that state would lose the key durably —
        // the client must refuse until it is rebuilt.
        let config = OramConfig::small_for_tests(64);
        let keys = KeyMaterial::for_tests(1);
        let faulty = Arc::new(FaultyStore::new(
            Arc::new(InMemoryStore::new()),
            FaultPlan::none(),
            5,
        ));
        let mut oram = RingOram::new(
            config,
            &keys,
            faulty.clone() as Arc<dyn UntrustedStore>,
            ExecOptions::parallel(2),
            31,
        )
        .unwrap();
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        assert!(oram.checkpoint_full().is_ok(), "healthy client checkpoints");

        // Pick a key the evictions placed in the tree (not a stash hit):
        // only a *physical* target can be lost in flight.
        let meta = oram.meta_snapshot();
        let victim = (0..32u64)
            .find(|&k| !meta.stash.contains(k))
            .expect("at least one key must have been evicted into the tree");
        faulty.set_plan(FaultPlan::fail_after(0));
        assert!(
            oram.read_batch(&[Some(victim)], &NoopPathLogger).is_err(),
            "the injected storage outage must surface"
        );
        faulty.set_plan(FaultPlan::none());
        assert!(
            oram.checkpoint_full().is_err(),
            "a checkpoint must not capture the lost in-flight block"
        );
        assert!(
            oram.checkpoint_delta(16).is_err(),
            "delta checkpoints must refuse too"
        );
    }

    #[test]
    fn replay_reads_touches_storage_without_failing() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(1))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let reads = vec![SlotRead {
            bucket: 0,
            slot: 0,
            version: 1,
        }];
        let before = oram.store().stats().slot_reads;
        oram.replay_reads(&reads).unwrap();
        assert!(oram.store().stats().slot_reads > before);
    }
}
