//! The Ring ORAM client and Obladi's batched / parallel executor (§4, §6.3, §7).
//!
//! [`RingOram`] owns all client-side state (position map, per-bucket
//! metadata, stash) and talks to an [`UntrustedStore`].  It exposes the
//! batch-oriented interface the Obladi proxy needs:
//!
//! * [`RingOram::read_batch`] — executes one read batch: a metadata-only
//!   planning pass chooses exactly one slot per non-buffered bucket on each
//!   request's path, the physical reads are issued concurrently on a worker
//!   pool (intra- *and* inter-request parallelism), values are ingested into
//!   the stash, and any evictions that have come due (every `A` accesses)
//!   are performed with their bucket write-backs *deferred* into a local
//!   buffer;
//! * [`RingOram::write_batch`] — applies the epoch's write batch using
//!   dummiless writes (§6.3): new versions go straight to the stash, with no
//!   physical reads, while still advancing the eviction schedule;
//! * [`RingOram::flush_writes`] — seals and writes every buffered bucket
//!   back to storage, once per bucket (write deduplication), which is the
//!   only moment physical writes happen;
//! * [`RingOram::access`] — a sequential single-operation interface used by
//!   the non-batched baseline of Figure 10a.
//!
//! Two deliberate deviations from canonical Ring ORAM, both documented in
//! DESIGN.md, keep the batched implementation tractable without changing the
//! behaviour the evaluation measures: evictions owed in the middle of a
//! batch are performed at the end of that batch (the paper itself defers all
//! physical writes to the epoch boundary), and buckets that have already
//! been logically rewritten during the epoch are served from the local
//! buffer instead of being physically re-read (the paper's "reads are served
//! locally from the buffered buckets", §7).

use crate::block::Block;
use crate::bucket::BucketMeta;
use crate::codec::{Decoder, Encoder};
use crate::metadata::{MetaDelta, OramMeta};
use crate::pool::ThreadPool;
use crate::tree::TreeGeometry;
use obladi_common::config::OramConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Key, Leaf, Value, Version};
use obladi_crypto::{Envelope, KeyMaterial};
use obladi_storage::UntrustedStore;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How the executor runs physical I/O and write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Issue physical reads/writes concurrently on a worker pool.
    pub parallel: bool,
    /// Worker pool size (ignored when `parallel` is false).
    pub threads: usize,
    /// Defer bucket write-back to [`RingOram::flush_writes`] (delayed
    /// visibility).  When false every eviction writes its buckets
    /// immediately, as canonical Ring ORAM does.
    pub deferred_writes: bool,
    /// Seal blocks with ChaCha20 + HMAC.  Disabling isolates the ORAM's
    /// scheduling cost from its crypto cost (the `Parallel` vs
    /// `ParallelCrypto` series of Figure 10a).
    pub encrypt: bool,
    /// Initialise the tree by cloning a single sealed dummy per bucket
    /// instead of sealing every slot individually.  Initialisation is a
    /// one-off, offline step in a real deployment; this flag only shortens
    /// benchmark start-up and never affects steady-state behaviour.
    pub fast_init: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: true,
            threads: 8,
            deferred_writes: true,
            encrypt: true,
            fast_init: false,
        }
    }
}

impl ExecOptions {
    /// Canonical sequential Ring ORAM: no parallelism, immediate writes.
    pub fn sequential() -> Self {
        ExecOptions {
            parallel: false,
            threads: 1,
            deferred_writes: false,
            encrypt: true,
            fast_init: false,
        }
    }

    /// Parallel executor with `threads` workers and deferred writes.
    pub fn parallel(threads: usize) -> Self {
        ExecOptions {
            parallel: true,
            threads,
            deferred_writes: true,
            encrypt: true,
            fast_init: false,
        }
    }

    /// Disables encryption (the `Parallel` series of Figure 10a).
    pub fn without_crypto(mut self) -> Self {
        self.encrypt = false;
        self
    }

    /// Enables fast tree initialisation.
    pub fn with_fast_init(mut self) -> Self {
        self.fast_init = true;
        self
    }

    /// Enables or disables deferred (buffered) bucket write-back.
    pub fn with_deferred_writes(mut self, deferred: bool) -> Self {
        self.deferred_writes = deferred;
        self
    }
}

/// Operation counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Logical read requests processed (including padded dummy requests).
    pub logical_reads: u64,
    /// Logical write requests processed.
    pub logical_writes: u64,
    /// Physical slot reads issued to storage.
    pub physical_reads: u64,
    /// Physical bucket writes issued to storage.
    pub physical_writes: u64,
    /// `evict_path` operations performed.
    pub evictions: u64,
    /// Early reshuffles performed.
    pub early_reshuffles: u64,
    /// Bucket reads served from the epoch-local buffer instead of storage.
    pub buffered_reads: u64,
    /// Largest stash occupancy observed.
    pub stash_peak: u64,
}

/// One physical slot read: which bucket, which physical slot, and the bucket
/// version expected (bound into the envelope MAC for freshness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRead {
    /// Bucket to read from.
    pub bucket: BucketId,
    /// Physical slot index.
    pub slot: u32,
    /// Expected bucket version.
    pub version: Version,
}

impl SlotRead {
    /// Encodes a list of slot reads (for the durability path log).
    pub fn encode_list(reads: &[SlotRead]) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(8 + reads.len() * 20);
        enc.put_u64(reads.len() as u64);
        for r in reads {
            enc.put_u64(r.bucket);
            enc.put_u32(r.slot);
            enc.put_u64(r.version);
        }
        enc.finish()
    }

    /// Decodes a list written by [`SlotRead::encode_list`].
    pub fn decode_list(bytes: &[u8]) -> Result<Vec<SlotRead>> {
        let mut dec = Decoder::new(bytes);
        let count = dec.get_u64()? as usize;
        let mut reads = Vec::with_capacity(count);
        for _ in 0..count {
            reads.push(SlotRead {
                bucket: dec.get_u64()?,
                slot: dec.get_u32()?,
                version: dec.get_u64()?,
            });
        }
        dec.expect_end()?;
        Ok(reads)
    }
}

/// Receives the physical read set of a batch *before* it executes, so the
/// proxy can durably log it (§8: recovery replays the logged paths).
pub trait PathLogger: Send + Sync {
    /// Called with every physical read about to be issued.
    fn log_reads(&self, reads: &[SlotRead]) -> Result<()>;
}

/// A [`PathLogger`] that does nothing (durability disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPathLogger;

impl PathLogger for NoopPathLogger {
    fn log_reads(&self, _reads: &[SlotRead]) -> Result<()> {
        Ok(())
    }
}

/// Where an access will obtain its target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetSource {
    /// The block arrives in the physical read at this index.
    Physical(usize),
    /// The block is already in the stash.
    Stash,
    /// The block sits in an epoch-buffered bucket.
    Buffered(BucketId),
    /// The key does not exist (or the request is a padding dummy).
    Absent,
}

/// Per-request plan produced by the metadata pass.
#[derive(Debug, Clone)]
struct OpPlan {
    key: Option<Key>,
    new_leaf: Leaf,
    exists: bool,
    target: TargetSource,
}

/// The Ring ORAM client plus Obladi's batched executor.
pub struct RingOram {
    config: OramConfig,
    geometry: TreeGeometry,
    store: Arc<dyn UntrustedStore>,
    envelope: Envelope,
    options: ExecOptions,
    pool: ThreadPool,
    meta: OramMeta,
    /// Buckets logically rewritten this epoch, awaiting flush: real blocks
    /// placed in each (metadata lives in `meta.buckets`).
    buffer: HashMap<BucketId, Vec<Block>>,
    /// Buckets that ran out of valid dummy slots and need an early
    /// reshuffle before they can be accessed again.
    needs_reshuffle: HashSet<BucketId>,
    rng: DetRng,
    stats: OramStats,
}

impl RingOram {
    /// Creates a client over `store`, initialising the tree on storage if it
    /// has never been written.
    pub fn new(
        config: OramConfig,
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        options: ExecOptions,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        let mut rng = DetRng::new(seed ^ 0x0ead_cafe);
        let meta = OramMeta::new(config, &mut rng);
        let mut oram = RingOram {
            config,
            geometry: TreeGeometry::new(&config),
            store,
            envelope: Envelope::new(keys),
            pool: ThreadPool::new(if options.parallel { options.threads } else { 1 }),
            options,
            meta,
            buffer: HashMap::new(),
            needs_reshuffle: HashSet::new(),
            rng,
            stats: OramStats::default(),
        };
        oram.init_tree()?;
        Ok(oram)
    }

    /// Restores a client from previously checkpointed metadata without
    /// re-initialising storage (used by crash recovery).
    pub fn from_meta(
        meta: OramMeta,
        keys: &KeyMaterial,
        store: Arc<dyn UntrustedStore>,
        options: ExecOptions,
        seed: u64,
    ) -> Self {
        let config = meta.config;
        RingOram {
            config,
            geometry: TreeGeometry::new(&config),
            store,
            envelope: Envelope::new(keys),
            pool: ThreadPool::new(if options.parallel { options.threads } else { 1 }),
            options,
            meta,
            buffer: HashMap::new(),
            needs_reshuffle: HashSet::new(),
            rng: DetRng::new(seed ^ 0x5eed_0bad),
            stats: OramStats::default(),
        }
    }

    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    /// Operation counters.
    pub fn stats(&self) -> OramStats {
        let mut stats = self.stats;
        stats.stash_peak = self.meta.stash.peak() as u64;
        stats
    }

    /// Resets the operation counters (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = OramStats::default();
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.meta.stash.len()
    }

    /// Number of buckets currently buffered locally (awaiting flush).
    pub fn buffered_buckets(&self) -> usize {
        self.buffer.len()
    }

    /// Access to the underlying store (for stats in benches).
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.store
    }

    /// Borrows the client metadata (tests and durability).
    pub fn meta(&self) -> &OramMeta {
        &self.meta
    }

    /// Produces a delta checkpoint of the client metadata.
    pub fn checkpoint_delta(&mut self, max_position_delta: usize) -> MetaDelta {
        self.meta.take_delta(max_position_delta)
    }

    /// Produces a full checkpoint of the client metadata.
    pub fn checkpoint_full(&self) -> Vec<u8> {
        self.meta.encode_full()
    }

    // ------------------------------------------------------------------
    // Initialisation
    // ------------------------------------------------------------------

    fn init_tree(&mut self) -> Result<()> {
        // The tree is written unconditionally: a freshly constructed client
        // has fresh permutations and an empty position map, so any blocks a
        // previous client left on this store are unreadable garbage to it.
        // Re-initialising keeps the client metadata and the storage contents
        // consistent (a recovering proxy that wants to *keep* storage
        // contents uses `from_meta` with checkpointed metadata instead).
        let slots_per_bucket = self.config.slots_per_bucket() as usize;
        let capacity = Block::padded_capacity(self.config.block_size);
        let encrypt = self.options.encrypt;
        let envelope = self.envelope.clone();
        let fast = self.options.fast_init;

        let buckets: Vec<BucketId> = self.geometry.all_buckets().collect();
        let store = self.store.clone();
        let results: Vec<Result<(BucketId, Version)>> = self.pool.map(buckets, move |bucket| {
            let slots: Vec<bytes::Bytes> = if fast {
                let sealed =
                    seal_block(&envelope, encrypt, bucket, 0, 1, &Block::dummy(), capacity)?;
                vec![sealed; slots_per_bucket]
            } else {
                let mut slots = Vec::with_capacity(slots_per_bucket);
                for slot in 0..slots_per_bucket {
                    slots.push(seal_block(
                        &envelope,
                        encrypt,
                        bucket,
                        slot as u32,
                        1,
                        &Block::dummy(),
                        capacity,
                    )?);
                }
                slots
            };
            let version = store.write_bucket(bucket, slots)?;
            Ok((bucket, version))
        });
        for result in results {
            let (bucket, version) = result?;
            self.meta.buckets[bucket as usize].version = version;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Batched interface used by the Obladi proxy
    // ------------------------------------------------------------------

    /// Executes one read batch.  `requests[i] == None` denotes a padding
    /// (dummy) request that reads a uniformly random path.
    pub fn read_batch(
        &mut self,
        requests: &[Option<Key>],
        logger: &dyn PathLogger,
    ) -> Result<Vec<Option<Value>>> {
        // Phase 1: metadata pass — choose slots, collect physical reads.
        let mut physical: Vec<SlotRead> = Vec::new();
        let mut plans: Vec<OpPlan> = Vec::with_capacity(requests.len());
        for request in requests {
            let plan = self.plan_access(*request, &mut physical)?;
            plans.push(plan);
        }

        // Phase 2: log then issue the physical reads.
        logger.log_reads(&physical)?;
        let targets: HashSet<usize> = plans
            .iter()
            .filter_map(|p| match p.target {
                TargetSource::Physical(idx) => Some(idx),
                _ => None,
            })
            .collect();
        let raw = self.fetch_slots(&physical, &targets)?;

        // Phase 3: ingest values and move target blocks to the stash.
        let mut results = Vec::with_capacity(requests.len());
        for plan in &plans {
            results.push(self.ingest_access(plan, &raw)?);
        }

        // Phase 4: run any evictions / reshuffles that have come due.
        self.run_pending_maintenance(logger)?;
        if !self.options.deferred_writes {
            self.flush_writes(logger)?;
        }
        Ok(results)
    }

    /// Applies a write batch using dummiless writes (§6.3): the new version
    /// of each object goes directly to the stash; no physical reads are
    /// issued, but the eviction schedule still advances.
    pub fn write_batch(&mut self, writes: &[(Key, Value)], logger: &dyn PathLogger) -> Result<()> {
        self.write_batch_padded(writes, writes.len(), logger)
    }

    /// Like [`RingOram::write_batch`], but pads the batch to `padded_to`
    /// logical writes so the eviction schedule (which advances once per `A`
    /// logical accesses) is independent of how many real writes the epoch
    /// produced — the workload-independence requirement of §6.2.
    pub fn write_batch_padded(
        &mut self,
        writes: &[(Key, Value)],
        padded_to: usize,
        logger: &dyn PathLogger,
    ) -> Result<()> {
        // Validate every value first so a single oversized value cannot
        // leave the batch half-applied.
        for (key, value) in writes {
            if value.len() > self.config.block_size {
                return Err(ObladiError::Codec(format!(
                    "value for key {key} of {} bytes exceeds block size {}",
                    value.len(),
                    self.config.block_size
                )));
            }
        }
        for (key, value) in writes {
            self.dummiless_write(*key, value.clone())?;
            // Interleave evictions with large write batches so the stash
            // stays within its canonical Ring ORAM bound even when the
            // write batch is larger than `A`.
            if self.meta.access_count.is_multiple_of(self.config.a as u64) {
                self.run_pending_maintenance(logger)?;
            }
        }
        // Padded (dummy) writes contribute to the access count only.
        let padding = padded_to.saturating_sub(writes.len()) as u64;
        self.meta.access_count += padding;
        self.stats.logical_writes += padding;
        self.run_pending_maintenance(logger)?;
        if !self.options.deferred_writes {
            self.flush_writes(logger)?;
        }
        Ok(())
    }

    /// Seals and writes every buffered bucket back to storage (one write per
    /// bucket — the last version wins) and clears the buffer.
    pub fn flush_writes(&mut self, _logger: &dyn PathLogger) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let capacity = Block::padded_capacity(self.config.block_size);
        let encrypt = self.options.encrypt;
        let envelope = self.envelope.clone();
        let store = self.store.clone();

        let mut jobs: Vec<(BucketId, BucketMeta, Vec<Block>)> =
            Vec::with_capacity(self.buffer.len());
        for (bucket, blocks) in self.buffer.drain() {
            jobs.push((bucket, self.meta.buckets[bucket as usize].clone(), blocks));
        }
        jobs.sort_by_key(|(b, _, _)| *b);

        let results: Vec<Result<(BucketId, Version)>> =
            self.pool.map(jobs, move |(bucket, meta, blocks)| {
                let slots =
                    build_bucket_slots(&envelope, encrypt, bucket, &meta, &blocks, capacity)?;
                let version = store.write_bucket(bucket, slots)?;
                Ok((bucket, version))
            });
        for result in results {
            let (bucket, version) = result?;
            self.meta.buckets[bucket as usize].version = version;
            self.meta.mark_bucket_dirty(bucket);
            self.stats.physical_writes += 1;
        }
        Ok(())
    }

    /// Convenience sequential interface: a single read or write, with
    /// maintenance and write-back applied immediately.  Used by the
    /// sequential Ring ORAM baseline of Figure 10a.
    pub fn access(&mut self, key: Key, value: Option<Value>) -> Result<Option<Value>> {
        match value {
            Some(v) => {
                // A canonical Ring ORAM write performs a full path access;
                // we reproduce that here (the batched proxy path uses
                // dummiless writes instead).
                let previous = self.read_batch(&[Some(key)], &NoopPathLogger)?;
                self.write_batch(&[(key, v)], &NoopPathLogger)?;
                if !self.options.deferred_writes {
                    self.flush_writes(&NoopPathLogger)?;
                }
                Ok(previous.into_iter().next().flatten())
            }
            None => Ok(self
                .read_batch(&[Some(key)], &NoopPathLogger)?
                .into_iter()
                .next()
                .flatten()),
        }
    }

    // ------------------------------------------------------------------
    // Recovery support
    // ------------------------------------------------------------------

    /// Re-issues a previously logged set of physical reads, discarding the
    /// results.  Recovery replays the read paths of the aborted epoch so the
    /// adversary observes a deterministic pattern (§8).
    pub fn replay_reads(&mut self, reads: &[SlotRead]) -> Result<()> {
        // Results (and MAC failures) are deliberately ignored: the buckets
        // may have moved on since the log was written; only the access
        // pattern matters.
        let store = self.store.clone();
        let _ = self.pool.map(reads.to_vec(), move |read| {
            let _ = store.read_slot(read.bucket, read.slot);
        });
        self.stats.physical_reads += reads.len() as u64;
        Ok(())
    }

    /// Reverts every bucket on storage to the version recorded in the client
    /// metadata (shadow paging, §8).  Used by recovery to discard bucket
    /// writes from an epoch that did not commit.
    pub fn revert_storage_to_meta(&self) -> Result<()> {
        for bucket in self.geometry.all_buckets() {
            let expected = self.meta.buckets[bucket as usize].version;
            let current = self.store.bucket_version(bucket)?;
            if current != expected {
                self.store.revert_bucket(bucket, expected)?;
            }
        }
        Ok(())
    }

    /// Discards all epoch-local buffered state (aborting the epoch).
    pub fn discard_buffered(&mut self) {
        self.buffer.clear();
    }

    // ------------------------------------------------------------------
    // Planning & ingestion
    // ------------------------------------------------------------------

    fn plan_access(
        &mut self,
        request: Option<Key>,
        physical: &mut Vec<SlotRead>,
    ) -> Result<OpPlan> {
        self.stats.logical_reads += 1;
        self.meta.access_count += 1;

        let num_leaves = self.geometry.num_leaves();
        let (key, exists, old_leaf) = match request {
            Some(key) => match self.meta.position.get(key) {
                Some(leaf) => (Some(key), true, leaf),
                None => (Some(key), false, self.rng.below(num_leaves)),
            },
            None => (None, false, self.rng.below(num_leaves)),
        };
        let new_leaf = self.rng.below(num_leaves);

        // Remap immediately; the block itself moves to the stash at ingest.
        if exists {
            if let Some(k) = key {
                self.meta.position.set(k, new_leaf);
                self.meta.stash.remap(k, new_leaf);
            }
        }

        let mut target = if exists {
            if self.meta.stash.contains(key.expect("exists implies key")) {
                TargetSource::Stash
            } else {
                TargetSource::Absent // refined below if found in the tree
            }
        } else {
            TargetSource::Absent
        };

        for &bucket in &self.geometry.path(old_leaf) {
            let is_buffered = self.buffer.contains_key(&bucket);
            let meta = &mut self.meta.buckets[bucket as usize];
            let key_slot = match (key, exists) {
                (Some(k), true) => meta.find_key(k),
                _ => None,
            };

            if is_buffered {
                // Served locally from the buffered bucket; no physical read.
                self.stats.buffered_reads += 1;
                if key_slot.is_some() && matches!(target, TargetSource::Absent) {
                    target = TargetSource::Buffered(bucket);
                }
                continue;
            }

            if let Some(logical) = key_slot {
                if matches!(target, TargetSource::Absent) {
                    let slot = meta.mark_read(logical);
                    meta.clear_real(logical);
                    let version = meta.version;
                    self.meta.mark_bucket_dirty(bucket);
                    physical.push(SlotRead {
                        bucket,
                        slot,
                        version,
                    });
                    target = TargetSource::Physical(physical.len() - 1);
                    if self.meta.buckets[bucket as usize].needs_early_reshuffle() {
                        self.needs_reshuffle.insert(bucket);
                    }
                    continue;
                }
            }

            // Dummy read from this bucket.
            match meta.pick_valid_dummy(&mut self.rng) {
                Some(logical) => {
                    let slot = meta.mark_read(logical);
                    let version = meta.version;
                    self.meta.mark_bucket_dirty(bucket);
                    physical.push(SlotRead {
                        bucket,
                        slot,
                        version,
                    });
                    if self.meta.buckets[bucket as usize].needs_early_reshuffle() {
                        self.needs_reshuffle.insert(bucket);
                    }
                }
                None => {
                    // The bucket has no valid dummies left; it will be
                    // reshuffled during maintenance.  Skipping the physical
                    // read here is the recovery action canonical Ring ORAM
                    // avoids by reshuffling earlier.
                    self.needs_reshuffle.insert(bucket);
                }
            }
        }

        Ok(OpPlan {
            key,
            new_leaf,
            exists,
            target,
        })
    }

    fn ingest_access(&mut self, plan: &OpPlan, raw: &[Option<Block>]) -> Result<Option<Value>> {
        let key = match plan.key {
            Some(key) if plan.exists => key,
            // Padding request or a read of a key that has never been
            // written: nothing to ingest.
            _ => return Ok(None),
        };

        let value: Option<Value> = match plan.target {
            TargetSource::Physical(idx) => {
                let block = raw
                    .get(idx)
                    .and_then(|b| b.clone())
                    .ok_or_else(|| ObladiError::Internal("missing physical target block".into()))?;
                if block.key != key {
                    return Err(ObladiError::Integrity(format!(
                        "expected block for key {key}, found {}",
                        block.key
                    )));
                }
                Some(block.value)
            }
            TargetSource::Stash => self.meta.stash.get(key).map(|(_, v)| v.clone()),
            TargetSource::Buffered(bucket) => {
                let blocks = self.buffer.get_mut(&bucket).ok_or_else(|| {
                    ObladiError::Internal(format!("buffered bucket {bucket} vanished"))
                })?;
                match blocks.iter().position(|b| b.key == key) {
                    Some(pos) => {
                        let block = blocks.remove(pos);
                        // The block leaves the buffered bucket and moves to
                        // the stash (same as leaving the tree).
                        if let Some(logical) = self.meta.buckets[bucket as usize].find_key(key) {
                            self.meta.buckets[bucket as usize].clear_real(logical);
                            self.meta.mark_bucket_dirty(bucket);
                        }
                        Some(block.value)
                    }
                    None => None,
                }
            }
            TargetSource::Absent => None,
        };

        match value {
            Some(v) => {
                self.meta
                    .stash
                    .insert(key, plan.new_leaf, v.clone(), self.config.max_stash)?;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn dummiless_write(&mut self, key: Key, value: Value) -> Result<()> {
        if value.len() > self.config.block_size {
            return Err(ObladiError::Codec(format!(
                "value of {} bytes exceeds block size {}",
                value.len(),
                self.config.block_size
            )));
        }
        self.stats.logical_writes += 1;
        self.meta.access_count += 1;

        let new_leaf = self.rng.below(self.geometry.num_leaves());
        let old_leaf = self.meta.position.set(key, new_leaf);

        // Remove any stale copy so at most one copy of the key exists.
        if let Some(old_leaf) = old_leaf {
            if self.meta.stash.remove(key).is_none() {
                for &bucket in &self.geometry.path(old_leaf) {
                    let meta = &mut self.meta.buckets[bucket as usize];
                    if let Some(logical) = meta.find_key(key) {
                        meta.clear_real(logical);
                        self.meta.mark_bucket_dirty(bucket);
                        if let Some(blocks) = self.buffer.get_mut(&bucket) {
                            blocks.retain(|b| b.key != key);
                        }
                        break;
                    }
                }
            }
        }

        self.meta
            .stash
            .insert(key, new_leaf, value, self.config.max_stash)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Evictions, early reshuffles and write-back
    // ------------------------------------------------------------------

    fn run_pending_maintenance(&mut self, logger: &dyn PathLogger) -> Result<()> {
        // Evictions owed: one per `A` logical accesses.
        let owed = self.meta.access_count / self.config.a as u64;
        while self.meta.evict_count < owed {
            let target = self.geometry.evict_target(self.meta.evict_count);
            self.evict_path(target, logger)?;
            self.meta.evict_count += 1;
            self.stats.evictions += 1;
        }
        // Early reshuffles for exhausted buckets.
        let pending: Vec<BucketId> = {
            let mut v: Vec<BucketId> = self.needs_reshuffle.drain().collect();
            v.sort_unstable();
            v
        };
        for bucket in pending {
            // A bucket freshly rewritten by an eviction no longer needs it.
            if self.buffer.contains_key(&bucket)
                || !self.meta.buckets[bucket as usize].needs_early_reshuffle()
            {
                continue;
            }
            self.early_reshuffle(bucket, logger)?;
            self.stats.early_reshuffles += 1;
        }
        Ok(())
    }

    fn evict_path(&mut self, target_leaf: Leaf, logger: &dyn PathLogger) -> Result<()> {
        let path = self.geometry.path(target_leaf);

        // ----- Read phase -----
        let mut physical: Vec<SlotRead> = Vec::new();
        let mut expected_real: Vec<usize> = Vec::new();
        for &bucket in &path {
            if let Some(blocks) = self.buffer.remove(&bucket) {
                // The bucket's current contents live locally; pull them back
                // into the stash without physical reads.
                self.stats.buffered_reads += 1;
                for block in blocks {
                    self.ingest_evicted_block(block)?;
                }
                let meta = &mut self.meta.buckets[bucket as usize];
                for logical in 0..meta.z() {
                    meta.clear_real(logical);
                }
                continue;
            }
            let meta = &mut self.meta.buckets[bucket as usize];
            let reals = meta.valid_reals();
            let real_count = reals.len();
            for logical in reals {
                let slot = meta.mark_read(logical);
                let version = meta.version;
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
                expected_real.push(physical.len() - 1);
            }
            // Pad to Z reads with valid dummies, as canonical Ring ORAM does.
            let dummies_needed = (meta.z()).saturating_sub(real_count);
            for _ in 0..dummies_needed {
                match meta.pick_valid_dummy(&mut self.rng) {
                    Some(logical) => {
                        let slot = meta.mark_read(logical);
                        let version = meta.version;
                        physical.push(SlotRead {
                            bucket,
                            slot,
                            version,
                        });
                    }
                    None => break,
                }
            }
            self.meta.mark_bucket_dirty(bucket);
        }

        logger.log_reads(&physical)?;
        let targets: HashSet<usize> = expected_real.iter().copied().collect();
        let raw = self.fetch_slots(&physical, &targets)?;
        for idx in expected_real {
            if let Some(Some(block)) = raw.get(idx).cloned() {
                self.ingest_evicted_block(block)?;
            }
        }

        // ----- Write phase (deepest bucket first) -----
        for &bucket in path.iter().rev() {
            let level = self.geometry.level_of(bucket);
            let geometry = self.geometry;
            let eligible = self
                .meta
                .stash
                .eligible_for(|leaf| geometry.bucket_at(leaf, level) == bucket);
            let chosen: Vec<Key> = eligible.into_iter().take(self.config.z as usize).collect();
            let mut placed: Vec<Block> = Vec::with_capacity(chosen.len());
            for key in chosen {
                if let Some((leaf, value)) = self.meta.stash.remove(key) {
                    placed.push(Block::real(key, leaf, value));
                }
            }
            self.rewrite_bucket(bucket, placed)?;
        }
        Ok(())
    }

    fn early_reshuffle(&mut self, bucket: BucketId, logger: &dyn PathLogger) -> Result<()> {
        // Read the remaining valid real blocks of the bucket.
        let mut physical: Vec<SlotRead> = Vec::new();
        {
            let meta = &mut self.meta.buckets[bucket as usize];
            let reals = meta.valid_reals();
            let real_count = reals.len();
            for logical in reals {
                let slot = meta.mark_read(logical);
                let version = meta.version;
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
            }
            let dummies_needed = meta.z().saturating_sub(real_count);
            for _ in 0..dummies_needed {
                match meta.pick_valid_dummy(&mut self.rng) {
                    Some(logical) => {
                        let slot = meta.mark_read(logical);
                        let version = meta.version;
                        physical.push(SlotRead {
                            bucket,
                            slot,
                            version,
                        });
                    }
                    None => break,
                }
            }
        }
        self.meta.mark_bucket_dirty(bucket);
        logger.log_reads(&physical)?;
        // Every read that corresponds to a real slot is a target.
        let targets: HashSet<usize> = (0..physical.len()).collect();
        let raw = self.fetch_slots(&physical, &targets)?;
        for block in raw.into_iter().flatten() {
            if !block.is_dummy() {
                self.ingest_evicted_block(block)?;
            }
        }

        // Re-place eligible stash blocks into the bucket (this includes the
        // blocks just read, whose paths necessarily pass through it).
        let level = self.geometry.level_of(bucket);
        let geometry = self.geometry;
        let eligible = self
            .meta
            .stash
            .eligible_for(|leaf| geometry.bucket_at(leaf, level) == bucket);
        let chosen: Vec<Key> = eligible.into_iter().take(self.config.z as usize).collect();
        let mut placed = Vec::with_capacity(chosen.len());
        for key in chosen {
            if let Some((leaf, value)) = self.meta.stash.remove(key) {
                placed.push(Block::real(key, leaf, value));
            }
        }
        self.rewrite_bucket(bucket, placed)?;
        Ok(())
    }

    /// Installs fresh metadata for a logically rewritten bucket and either
    /// buffers or immediately writes its contents.
    fn rewrite_bucket(&mut self, bucket: BucketId, blocks: Vec<Block>) -> Result<()> {
        let assignment: Vec<(Key, Leaf)> = blocks.iter().map(|b| (b.key, b.leaf)).collect();
        self.meta.buckets[bucket as usize].rewrite(&assignment, &mut self.rng);
        self.meta.mark_bucket_dirty(bucket);
        self.needs_reshuffle.remove(&bucket);

        if self.options.deferred_writes {
            self.buffer.insert(bucket, blocks);
            return Ok(());
        }

        let capacity = Block::padded_capacity(self.config.block_size);
        let meta = self.meta.buckets[bucket as usize].clone();
        let slots = build_bucket_slots(
            &self.envelope,
            self.options.encrypt,
            bucket,
            &meta,
            &blocks,
            capacity,
        )?;
        let version = self.store.write_bucket(bucket, slots)?;
        self.meta.buckets[bucket as usize].version = version;
        self.stats.physical_writes += 1;
        Ok(())
    }

    /// Puts a block read during eviction back into the stash, discarding it
    /// if it is stale (superseded by a dummiless write in this epoch).
    fn ingest_evicted_block(&mut self, block: Block) -> Result<()> {
        if block.is_dummy() {
            return Ok(());
        }
        if self.meta.stash.contains(block.key) {
            // A newer version already lives in the stash.
            return Ok(());
        }
        match self.meta.position.get(block.key) {
            Some(leaf) if leaf == block.leaf => {
                self.meta.stash.insert(
                    block.key,
                    block.leaf,
                    block.value,
                    self.config.max_stash,
                )?;
                Ok(())
            }
            // Stale copy (remapped since) or deleted key: drop it.
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Physical I/O
    // ------------------------------------------------------------------

    /// Fetches the given slots.  Only indices in `targets` are decrypted;
    /// dummy reads are fetched (for obliviousness) but their payloads are
    /// discarded.
    fn fetch_slots(
        &mut self,
        reads: &[SlotRead],
        targets: &HashSet<usize>,
    ) -> Result<Vec<Option<Block>>> {
        self.stats.physical_reads += reads.len() as u64;
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let envelope = self.envelope.clone();
        let encrypt = self.options.encrypt;
        let store = self.store.clone();
        let jobs: Vec<(usize, SlotRead, bool)> = reads
            .iter()
            .enumerate()
            .map(|(i, r)| (i, *r, targets.contains(&i)))
            .collect();

        let run = move |(idx, read, is_target): (usize, SlotRead, bool)| -> Result<(usize, Option<Block>)> {
            let bytes = store.read_slot(read.bucket, read.slot)?;
            if !is_target {
                return Ok((idx, None));
            }
            let block = open_block(&envelope, encrypt, read, &bytes)?;
            Ok((idx, Some(block)))
        };

        let results: Vec<Result<(usize, Option<Block>)>> = if self.options.parallel {
            self.pool.map(jobs, run)
        } else {
            jobs.into_iter().map(run).collect()
        };

        let mut out: Vec<Option<Block>> = vec![None; reads.len()];
        for result in results {
            let (idx, block) = result?;
            out[idx] = block;
        }
        Ok(out)
    }
}

/// Seals a block for `(bucket, slot)` at `version`.
fn seal_block(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    slot: u32,
    version: Version,
    block: &Block,
    capacity: usize,
) -> Result<bytes::Bytes> {
    let plain = block.encode();
    if encrypt {
        let location = slot_location(bucket, slot);
        let sealed = envelope.seal(location, version, &plain, capacity)?;
        Ok(bytes::Bytes::from(sealed.bytes))
    } else {
        // Unencrypted mode still pads to a fixed size so dummy and real
        // slots remain the same length on storage.
        let mut padded = Vec::with_capacity(capacity + 4);
        padded.extend_from_slice(&(plain.len() as u32).to_le_bytes());
        padded.extend_from_slice(&plain);
        padded.resize(capacity + 4, 0);
        Ok(bytes::Bytes::from(padded))
    }
}

/// Opens a slot payload fetched from storage.
fn open_block(
    envelope: &Envelope,
    encrypt: bool,
    read: SlotRead,
    bytes: &bytes::Bytes,
) -> Result<Block> {
    if encrypt {
        let location = slot_location(read.bucket, read.slot);
        let sealed = obladi_crypto::SealedBlock {
            bytes: bytes.to_vec(),
        };
        let plain = envelope.open(location, read.version, &sealed)?;
        Block::decode(&plain)
    } else {
        if bytes.len() < 4 {
            return Err(ObladiError::Codec("slot payload too short".into()));
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + len {
            return Err(ObladiError::Codec("slot payload truncated".into()));
        }
        Block::decode(&bytes[4..4 + len])
    }
}

/// Builds the full physical slot array of a bucket from its metadata and the
/// real blocks placed in it.
fn build_bucket_slots(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    meta: &BucketMeta,
    blocks: &[Block],
    capacity: usize,
) -> Result<Vec<bytes::Bytes>> {
    let total = meta.perm.len();
    let next_version = meta.version + 1;
    let by_key: HashMap<Key, &Block> = blocks.iter().map(|b| (b.key, b)).collect();
    let dummy = Block::dummy();
    let mut slots: Vec<bytes::Bytes> = vec![bytes::Bytes::new(); total];
    for logical in 0..total {
        let physical = meta.perm[logical] as usize;
        let block: &Block = if logical < meta.z() {
            match &meta.real[logical] {
                Some((key, _)) => by_key.get(key).copied().unwrap_or(&dummy),
                None => &dummy,
            }
        } else {
            &dummy
        };
        slots[physical] = seal_block(
            envelope,
            encrypt,
            bucket,
            physical as u32,
            next_version,
            block,
            capacity,
        )?;
    }
    Ok(slots)
}

/// Location tag binding a sealed slot to its bucket and physical position.
fn slot_location(bucket: BucketId, slot: u32) -> u64 {
    (bucket << 12) | slot as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_storage::InMemoryStore;

    fn new_oram(num_objects: u64, options: ExecOptions) -> RingOram {
        let config = OramConfig::small_for_tests(num_objects);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        RingOram::new(config, &keys, store, options, 99).unwrap()
    }

    fn value(tag: u64) -> Value {
        tag.to_le_bytes().to_vec()
    }

    #[test]
    fn constructing_a_client_reinitialises_a_previously_used_store() {
        // A fresh client has a fresh position map and fresh permutations, so
        // it must rewrite the tree it finds on storage; anything a previous
        // client stored there is gone, and the new client's own writes work.
        let config = OramConfig::small_for_tests(128);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());

        let mut first =
            RingOram::new(config, &keys, store.clone(), ExecOptions::default(), 7).unwrap();
        first
            .write_batch(&[(1, value(111))], &NoopPathLogger)
            .unwrap();
        first.flush_writes(&NoopPathLogger).unwrap();
        drop(first);

        let mut second = RingOram::new(config, &keys, store, ExecOptions::default(), 8).unwrap();
        let results = second.read_batch(&[Some(1)], &NoopPathLogger).unwrap();
        assert_eq!(
            results[0], None,
            "old client's data must not survive re-init"
        );

        // The second client is fully functional: write, flush, evict, read.
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 500))).collect();
        second.write_batch(&writes, &NoopPathLogger).unwrap();
        second.flush_writes(&NoopPathLogger).unwrap();
        for k in 0..32u64 {
            let results = second.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(
                results[0],
                Some(value(k + 500)),
                "key {k} lost after re-init"
            );
            second.flush_writes(&NoopPathLogger).unwrap();
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(11)), (2, value(22))], &NoopPathLogger)
            .unwrap();
        let results = oram
            .read_batch(&[Some(1), Some(2), Some(3)], &NoopPathLogger)
            .unwrap();
        assert_eq!(results[0], Some(value(11)));
        assert_eq!(results[1], Some(value(22)));
        assert_eq!(results[2], None, "unwritten key reads as absent");
    }

    #[test]
    fn values_survive_flush_and_many_evictions() {
        let mut oram = new_oram(200, ExecOptions::default());
        let writes: Vec<(Key, Value)> = (0..64).map(|k| (k, value(k * 7))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();

        // Drive many accesses (and therefore evictions) and re-check.
        for round in 0..6 {
            let reads: Vec<Option<Key>> = (0..64).map(Some).collect();
            let results = oram.read_batch(&reads, &NoopPathLogger).unwrap();
            for (k, result) in results.iter().enumerate() {
                assert_eq!(
                    result.as_ref(),
                    Some(&value(k as u64 * 7)),
                    "round {round} key {k}"
                );
            }
            oram.flush_writes(&NoopPathLogger).unwrap();
        }
        assert!(oram.stats().evictions > 0);
    }

    #[test]
    fn overwrites_return_latest_value() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(5, value(1))], &NoopPathLogger).unwrap();
        oram.write_batch(&[(5, value(2))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(2)));
        oram.write_batch(&[(5, value(3))], &NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(5)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(3)));
    }

    #[test]
    fn dummy_requests_read_full_paths_but_return_nothing() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(1))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let before = oram.stats().physical_reads;
        let results = oram.read_batch(&[None, None], &NoopPathLogger).unwrap();
        assert_eq!(results, vec![None, None]);
        let after = oram.stats().physical_reads;
        assert!(
            after > before,
            "padding requests must still touch storage ({before} -> {after})"
        );
    }

    #[test]
    fn sequential_mode_matches_parallel_results() {
        let mut seq = new_oram(100, ExecOptions::sequential());
        let mut par = new_oram(100, ExecOptions::parallel(4));
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 100))).collect();
        seq.write_batch(&writes, &NoopPathLogger).unwrap();
        par.write_batch(&writes, &NoopPathLogger).unwrap();
        par.flush_writes(&NoopPathLogger).unwrap();
        for k in 0..32 {
            let a = seq.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            let b = par.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(a, b, "key {k}");
        }
    }

    #[test]
    fn access_api_reads_and_writes() {
        let mut oram = new_oram(100, ExecOptions::sequential());
        assert_eq!(oram.access(9, None).unwrap(), None);
        assert_eq!(oram.access(9, Some(value(5))).unwrap(), None);
        assert_eq!(oram.access(9, None).unwrap(), Some(value(5)));
        let old = oram.access(9, Some(value(6))).unwrap();
        assert_eq!(old, Some(value(5)));
        assert_eq!(oram.access(9, None).unwrap(), Some(value(6)));
    }

    #[test]
    fn unencrypted_mode_roundtrips() {
        let mut oram = new_oram(100, ExecOptions::default().without_crypto());
        oram.write_batch(&[(3, value(33))], &NoopPathLogger)
            .unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let results = oram.read_batch(&[Some(3)], &NoopPathLogger).unwrap();
        assert_eq!(results[0], Some(value(33)));
    }

    #[test]
    fn deferred_mode_buffers_until_flush() {
        let mut oram = new_oram(200, ExecOptions::parallel(2));
        // Enough accesses to trigger at least one eviction.
        let writes: Vec<(Key, Value)> = (0..20).map(|k| (k, value(k))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        assert!(oram.stats().evictions > 0);
        assert!(oram.buffered_buckets() > 0, "evictions should be buffered");
        let writes_before = oram.stats().physical_writes;
        assert_eq!(writes_before, 0, "no physical writes before flush");
        oram.flush_writes(&NoopPathLogger).unwrap();
        assert!(oram.stats().physical_writes > 0);
        assert_eq!(oram.buffered_buckets(), 0);
    }

    #[test]
    fn immediate_mode_never_buffers() {
        let mut oram = new_oram(200, ExecOptions::sequential());
        let writes: Vec<(Key, Value)> = (0..20).map(|k| (k, value(k))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        assert_eq!(oram.buffered_buckets(), 0);
        assert!(oram.stats().physical_writes > 0);
    }

    #[test]
    fn stash_stays_bounded_under_load() {
        let mut oram = new_oram(256, ExecOptions::default());
        let mut rng = DetRng::new(5);
        for round in 0..20 {
            let writes: Vec<(Key, Value)> = (0..16)
                .map(|_| {
                    let k = rng.below(256);
                    (k, value(k))
                })
                .collect();
            oram.write_batch(&writes, &NoopPathLogger).unwrap();
            let reads: Vec<Option<Key>> = (0..16).map(|_| Some(rng.below(256))).collect();
            oram.read_batch(&reads, &NoopPathLogger).unwrap();
            oram.flush_writes(&NoopPathLogger).unwrap();
            assert!(
                oram.stash_len() <= oram.config().max_stash,
                "round {round}: stash {} exceeds bound {}",
                oram.stash_len(),
                oram.config().max_stash
            );
        }
    }

    #[test]
    fn path_logger_sees_all_physical_reads() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct CountingLogger {
            count: Mutex<usize>,
        }
        impl PathLogger for CountingLogger {
            fn log_reads(&self, reads: &[SlotRead]) -> Result<()> {
                *self.count.lock() += reads.len();
                Ok(())
            }
        }

        let mut oram = new_oram(100, ExecOptions::default());
        let logger = CountingLogger::default();
        oram.write_batch(&[(1, value(1)), (2, value(2))], &logger)
            .unwrap();
        oram.read_batch(&[Some(1), Some(2)], &logger).unwrap();
        let logged = *logger.count.lock();
        let issued = oram.stats().physical_reads as usize;
        assert_eq!(logged, issued, "every physical read must be logged first");
    }

    #[test]
    fn slot_read_list_roundtrip() {
        let reads = vec![
            SlotRead {
                bucket: 1,
                slot: 2,
                version: 3,
            },
            SlotRead {
                bucket: 100,
                slot: 0,
                version: 7,
            },
        ];
        let decoded = SlotRead::decode_list(&SlotRead::encode_list(&reads)).unwrap();
        assert_eq!(decoded, reads);
        assert!(SlotRead::decode_list(&[1, 2, 3]).is_err());
    }

    #[test]
    fn checkpoint_and_restore_preserve_data() {
        let mut oram = new_oram(128, ExecOptions::default());
        let writes: Vec<(Key, Value)> = (0..32).map(|k| (k, value(k + 7))).collect();
        oram.write_batch(&writes, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();

        let checkpoint = oram.checkpoint_full();
        let store = oram.store().clone();
        let keys = KeyMaterial::for_tests(1);
        drop(oram);

        let meta = OramMeta::decode_full(&checkpoint).unwrap();
        let mut recovered = RingOram::from_meta(meta, &keys, store, ExecOptions::default(), 123);
        for k in 0..32 {
            let result = recovered.read_batch(&[Some(k)], &NoopPathLogger).unwrap();
            assert_eq!(result[0], Some(value(k + 7)), "key {k} after restore");
        }
    }

    #[test]
    fn replay_reads_touches_storage_without_failing() {
        let mut oram = new_oram(100, ExecOptions::default());
        oram.write_batch(&[(1, value(1))], &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
        let reads = vec![SlotRead {
            bucket: 0,
            slot: 0,
            version: 1,
        }];
        let before = oram.store().stats().slot_reads;
        oram.replay_reads(&reads).unwrap();
        assert!(oram.store().stats().slot_reads > before);
    }
}
