//! The split ORAM client: a concurrent read plane and a write-back engine.
//!
//! The original `RingOram` was one `&mut self` state machine, so a proxy
//! that wanted epoch `N+1`'s read batches to overlap epoch `N`'s write-back
//! could not have it: both serialized on the one client lock, and the
//! write-back's physical round-trips (the expensive part, especially over a
//! remote `obladi-stored` daemon) blocked every read planned behind them.
//!
//! This module splits the client into two cooperating halves that share the
//! versioned client state ([`OramMeta`], the buffered-bucket overlay, the
//! eviction schedule) behind one *fine-grained* lock:
//!
//! * [`OramReader`] — the **read plane**.  It serves `read_batch` by
//!   planning slot selections against the current metadata + buffered-bucket
//!   overlay (cheap, in-memory, under the lock), issuing the physical reads
//!   with the lock *released*, and ingesting the fetched blocks afterwards.
//!   It never rewrites a bucket and never writes storage.
//! * [`WritebackEngine`] — the **write-back engine**.  It owns dummiless
//!   `write_batch`es, the eviction/early-reshuffle schedule, `flush_writes`
//!   (the only moment bucket writes reach storage) and checkpoint
//!   production.  Its physical reads and writes also run outside the lock.
//!
//! Because every metadata mutation happens under the shared lock while all
//! physical I/O happens outside it, a reader batch and an engine write-back
//! genuinely overlap in time.  Three small protocols keep the interleavings
//! safe:
//!
//! * **Limbo keys.**  When the engine plans an eviction it marks the real
//!   blocks it is about to pull out of the tree as *in limbo*: they are
//!   physically in flight towards the stash and findable nowhere.  A reader
//!   batch that requests a limbo key parks on the shared condvar until the
//!   engine's ingest lands (at which point the key is in the stash and the
//!   read resolves locally).
//! * **The write fence.**  Before the engine issues the physical writes of
//!   a flush (or takes a checkpoint), it raises a fence, waits for in-flight
//!   reader fetches to drain, and drops the fence *before* the writes go
//!   out.  A fetch planned before a bucket entered the buffered overlay
//!   could otherwise race that bucket's write and fail freshness
//!   verification; a fetch planned after the fence is safe by construction —
//!   buckets still awaiting their write are served from the overlay (no
//!   physical read), and a bucket leaves the overlay only *after* its write
//!   landed and its version advanced, atomically under the lock.
//! * **Plan-time resolution.**  Reads whose target lives in the stash or in
//!   a buffered bucket capture the value at plan time, under the lock, so
//!   no concurrent eviction can whisk the block away between plan and
//!   ingest.
//!
//! The two halves are driven by at most one thread each (the proxy's epoch
//! executor and epoch decider); the protocols above assume no more.  The
//! caller must also keep concurrently written and read key sets disjoint —
//! the Obladi proxy guarantees this with its carry-pending set (a read of a
//! key the deciding epoch wrote parks until the decision publishes).
//!
//! [`RingOram`](crate::client::RingOram) remains as a thin facade composing
//! the two halves for sequential callers (baselines, recovery, tests); its
//! behaviour — including RNG consumption order, and therefore the physical
//! access sequence — is unchanged from the monolithic client.

use crate::block::Block;
use crate::bucket::BucketMeta;
use crate::client::{ExecOptions, OramStats, PathLogger, SlotRead};
use crate::metadata::{MetaDelta, OramMeta};
use crate::pool::ThreadPool;
use crate::tree::TreeGeometry;
use obladi_common::config::OramConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Key, Leaf, Value, Version};
use obladi_crypto::{Envelope, KeyMaterial};
use obladi_storage::UntrustedStore;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Produces the encrypted-checkpoint payloads durability logs at the end of
/// every epoch.  Implemented by the monolithic facade and by the write-back
/// engine (which quiesces the read plane first, so a checkpoint can never
/// capture a block that is physically in flight and findable nowhere).
///
/// Both methods fail when the read plane is *poisoned*: a read batch with
/// physical target blocks failed between plan and ingest, so a block that
/// was cleared from its bucket never reached the stash and the live
/// metadata no longer accounts for it.  Persisting that state would lose a
/// committed key durably; refusing makes the epoch fail instead, and the
/// proxy's fate-sharing crash + recovery rebuilds a clean client from the
/// last durable checkpoint.
pub trait CheckpointSource {
    /// Serialises the complete client state (full checkpoint).
    fn checkpoint_full(&self) -> Result<Vec<u8>>;
    /// Produces a delta checkpoint and clears the dirty sets.
    fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta>;
}

/// All shared mutable client state, behind the one fine-grained lock.
struct SharedState {
    meta: OramMeta,
    /// Buckets logically rewritten this epoch, awaiting flush: real blocks
    /// placed in each (metadata lives in `meta.buckets`).
    buffer: HashMap<BucketId, Vec<Block>>,
    /// Buckets that ran out of valid dummy slots and need an early
    /// reshuffle before they can be accessed again.
    needs_reshuffle: HashSet<BucketId>,
    rng: DetRng,
    stats: OramStats,
    /// Keys whose blocks the engine is physically pulling towards the stash
    /// (mid-eviction / mid-reshuffle).  Readers wait for them.
    limbo: HashSet<Key>,
    /// Reader fetch operations in flight (planned, not yet ingested).
    reader_fetches: usize,
    /// While raised, no new reader fetch may begin (flush / checkpoint
    /// quiescence — see the module docs).
    write_fence: bool,
    /// Set when an operation failed after destructive metadata mutation:
    /// a read batch with physical targets failed between plan and ingest
    /// (or mid-plan, after an earlier request in the batch cleared its
    /// target), or an eviction / early reshuffle failed after pulling real
    /// blocks out of their buckets.  In every case a live value may no
    /// longer be accounted for anywhere in the metadata.  Checkpoints
    /// refuse to persist this state (see [`CheckpointSource`]) and every
    /// other operation fail-stops too (see [`check_poisoned`] — the *other*
    /// plane's thread must not keep planning against the corrupted
    /// metadata); only rebuilding the client — the proxy's crash + recovery
    /// path — clears it.
    poisoned: bool,
}

struct SharedOram {
    state: Mutex<SharedState>,
    cond: Condvar,
}

/// The immutable half of the client every handle shares.
#[derive(Clone)]
struct OramCore {
    config: OramConfig,
    geometry: TreeGeometry,
    store: Arc<dyn UntrustedStore>,
    envelope: Envelope,
    options: ExecOptions,
    shared: Arc<SharedOram>,
}

/// Where a planned access resolves its value.
enum Target {
    /// The block arrives in the physical read at this index.
    Physical(usize),
    /// Resolved at plan time (stash hit, buffered-bucket hit, or absent /
    /// padding) — no value will arrive from storage.
    Ready(Option<Value>),
}

/// Per-request plan produced by the metadata pass.
struct OpPlan {
    key: Option<Key>,
    new_leaf: Leaf,
    target: Target,
}

/// Builds a fresh split client and initialises the tree on storage.
pub(crate) fn new_split(
    config: OramConfig,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    seed: u64,
) -> Result<(OramReader, WritebackEngine)> {
    config.validate()?;
    let mut rng = DetRng::new(seed ^ 0x0ead_cafe);
    let meta = OramMeta::new(config, &mut rng);
    let (reader, engine) = from_parts(meta, keys, store, options, rng);
    engine.init_tree()?;
    Ok((reader, engine))
}

/// Restores a split client from checkpointed metadata (crash recovery).
pub(crate) fn from_meta_split(
    meta: OramMeta,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    seed: u64,
) -> (OramReader, WritebackEngine) {
    from_parts(meta, keys, store, options, DetRng::new(seed ^ 0x5eed_0bad))
}

fn from_parts(
    meta: OramMeta,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    rng: DetRng,
) -> (OramReader, WritebackEngine) {
    let config = meta.config;
    let core = OramCore {
        config,
        geometry: TreeGeometry::new(&config),
        store,
        envelope: Envelope::new(keys),
        options,
        shared: Arc::new(SharedOram {
            state: Mutex::new(SharedState {
                meta,
                buffer: HashMap::new(),
                needs_reshuffle: HashSet::new(),
                rng,
                stats: OramStats::default(),
                limbo: HashSet::new(),
                reader_fetches: 0,
                write_fence: false,
                poisoned: false,
            }),
            cond: Condvar::new(),
        }),
    };
    // One worker pool, shared: the sequential facade drives the two halves
    // from a single thread, so a second pool would just double the idle OS
    // threads of every client (recovery, baselines, tests).  The pipelined
    // proxy, whose halves genuinely run concurrently, gives the engine its
    // own pool at `RingOram::split` time so flush I/O and read fetches
    // never queue behind each other.
    let pool = Arc::new(ThreadPool::new(pool_size(&options)));
    let reader = OramReader {
        core: core.clone(),
        pool: pool.clone(),
    };
    let engine = WritebackEngine { core, pool };
    (reader, engine)
}

// ----------------------------------------------------------------------
// Shared helpers (sealing, opening, fetching)
// ----------------------------------------------------------------------

/// Seals a block for `(bucket, slot)` at `version`.
pub(crate) fn seal_block(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    slot: u32,
    version: Version,
    block: &Block,
    capacity: usize,
) -> Result<bytes::Bytes> {
    let plain = block.encode();
    if encrypt {
        let location = slot_location(bucket, slot);
        let sealed = envelope.seal(location, version, &plain, capacity)?;
        Ok(bytes::Bytes::from(sealed.bytes))
    } else {
        // Unencrypted mode still pads to a fixed size so dummy and real
        // slots remain the same length on storage.
        let mut padded = Vec::with_capacity(capacity + 4);
        padded.extend_from_slice(&(plain.len() as u32).to_le_bytes());
        padded.extend_from_slice(&plain);
        padded.resize(capacity + 4, 0);
        Ok(bytes::Bytes::from(padded))
    }
}

/// Opens a slot payload fetched from storage.
fn open_block(
    envelope: &Envelope,
    encrypt: bool,
    read: SlotRead,
    bytes: &bytes::Bytes,
) -> Result<Block> {
    if encrypt {
        let location = slot_location(read.bucket, read.slot);
        let sealed = obladi_crypto::SealedBlock {
            bytes: bytes.to_vec(),
        };
        let plain = envelope.open(location, read.version, &sealed)?;
        Block::decode(&plain)
    } else {
        if bytes.len() < 4 {
            return Err(ObladiError::Codec("slot payload too short".into()));
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + len {
            return Err(ObladiError::Codec("slot payload truncated".into()));
        }
        Block::decode(&bytes[4..4 + len])
    }
}

/// Builds the full physical slot array of a bucket from its metadata and the
/// real blocks placed in it.
fn build_bucket_slots(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    meta: &BucketMeta,
    blocks: &[Block],
    capacity: usize,
) -> Result<Vec<bytes::Bytes>> {
    let total = meta.perm.len();
    let next_version = meta.version + 1;
    let by_key: HashMap<Key, &Block> = blocks.iter().map(|b| (b.key, b)).collect();
    let dummy = Block::dummy();
    let mut slots: Vec<bytes::Bytes> = vec![bytes::Bytes::new(); total];
    for logical in 0..total {
        let physical = meta.perm[logical] as usize;
        let block: &Block = if logical < meta.z() {
            match &meta.real[logical] {
                Some((key, _)) => by_key.get(key).copied().unwrap_or(&dummy),
                None => &dummy,
            }
        } else {
            &dummy
        };
        slots[physical] = seal_block(
            envelope,
            encrypt,
            bucket,
            physical as u32,
            next_version,
            block,
            capacity,
        )?;
    }
    Ok(slots)
}

/// Location tag binding a sealed slot to its bucket and physical position.
fn slot_location(bucket: BucketId, slot: u32) -> u64 {
    (bucket << 12) | slot as u64
}

impl OramCore {
    /// Fetches the given slots with no lock held.  Only indices in
    /// `targets` are decrypted; dummy reads are fetched (for obliviousness)
    /// but their payloads are discarded.  The caller accounts
    /// `stats.physical_reads`.
    fn fetch_slots(
        &self,
        pool: &ThreadPool,
        reads: &[SlotRead],
        targets: &HashSet<usize>,
    ) -> Result<Vec<Option<Block>>> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let envelope = self.envelope.clone();
        let encrypt = self.options.encrypt;
        let store = self.store.clone();
        let jobs: Vec<(usize, SlotRead, bool)> = reads
            .iter()
            .enumerate()
            .map(|(i, r)| (i, *r, targets.contains(&i)))
            .collect();

        let run = move |(idx, read, is_target): (usize, SlotRead, bool)| -> Result<(usize, Option<Block>)> {
            let bytes = store.read_slot(read.bucket, read.slot)?;
            if !is_target {
                return Ok((idx, None));
            }
            let block = open_block(&envelope, encrypt, read, &bytes)?;
            Ok((idx, Some(block)))
        };

        let results: Vec<Result<(usize, Option<Block>)>> = if self.options.parallel {
            pool.map(jobs, run)
        } else {
            jobs.into_iter().map(run).collect()
        };

        let mut out: Vec<Option<Block>> = vec![None; reads.len()];
        for result in results {
            let (idx, block) = result?;
            out[idx] = block;
        }
        Ok(out)
    }

    /// Common accessors used by both halves and the facade.
    fn stats(&self) -> OramStats {
        let state = self.shared.state.lock();
        let mut stats = state.stats;
        stats.stash_peak = state.meta.stash.peak() as u64;
        stats
    }

    fn reset_stats(&self) {
        self.shared.state.lock().stats = OramStats::default();
    }

    fn stash_len(&self) -> usize {
        self.shared.state.lock().meta.stash.len()
    }

    fn buffered_buckets(&self) -> usize {
        self.shared.state.lock().buffer.len()
    }
}

// ----------------------------------------------------------------------
// The read plane
// ----------------------------------------------------------------------

/// Worker-pool size for the given options.
fn pool_size(options: &ExecOptions) -> usize {
    if options.parallel {
        options.threads
    } else {
        1
    }
}

/// The concurrent read plane of the split client (see the module docs).
pub struct OramReader {
    core: OramCore,
    pool: Arc<ThreadPool>,
}

impl OramReader {
    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        &self.core.config
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.core.geometry
    }

    /// Operation counters (shared with the engine).
    pub fn stats(&self) -> OramStats {
        self.core.stats()
    }

    /// Resets the shared operation counters.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.core.stash_len()
    }

    /// Access to the underlying store (stats in benches).
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.core.store
    }

    /// Executes one read batch.  `requests[i] == None` denotes a padding
    /// (dummy) request that reads a uniformly random path.
    ///
    /// The metadata pass runs under the shared lock; the physical reads run
    /// with it released, so an engine write-back in flight on another thread
    /// overlaps them in time.
    pub fn read_batch(
        &mut self,
        requests: &[Option<Key>],
        logger: &dyn PathLogger,
    ) -> Result<Vec<Option<Value>>> {
        // Phase 1 (locked): wait out limbo keys and the write fence, then
        // plan every request — slot choices, position remaps and plan-time
        // value capture are atomic with respect to the engine.
        let (plans, physical) = {
            let park_started = std::time::Instant::now();
            let mut state = self.core.shared.state.lock();
            loop {
                // Re-checked after every wakeup: a concurrent engine
                // failure may poison the client while this batch is parked,
                // and planning against the corrupted metadata could
                // double-read consumed slots (see [`check_poisoned`]).
                check_poisoned(&state)?;
                let blocked = state.write_fence
                    || requests
                        .iter()
                        .filter_map(|r| *r)
                        .any(|k| state.limbo.contains(&k));
                if !blocked {
                    break;
                }
                self.core.shared.cond.wait(&mut state);
            }
            obladi_obs::global()
                .histogram("oram.split.limbo_park_us")
                .record_duration(park_started.elapsed());
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut plans: Vec<OpPlan> = Vec::with_capacity(requests.len());
            for request in requests {
                match plan_access(&self.core, &mut state, *request, &mut physical) {
                    Ok(plan) => plans.push(plan),
                    Err(err) => {
                        // Planning failed mid-batch (a buffered-hit stash
                        // insert overflowed).  The failing request loses
                        // nothing — the stash retains the block beyond its
                        // bound — but any *earlier* plan that chose a
                        // physical target has already cleared its block
                        // from the bucket metadata, and the fetch that
                        // would carry it to the stash will never be issued
                        // (the batch aborts before `reader_fetches` is even
                        // registered).  Poison the client so a concurrent
                        // engine checkpoint cannot persist the loss durably
                        // (see [`CheckpointSource`]).
                        if plans
                            .iter()
                            .any(|p| matches!(p.target, Target::Physical(_)))
                        {
                            state.poisoned = true;
                        }
                        return Err(err);
                    }
                }
            }
            state.stats.physical_reads += physical.len() as u64;
            // Register the fetch *before* releasing the lock so the engine's
            // fence drain cannot miss it.
            state.reader_fetches += 1;
            (plans, physical)
        };

        // Phase 2 (unlocked): log, then issue the physical reads.
        let targets: HashSet<usize> = plans
            .iter()
            .filter_map(|p| match p.target {
                Target::Physical(idx) => Some(idx),
                _ => None,
            })
            .collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        // Phase 3 (locked): deregister the fetch on *every* path — the
        // engine's fence drain must never wait on a fetch that has already
        // failed — then ingest the target blocks into the stash.
        let mut state = self.core.shared.state.lock();
        state.reader_fetches -= 1;
        self.core.shared.cond.notify_all();
        let result = (|state: &mut SharedState| -> Result<Vec<Option<Value>>> {
            let mut raw = fetched?;
            let mut results = Vec::with_capacity(requests.len());
            for plan in plans {
                match plan.target {
                    Target::Ready(value) => results.push(value),
                    Target::Physical(idx) => {
                        let key = plan.key.expect("physical targets carry a key");
                        // Each physical index is targeted by exactly one
                        // plan, so the block can be moved out, not cloned.
                        let block = raw.get_mut(idx).and_then(|b| b.take()).ok_or_else(|| {
                            ObladiError::Internal("missing physical target block".into())
                        })?;
                        if block.key != key {
                            return Err(ObladiError::Integrity(format!(
                                "expected block for key {key}, found {}",
                                block.key
                            )));
                        }
                        // A concurrent dummiless write of the key would have
                        // left a newer version in the stash; never clobber it
                        // (the proxy's carry set rules this out, but the
                        // guard costs nothing and keeps the invariant local).
                        if !state.meta.stash.contains(key) {
                            state.meta.stash.insert(
                                key,
                                plan.new_leaf,
                                block.value.clone(),
                                self.core.config.max_stash,
                            )?;
                        }
                        results.push(Some(block.value));
                    }
                }
            }
            Ok(results)
        })(&mut state);
        if result.is_err() && !targets.is_empty() {
            // A physical target block was cleared from its bucket at plan
            // time and never reached the stash: the live metadata no longer
            // accounts for it.  Poison the client so a concurrent engine
            // checkpoint cannot persist the loss durably before the
            // caller's fate-sharing crash lands (see [`CheckpointSource`]).
            state.poisoned = true;
        }
        result
    }
}

/// Plans one access under the shared lock: remaps the key, chooses exactly
/// one slot per non-buffered bucket on the path, and resolves stash /
/// buffered targets to their values immediately.
fn plan_access(
    core: &OramCore,
    state: &mut SharedState,
    request: Option<Key>,
    physical: &mut Vec<SlotRead>,
) -> Result<OpPlan> {
    state.stats.logical_reads += 1;
    state.meta.access_count += 1;

    let num_leaves = core.geometry.num_leaves();
    let (key, exists, old_leaf) = match request {
        Some(key) => match state.meta.position.get(key) {
            Some(leaf) => (Some(key), true, leaf),
            None => (Some(key), false, state.rng.below(num_leaves)),
        },
        None => (None, false, state.rng.below(num_leaves)),
    };
    let new_leaf = state.rng.below(num_leaves);

    // Remap immediately; the block itself moves to the stash at ingest (or
    // right here, for stash / buffered targets).
    if exists {
        if let Some(k) = key {
            state.meta.position.set(k, new_leaf);
            state.meta.stash.remap(k, new_leaf);
        }
    }

    let mut target = if exists {
        let k = key.expect("exists implies key");
        if state.meta.stash.contains(k) {
            Target::Ready(state.meta.stash.get(k).map(|(_, v)| v.clone()))
        } else {
            Target::Ready(None) // refined below if found in the tree
        }
    } else {
        Target::Ready(None)
    };
    let mut resolved = matches!(target, Target::Ready(Some(_)));

    for &bucket in &core.geometry.path(old_leaf) {
        let is_buffered = state.buffer.contains_key(&bucket);
        let meta = &mut state.meta.buckets[bucket as usize];
        let key_slot = match (key, exists) {
            (Some(k), true) => meta.find_key(k),
            _ => None,
        };

        if is_buffered {
            // Served locally from the buffered bucket; no physical read.
            state.stats.buffered_reads += 1;
            if let Some(logical) = key_slot {
                if !resolved {
                    // Extract the block *now*, under the lock: it leaves the
                    // buffered bucket and moves to the stash, exactly as if
                    // it had left the tree.
                    let k = key.expect("key_slot implies key");
                    state.meta.buckets[bucket as usize].clear_real(logical);
                    state.meta.mark_bucket_dirty(bucket);
                    let value = state.buffer.get_mut(&bucket).and_then(|blocks| {
                        blocks
                            .iter()
                            .position(|b| b.key == k)
                            .map(|pos| blocks.remove(pos).value)
                    });
                    if let Some(value) = value {
                        state.meta.stash.insert(
                            k,
                            new_leaf,
                            value.clone(),
                            core.config.max_stash,
                        )?;
                        target = Target::Ready(Some(value));
                    }
                    resolved = true;
                }
            }
            continue;
        }

        if let Some(logical) = key_slot {
            if !resolved {
                let slot = meta.mark_read(logical);
                meta.clear_real(logical);
                let version = meta.version;
                state.meta.mark_bucket_dirty(bucket);
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
                target = Target::Physical(physical.len() - 1);
                resolved = true;
                if state.meta.buckets[bucket as usize].needs_early_reshuffle() {
                    state.needs_reshuffle.insert(bucket);
                }
                continue;
            }
        }

        // Dummy read from this bucket.
        match state.meta.buckets[bucket as usize].pick_valid_dummy(&mut state.rng) {
            Some(logical) => {
                let meta = &mut state.meta.buckets[bucket as usize];
                let slot = meta.mark_read(logical);
                let version = meta.version;
                state.meta.mark_bucket_dirty(bucket);
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
                if state.meta.buckets[bucket as usize].needs_early_reshuffle() {
                    state.needs_reshuffle.insert(bucket);
                }
            }
            None => {
                // The bucket has no valid dummies left; it will be
                // reshuffled during the engine's next maintenance pass.
                // Skipping the physical read here is the recovery action
                // canonical Ring ORAM avoids by reshuffling earlier.
                state.needs_reshuffle.insert(bucket);
            }
        }
    }

    Ok(OpPlan {
        key,
        new_leaf,
        target,
    })
}

// ----------------------------------------------------------------------
// The write-back engine
// ----------------------------------------------------------------------

/// The background write-back engine of the split client (see the module
/// docs): dummiless writes, evictions, early reshuffles, flush, checkpoint
/// production and recovery support.
pub struct WritebackEngine {
    core: OramCore,
    pool: Arc<ThreadPool>,
}

impl WritebackEngine {
    /// Replaces the shared worker pool with a private one, so a caller
    /// driving the two halves from separate threads (the pipelined proxy)
    /// never queues its flush I/O behind the read plane's fetches.
    pub(crate) fn use_private_pool(&mut self) {
        self.pool = Arc::new(ThreadPool::new(pool_size(&self.core.options)));
    }

    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        &self.core.config
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.core.geometry
    }

    /// Operation counters (shared with the reader).
    pub fn stats(&self) -> OramStats {
        self.core.stats()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.core.stash_len()
    }

    /// Number of buckets currently buffered locally (awaiting flush).
    pub fn buffered_buckets(&self) -> usize {
        self.core.buffered_buckets()
    }

    /// Access to the underlying store.
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.core.store
    }

    /// A snapshot of the client metadata (tests and diagnostics).
    pub fn meta_snapshot(&self) -> OramMeta {
        self.core.shared.state.lock().meta.clone()
    }

    // ------------------------------------------------------------------
    // Initialisation
    // ------------------------------------------------------------------

    fn init_tree(&self) -> Result<()> {
        // The tree is written unconditionally: a freshly constructed client
        // has fresh permutations and an empty position map, so any blocks a
        // previous client left on this store are unreadable garbage to it.
        let slots_per_bucket = self.core.config.slots_per_bucket() as usize;
        let capacity = Block::padded_capacity(self.core.config.block_size);
        let encrypt = self.core.options.encrypt;
        let envelope = self.core.envelope.clone();
        let fast = self.core.options.fast_init;

        let buckets: Vec<BucketId> = self.core.geometry.all_buckets().collect();
        let store = self.core.store.clone();
        let results: Vec<Result<(BucketId, Version)>> = self.pool.map(buckets, move |bucket| {
            let slots: Vec<bytes::Bytes> = if fast {
                let sealed =
                    seal_block(&envelope, encrypt, bucket, 0, 1, &Block::dummy(), capacity)?;
                vec![sealed; slots_per_bucket]
            } else {
                let mut slots = Vec::with_capacity(slots_per_bucket);
                for slot in 0..slots_per_bucket {
                    slots.push(seal_block(
                        &envelope,
                        encrypt,
                        bucket,
                        slot as u32,
                        1,
                        &Block::dummy(),
                        capacity,
                    )?);
                }
                slots
            };
            let version = store.write_bucket(bucket, slots)?;
            Ok((bucket, version))
        });
        let mut state = self.core.shared.state.lock();
        for result in results {
            let (bucket, version) = result?;
            state.meta.buckets[bucket as usize].version = version;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Applies a write batch using dummiless writes (§6.3): the new version
    /// of each object goes directly to the stash; no physical reads are
    /// issued, but the eviction schedule still advances.
    pub fn write_batch(&mut self, writes: &[(Key, Value)], logger: &dyn PathLogger) -> Result<()> {
        self.write_batch_padded(writes, writes.len(), logger)
    }

    /// Like [`WritebackEngine::write_batch`], but pads the batch to
    /// `padded_to` logical writes so the eviction schedule is independent of
    /// how many real writes the epoch produced (§6.2).
    pub fn write_batch_padded(
        &mut self,
        writes: &[(Key, Value)],
        padded_to: usize,
        logger: &dyn PathLogger,
    ) -> Result<()> {
        // Validate every value first so a single oversized value cannot
        // leave the batch half-applied.
        for (key, value) in writes {
            if value.len() > self.core.config.block_size {
                return Err(ObladiError::Codec(format!(
                    "value for key {key} of {} bytes exceeds block size {}",
                    value.len(),
                    self.core.config.block_size
                )));
            }
        }
        let a = self.core.config.a as u64;
        for (key, value) in writes {
            let run_maintenance = {
                let mut state = self.core.shared.state.lock();
                check_poisoned(&state)?;
                dummiless_write(&self.core, &mut state, *key, value.clone())?;
                // Interleave evictions with large write batches so the
                // stash stays within its canonical Ring ORAM bound even
                // when the write batch is larger than `A`.
                state.meta.access_count.is_multiple_of(a)
            };
            if run_maintenance {
                self.run_pending_maintenance(logger)?;
            }
        }
        {
            // Padded (dummy) writes contribute to the access count only.
            let mut state = self.core.shared.state.lock();
            let padding = padded_to.saturating_sub(writes.len()) as u64;
            state.meta.access_count += padding;
            state.stats.logical_writes += padding;
        }
        self.run_pending_maintenance(logger)?;
        if !self.core.options.deferred_writes {
            self.flush_writes(logger)?;
        }
        Ok(())
    }

    /// Seals and writes every buffered bucket back to storage (one write per
    /// bucket — the last version wins) and clears the buffer.
    ///
    /// Issues the physical writes with the shared lock released; the write
    /// fence drains in-flight reader fetches first, and buckets leave the
    /// buffered overlay only after their write has landed, so concurrent
    /// reader batches stay consistent throughout (see the module docs).
    pub fn flush_writes(&mut self, _logger: &dyn PathLogger) -> Result<()> {
        let jobs: Vec<(BucketId, BucketMeta, Vec<Block>)> = {
            let mut state = self.core.shared.state.lock();
            check_poisoned(&state)?;
            if state.buffer.is_empty() {
                return Ok(());
            }
            self.drain_reader_fetches(&mut state);
            let mut jobs: Vec<(BucketId, BucketMeta, Vec<Block>)> = state
                .buffer
                .iter()
                .map(|(bucket, blocks)| {
                    (
                        *bucket,
                        state.meta.buckets[*bucket as usize].clone(),
                        blocks.clone(),
                    )
                })
                .collect();
            jobs.sort_by_key(|(b, _, _)| *b);
            jobs
        };

        let capacity = Block::padded_capacity(self.core.config.block_size);
        let encrypt = self.core.options.encrypt;
        let envelope = self.core.envelope.clone();
        let store = self.core.store.clone();
        let results: Vec<Result<(BucketId, Version)>> =
            self.pool.map(jobs, move |(bucket, meta, blocks)| {
                let slots =
                    build_bucket_slots(&envelope, encrypt, bucket, &meta, &blocks, capacity)?;
                let version = store.write_bucket(bucket, slots)?;
                Ok((bucket, version))
            });

        let mut state = self.core.shared.state.lock();
        for result in results {
            let (bucket, version) = result?;
            state.meta.buckets[bucket as usize].version = version;
            state.meta.mark_bucket_dirty(bucket);
            state.buffer.remove(&bucket);
            state.stats.physical_writes += 1;
        }
        self.core.shared.cond.notify_all();
        Ok(())
    }

    /// Raises the write fence and waits until no reader fetch is in flight,
    /// then drops the fence.  Fetches planned after this point are safe
    /// against the caller's imminent bucket writes (buffered buckets are
    /// served from the overlay until their write lands) or checkpoint (no
    /// block is mid-air).
    fn drain_reader_fetches(&self, state: &mut parking_lot::MutexGuard<'_, SharedState>) {
        let drain_started = std::time::Instant::now();
        state.write_fence = true;
        while state.reader_fetches > 0 {
            self.core.shared.cond.wait(state);
        }
        state.write_fence = false;
        self.core.shared.cond.notify_all();
        obladi_obs::global()
            .histogram("oram.split.fence_drain_us")
            .record_duration(drain_started.elapsed());
    }

    // ------------------------------------------------------------------
    // Evictions, early reshuffles
    // ------------------------------------------------------------------

    /// Runs every eviction and early reshuffle that has come due.  The
    /// proxy's decider drives this once per epoch (right before the flush);
    /// the facade drives it at the monolithic client's points (after every
    /// read batch and interleaved with large write batches).
    pub fn run_pending_maintenance(&mut self, logger: &dyn PathLogger) -> Result<()> {
        loop {
            // Evictions owed: one per `A` logical accesses.
            let next_target = {
                let state = self.core.shared.state.lock();
                check_poisoned(&state)?;
                let owed = state.meta.access_count / self.core.config.a as u64;
                if state.meta.evict_count < owed {
                    Some(self.core.geometry.evict_target(state.meta.evict_count))
                } else {
                    None
                }
            };
            match next_target {
                Some(target) => {
                    self.evict_path(target, logger)?;
                    let mut state = self.core.shared.state.lock();
                    state.meta.evict_count += 1;
                    state.stats.evictions += 1;
                }
                None => break,
            }
        }
        // Early reshuffles for exhausted buckets.
        let pending: Vec<BucketId> = {
            let mut state = self.core.shared.state.lock();
            let mut v: Vec<BucketId> = state.needs_reshuffle.drain().collect();
            v.sort_unstable();
            v
        };
        for bucket in pending {
            // A bucket freshly rewritten by an eviction no longer needs it.
            let skip = {
                let state = self.core.shared.state.lock();
                state.buffer.contains_key(&bucket)
                    || !state.meta.buckets[bucket as usize].needs_early_reshuffle()
            };
            if skip {
                continue;
            }
            self.early_reshuffle(bucket, logger)?;
            let mut state = self.core.shared.state.lock();
            state.stats.early_reshuffles += 1;
        }
        Ok(())
    }

    fn evict_path(&mut self, target_leaf: Leaf, logger: &dyn PathLogger) -> Result<()> {
        let path = self.core.geometry.path(target_leaf);

        // ----- Read phase (planned under the lock) -----
        let (physical, expected_real, limbo_keys) = {
            let mut state = self.core.shared.state.lock();
            let state = &mut *state;
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut expected_real: Vec<usize> = Vec::new();
            let mut limbo_keys: Vec<Key> = Vec::new();
            for &bucket in &path {
                if let Some(blocks) = state.buffer.remove(&bucket) {
                    // The bucket's current contents live locally; pull them
                    // back into the stash without physical reads.
                    state.stats.buffered_reads += 1;
                    for block in blocks {
                        if let Err(err) = ingest_evicted_block(&self.core, state, block) {
                            // The bucket's blocks just left the buffered
                            // overlay and the ingest failed part-way; the
                            // live metadata can no longer be trusted to
                            // account for every value, so checkpoints must
                            // refuse it (see [`CheckpointSource`]).
                            state.poisoned = true;
                            return Err(err);
                        }
                    }
                    let meta = &mut state.meta.buckets[bucket as usize];
                    for logical in 0..meta.z() {
                        meta.clear_real(logical);
                    }
                    continue;
                }
                let reals = plan_bucket_reads(state, bucket, &mut physical, &mut limbo_keys);
                expected_real.extend(reals);
            }
            // The real blocks are now physically in flight towards the
            // stash and findable nowhere; readers must wait for them.
            for key in &limbo_keys {
                state.limbo.insert(*key);
            }
            state.stats.physical_reads += physical.len() as u64;
            (physical, expected_real, limbo_keys)
        };

        // ----- Physical reads (lock released) -----
        let targets: HashSet<usize> = expected_real.iter().copied().collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        // ----- Ingest + write phase (one critical section, so no reader
        // ever observes the gap between a block entering the stash and its
        // bucket being rewritten) -----
        let mut state = self.core.shared.state.lock();
        for key in &limbo_keys {
            state.limbo.remove(key);
        }
        self.core.shared.cond.notify_all();
        let result = (|state: &mut SharedState| -> Result<()> {
            let mut raw = fetched?;
            for idx in expected_real {
                // Each index is visited once; move the block out, no clone.
                if let Some(block) = raw.get_mut(idx).and_then(|b| b.take()) {
                    ingest_evicted_block(&self.core, state, block)?;
                }
            }

            // Write phase (deepest bucket first).
            for &bucket in path.iter().rev() {
                place_eligible_blocks(&self.core, state, bucket)?;
            }
            Ok(())
        })(&mut state);
        if result.is_err() {
            // Real blocks were pulled out of their buckets (their limbo
            // entries are gone and their slots consumed) or out of the
            // stash for a rewrite that never landed.  Poison so that
            // checkpoints refuse this state outright — the refusal must
            // hold on its own and not depend on the caller aborting before
            // its next checkpoint (an implicit thread-topology invariant).
            state.poisoned = true;
        }
        result
    }

    fn early_reshuffle(&mut self, bucket: BucketId, logger: &dyn PathLogger) -> Result<()> {
        // Read the remaining valid real blocks of the bucket.
        let (physical, limbo_keys) = {
            let mut state = self.core.shared.state.lock();
            let state = &mut *state;
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut limbo_keys: Vec<Key> = Vec::new();
            plan_bucket_reads(state, bucket, &mut physical, &mut limbo_keys);
            for key in &limbo_keys {
                state.limbo.insert(*key);
            }
            state.stats.physical_reads += physical.len() as u64;
            (physical, limbo_keys)
        };

        // Every read that corresponds to a real slot is a target.
        let targets: HashSet<usize> = (0..physical.len()).collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        let mut state = self.core.shared.state.lock();
        for key in &limbo_keys {
            state.limbo.remove(key);
        }
        self.core.shared.cond.notify_all();
        let result = (|state: &mut SharedState| -> Result<()> {
            let raw = fetched?;
            for block in raw.into_iter().flatten() {
                if !block.is_dummy() {
                    ingest_evicted_block(&self.core, state, block)?;
                }
            }

            // Re-place eligible stash blocks into the bucket (this includes
            // the blocks just read, whose paths necessarily pass through
            // it).
            place_eligible_blocks(&self.core, state, bucket)?;
            Ok(())
        })(&mut state);
        if result.is_err() {
            // Same reasoning as [`WritebackEngine::evict_path`]: real
            // blocks left their bucket (or the stash) without landing
            // anywhere durable-able, so checkpoints must refuse this state
            // regardless of what the caller does next.
            state.poisoned = true;
        }
        result
    }

    // ------------------------------------------------------------------
    // Recovery support
    // ------------------------------------------------------------------

    /// Re-issues a previously logged set of physical reads, discarding the
    /// results (recovery replays the aborted epoch's access pattern, §8).
    pub fn replay_reads(&mut self, reads: &[SlotRead]) -> Result<()> {
        let store = self.core.store.clone();
        let _ = self.pool.map(reads.to_vec(), move |read| {
            let _ = store.read_slot(read.bucket, read.slot);
        });
        self.core.shared.state.lock().stats.physical_reads += reads.len() as u64;
        Ok(())
    }

    /// Reverts every bucket on storage to the version recorded in the client
    /// metadata (shadow paging, §8).
    pub fn revert_storage_to_meta(&self) -> Result<()> {
        let versions: Vec<(BucketId, Version)> = {
            let state = self.core.shared.state.lock();
            self.core
                .geometry
                .all_buckets()
                .map(|bucket| (bucket, state.meta.buckets[bucket as usize].version))
                .collect()
        };
        for (bucket, expected) in versions {
            let current = self.core.store.bucket_version(bucket)?;
            if current != expected {
                self.core.store.revert_bucket(bucket, expected)?;
            }
        }
        Ok(())
    }

    /// Discards all epoch-local buffered state (aborting the epoch).
    pub fn discard_buffered(&mut self) {
        self.core.shared.state.lock().buffer.clear();
    }
}

/// The error every operation on a poisoned client fails with.
fn poisoned_error() -> ObladiError {
    ObladiError::Integrity(
        "ORAM client is poisoned: a failed operation left a live value unaccounted for \
         in the metadata; reads, writes, maintenance and checkpoints are all refused \
         until the client is rebuilt (crash + recovery)"
            .into(),
    )
}

/// Fails if the client is poisoned (see [`SharedState::poisoned`]).  Every
/// operational surface — reads, writes, flush, maintenance, checkpoints —
/// calls this, so the refusal is self-contained: it does not depend on the
/// thread that observed the original failure aborting before another
/// thread touches the corrupted metadata (planning against it could
/// double-read consumed slots or fetch stale layouts).
fn check_poisoned(state: &SharedState) -> Result<()> {
    if state.poisoned {
        return Err(poisoned_error());
    }
    Ok(())
}

impl CheckpointSource for WritebackEngine {
    /// Serialises the complete client state.  Quiesces the read plane
    /// first — a checkpoint taken while a reader fetch is in flight would
    /// capture a block that is findable nowhere (cleared from its bucket,
    /// not yet in the stash) — and refuses if a past fetch *failed* and
    /// left exactly that hole behind permanently (the poison flag; see
    /// [`CheckpointSource`]).
    fn checkpoint_full(&self) -> Result<Vec<u8>> {
        let mut state = self.core.shared.state.lock();
        self.drain_reader_fetches(&mut state);
        check_poisoned(&state)?;
        Ok(state.meta.encode_full())
    }

    fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta> {
        let mut state = self.core.shared.state.lock();
        self.drain_reader_fetches(&mut state);
        check_poisoned(&state)?;
        Ok(state.meta.take_delta(max_position_delta))
    }
}

/// A dummiless write (§6.3) under the shared lock.
fn dummiless_write(core: &OramCore, state: &mut SharedState, key: Key, value: Value) -> Result<()> {
    if value.len() > core.config.block_size {
        return Err(ObladiError::Codec(format!(
            "value of {} bytes exceeds block size {}",
            value.len(),
            core.config.block_size
        )));
    }
    state.stats.logical_writes += 1;
    state.meta.access_count += 1;

    let new_leaf = state.rng.below(core.geometry.num_leaves());
    let old_leaf = state.meta.position.set(key, new_leaf);

    // Remove any stale copy so at most one copy of the key exists.
    if let Some(old_leaf) = old_leaf {
        if state.meta.stash.remove(key).is_none() {
            for &bucket in &core.geometry.path(old_leaf) {
                let meta = &mut state.meta.buckets[bucket as usize];
                if let Some(logical) = meta.find_key(key) {
                    meta.clear_real(logical);
                    state.meta.mark_bucket_dirty(bucket);
                    if let Some(blocks) = state.buffer.get_mut(&bucket) {
                        blocks.retain(|b| b.key != key);
                    }
                    break;
                }
            }
        }
    }

    state
        .meta
        .stash
        .insert(key, new_leaf, value, core.config.max_stash)?;
    Ok(())
}

/// Plans a full-bucket maintenance read (every valid real slot plus dummy
/// padding to `Z` reads, as canonical Ring ORAM does) and marks the bucket
/// dirty.  The reals' keys are appended to `limbo_keys` — the caller
/// registers them so readers wait for the in-flight blocks — and the
/// returned indices locate the real reads within `physical`.  Shared by
/// [`WritebackEngine::evict_path`] and [`WritebackEngine::early_reshuffle`].
fn plan_bucket_reads(
    state: &mut SharedState,
    bucket: BucketId,
    physical: &mut Vec<SlotRead>,
    limbo_keys: &mut Vec<Key>,
) -> Vec<usize> {
    let meta = &mut state.meta.buckets[bucket as usize];
    let reals = meta.valid_reals();
    let real_count = reals.len();
    let mut real_indices = Vec::with_capacity(real_count);
    for logical in reals {
        if let Some((key, _)) = meta.real[logical] {
            limbo_keys.push(key);
        }
        let slot = meta.mark_read(logical);
        let version = meta.version;
        physical.push(SlotRead {
            bucket,
            slot,
            version,
        });
        real_indices.push(physical.len() - 1);
    }
    let dummies_needed = meta.z().saturating_sub(real_count);
    for _ in 0..dummies_needed {
        match meta.pick_valid_dummy(&mut state.rng) {
            Some(logical) => {
                let slot = meta.mark_read(logical);
                let version = meta.version;
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
            }
            None => break,
        }
    }
    state.meta.mark_bucket_dirty(bucket);
    real_indices
}

/// Moves up to `Z` eligible stash blocks into `bucket` and installs the
/// rewritten bucket (buffered or written through, per the exec options).
/// Shared by the eviction write phase and the early-reshuffle re-place.
fn place_eligible_blocks(core: &OramCore, state: &mut SharedState, bucket: BucketId) -> Result<()> {
    let level = core.geometry.level_of(bucket);
    let geometry = core.geometry;
    let eligible = state
        .meta
        .stash
        .eligible_for(|leaf| geometry.bucket_at(leaf, level) == bucket);
    let chosen: Vec<Key> = eligible.into_iter().take(core.config.z as usize).collect();
    let mut placed: Vec<Block> = Vec::with_capacity(chosen.len());
    for key in chosen {
        if let Some((leaf, value)) = state.meta.stash.remove(key) {
            placed.push(Block::real(key, leaf, value));
        }
    }
    rewrite_bucket(core, state, bucket, placed)
}

/// Installs fresh metadata for a logically rewritten bucket and either
/// buffers or immediately writes its contents.  Runs under the shared lock;
/// the immediate-write mode (deferred_writes = false) is only exercised by
/// the sequential facade, which has no concurrent reader to block.
fn rewrite_bucket(
    core: &OramCore,
    state: &mut SharedState,
    bucket: BucketId,
    blocks: Vec<Block>,
) -> Result<()> {
    let assignment: Vec<(Key, Leaf)> = blocks.iter().map(|b| (b.key, b.leaf)).collect();
    state.meta.buckets[bucket as usize].rewrite(&assignment, &mut state.rng);
    state.meta.mark_bucket_dirty(bucket);
    state.needs_reshuffle.remove(&bucket);

    if core.options.deferred_writes {
        state.buffer.insert(bucket, blocks);
        return Ok(());
    }

    let capacity = Block::padded_capacity(core.config.block_size);
    let meta = state.meta.buckets[bucket as usize].clone();
    let slots = build_bucket_slots(
        &core.envelope,
        core.options.encrypt,
        bucket,
        &meta,
        &blocks,
        capacity,
    )?;
    let version = core.store.write_bucket(bucket, slots)?;
    state.meta.buckets[bucket as usize].version = version;
    state.stats.physical_writes += 1;
    Ok(())
}

/// Puts a block read during eviction back into the stash, discarding it if
/// it is stale (superseded by a dummiless write or remapped since).
fn ingest_evicted_block(core: &OramCore, state: &mut SharedState, block: Block) -> Result<()> {
    if block.is_dummy() {
        return Ok(());
    }
    if state.meta.stash.contains(block.key) {
        // A newer version already lives in the stash.
        return Ok(());
    }
    match state.meta.position.get(block.key) {
        Some(leaf) if leaf == block.leaf => {
            state
                .meta
                .stash
                .insert(block.key, block.leaf, block.value, core.config.max_stash)?;
            Ok(())
        }
        // Stale copy (remapped since) or deleted key: drop it.
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NoopPathLogger;
    use obladi_common::config::OramConfig;
    use obladi_storage::InMemoryStore;

    const KEY_A: Key = 7;
    const KEY_B: Key = 9;

    fn open(max_stash: usize) -> (OramReader, WritebackEngine) {
        let config = OramConfig::small_for_tests(64).with_max_stash(max_stash);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let options = ExecOptions {
            parallel: false,
            threads: 1,
            deferred_writes: true,
            encrypt: false,
            fast_init: false,
        };
        new_split(config, &keys, store, options, 1).expect("client must open")
    }

    /// Stages the exact mid-batch failure the poison flag guards against:
    /// `KEY_B` lives in a *buffered* root bucket with the stash already at
    /// its bound, so a read of `KEY_B` must overflow at plan time.  With
    /// `with_physical_target`, `KEY_A` additionally lives in the tree (the
    /// deepest bucket on leaf 0's path), so a batch that plans `KEY_A`
    /// first clears a physical target before `KEY_B`'s plan fails.
    fn stage_plan_overflow(engine: &WritebackEngine, with_physical_target: bool) {
        let geometry = engine.geometry();
        let max = engine.core.config.max_stash;
        let mut guard = engine.core.shared.state.lock();
        let state = &mut *guard;
        if with_physical_target {
            let bucket_a = *geometry.path(0).last().expect("path is never empty");
            state.meta.buckets[bucket_a as usize].rewrite(&[(KEY_A, 0)], &mut state.rng);
            state.meta.position.set(KEY_A, 0);
        }
        let root = geometry.path(1)[0];
        state.meta.buckets[root as usize].rewrite(&[(KEY_B, 1)], &mut state.rng);
        state.meta.position.set(KEY_B, 1);
        state
            .buffer
            .insert(root, vec![Block::real(KEY_B, 1, vec![0xBB])]);
        for i in 0..max {
            state
                .meta
                .stash
                .insert(1_000 + i as Key, 0, Vec::new(), max)
                .expect("filling the stash exactly to its bound cannot overflow");
        }
    }

    #[test]
    fn plan_failure_after_cleared_target_poisons_checkpoints() {
        let (mut reader, mut engine) = open(8);
        stage_plan_overflow(&engine, true);
        // KEY_A plans first and clears its block from the deepest bucket;
        // KEY_B's buffered hit then overflows the stash, aborting the batch
        // before KEY_A's fetch is ever issued.
        let err = reader
            .read_batch(&[Some(KEY_A), Some(KEY_B)], &NoopPathLogger)
            .expect_err("the buffered hit must overflow the stash");
        assert!(
            matches!(err, ObladiError::StashOverflow { .. }),
            "expected a stash overflow, got {err:?}"
        );
        // KEY_A is now cleared from its bucket and present in neither the
        // stash nor any fetch in flight: persisting this state would lose
        // it durably, so both checkpoint forms must refuse.
        let full = engine
            .checkpoint_full()
            .expect_err("checkpoint must refuse");
        assert!(full.to_string().contains("poisoned"), "got {full}");
        let delta = engine
            .checkpoint_delta(8)
            .expect_err("delta checkpoint must refuse");
        assert!(delta.to_string().contains("poisoned"), "got {delta}");
        // The refusal is self-contained: *every* operational surface
        // fail-stops, not just checkpoints — the other plane's thread must
        // not keep planning against the corrupted metadata.
        let read = reader
            .read_batch(&[Some(KEY_A)], &NoopPathLogger)
            .expect_err("reads must refuse a poisoned client");
        assert!(read.to_string().contains("poisoned"), "got {read}");
        let write = engine
            .write_batch(&[(KEY_A, vec![1])], &NoopPathLogger)
            .expect_err("writes must refuse a poisoned client");
        assert!(write.to_string().contains("poisoned"), "got {write}");
        let flush = engine
            .flush_writes(&NoopPathLogger)
            .expect_err("flush must refuse a poisoned client");
        assert!(flush.to_string().contains("poisoned"), "got {flush}");
    }

    #[test]
    fn plan_failure_without_cleared_target_stays_checkpointable() {
        let (mut reader, engine) = open(8);
        stage_plan_overflow(&engine, false);
        let err = reader
            .read_batch(&[Some(KEY_B)], &NoopPathLogger)
            .expect_err("the buffered hit must overflow the stash");
        assert!(
            matches!(err, ObladiError::StashOverflow { .. }),
            "expected a stash overflow, got {err:?}"
        );
        // Nothing was lost: the stash retains the block past its bound, so
        // the client state is consistent (if over-full) and checkpoints may
        // proceed.
        engine
            .checkpoint_full()
            .expect("no physical target was cleared, so the client is not poisoned");
    }
}
