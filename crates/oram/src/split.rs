//! The split ORAM client: a concurrent read plane and a write-back engine.
//!
//! The original `RingOram` was one `&mut self` state machine, so a proxy
//! that wanted epoch `N+1`'s read batches to overlap epoch `N`'s write-back
//! could not have it: both serialized on the one client lock, and the
//! write-back's physical round-trips (the expensive part, especially over a
//! remote `obladi-stored` daemon) blocked every read planned behind them.
//!
//! This module splits the client into two cooperating halves that share the
//! versioned client state ([`OramMeta`], the buffered-bucket overlay, the
//! eviction schedule) behind one *fine-grained* lock:
//!
//! * [`OramReader`] — the **read plane**.  It serves `read_batch` by
//!   planning slot selections against the current metadata + buffered-bucket
//!   overlay (cheap, in-memory, under the lock), issuing the physical reads
//!   with the lock *released*, and ingesting the fetched blocks afterwards.
//!   It never rewrites a bucket and never writes storage.  It is `Clone`:
//!   several threads may drive concurrent read batches against the same
//!   client.
//! * [`WritebackEngine`] — the **write-back engine**.  It owns dummiless
//!   `write_batch`es, the eviction/early-reshuffle schedule, `flush_writes`
//!   (the only moment bucket writes reach storage) and checkpoint
//!   production.  Its physical reads and writes also run outside the lock.
//!
//! Because every metadata mutation happens under the shared lock while all
//! physical I/O happens outside it, reader batches and an engine write-back
//! genuinely overlap in time.  Three protocols keep the interleavings safe:
//!
//! * **Limbo keys.**  When the engine plans an eviction it marks the real
//!   blocks it is about to pull out of the tree as *in limbo*: they are
//!   physically in flight towards the stash and findable nowhere.  A reader
//!   batch that requests a limbo key parks on the shared condvar until the
//!   engine's ingest lands (at which point the key is in the stash and the
//!   read resolves locally).
//! * **Generations + the per-bucket fence.**  Committed client state is
//!   published as an immutable *generation* at the end of every flush (see
//!   the `generations` module): checkpoints and pinned readers materialize
//!   a generation instead of quiescing the read plane, so the old global
//!   write fence — "drain every in-flight reader fetch before flushing or
//!   checkpointing" — is gone.  What remains is a *per-bucket* fence: a
//!   flush waits only for in-flight reader batches holding physical reads
//!   against the specific buckets it is about to write (a fetch planned
//!   before a bucket entered the buffered overlay could otherwise race
//!   that bucket's write and fail freshness verification).  New batches
//!   never plan physical reads against buffered buckets — the overlay
//!   serves them — so unrelated batches keep flowing while a flush drains.
//!   A generation older than the latest is retired the moment its last pin
//!   drops; a reader pinned to generation `G` keeps materializing `G`
//!   byte-for-byte across any number of later publishes.
//! * **Plan-time resolution.**  Reads whose target lives in the stash or in
//!   a buffered bucket capture the value at plan time, under the lock, so
//!   no concurrent eviction can whisk the block away between plan and
//!   ingest.
//!
//! The engine is driven by at most one thread (the proxy's epoch decider);
//! the read plane may be driven by several threads concurrently (the
//! proxy's batch runners).  Plans serialize briefly on the shared lock,
//! physical fetches overlap freely, and every in-flight batch is tracked
//! with the buckets it touches so the flush fence and the generation
//! publish account for it.  The caller must keep concurrently written and
//! read key sets disjoint — and concurrently *read* key sets pairwise
//! disjoint — which the Obladi proxy guarantees with its carry-pending set
//! and per-epoch read de-duplication.
//!
//! [`RingOram`](crate::client::RingOram) remains as a thin facade composing
//! the two halves for sequential callers (baselines, recovery, tests); its
//! behaviour — including RNG consumption order, and therefore the physical
//! access sequence — is unchanged from the monolithic client.

use crate::block::Block;
use crate::bucket::BucketMeta;
use crate::client::{ExecOptions, OramStats, PathLogger, SlotRead};
use crate::generations::GenerationChain;
use crate::metadata::{MetaDelta, OramMeta};
use crate::pool::ThreadPool;
use crate::tree::TreeGeometry;
use obladi_common::config::OramConfig;
use obladi_common::error::{ObladiError, Result};
use obladi_common::rng::DetRng;
use obladi_common::types::{BucketId, Key, Leaf, Value, Version};
use obladi_crypto::{Envelope, KeyMaterial};
use obladi_storage::UntrustedStore;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Test-only leak injection for the obliviousness auditor's mutation
/// check: when set, read batches *skip* the uniform dummy path that every
/// padding request must issue, so the number of physical reads per batch
/// follows real occupancy — the classic fixed-size-batch violation the
/// adversary-view auditor exists to catch.  Never set outside tests and
/// the `fig_trace_audit --mutate` harness.
static LEAK_SKIP_DUMMY_PADS: AtomicBool = AtomicBool::new(false);

/// Arms or disarms the dummy-pad leak (see [`LEAK_SKIP_DUMMY_PADS`]).
/// Process-global on purpose: the harness flips it around a whole
/// workload cell, not per client.
pub fn set_leak_skip_dummy_pads(enabled: bool) {
    LEAK_SKIP_DUMMY_PADS.store(enabled, Ordering::SeqCst);
}

/// Produces the encrypted-checkpoint payloads durability logs at the end of
/// every epoch.  Implemented by the monolithic facade and by the write-back
/// engine (which reads the latest committed *generation*, so a checkpoint
/// can never capture a block that is physically in flight and findable
/// nowhere — in-flight reader targets are patched back into the generation
/// at publish time).
///
/// Both methods fail when the read plane is *poisoned*: a read batch with
/// physical target blocks failed between plan and ingest, so a block that
/// was cleared from its bucket never reached the stash and the live
/// metadata no longer accounts for it.  Persisting that state would lose a
/// committed key durably; refusing makes the epoch fail instead, and the
/// proxy's fate-sharing crash + recovery rebuilds a clean client from the
/// last durable checkpoint.
pub trait CheckpointSource {
    /// Serialises the complete client state (full checkpoint).
    fn checkpoint_full(&self) -> Result<Vec<u8>>;
    /// Produces a delta checkpoint and clears the dirty sets.
    fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta>;
}

/// One reader batch with physical reads in flight (planned, not ingested).
struct InFlightBatch {
    /// The generation the batch pinned at plan time.
    generation: u64,
    /// Every bucket the batch physically reads (targets and dummies); the
    /// flush's per-bucket fence waits on intersections with its buffer.
    buckets: HashSet<BucketId>,
    /// The batch's physical *target* slots: blocks cleared from their
    /// buckets at plan time that are mid-air towards the stash.  A publish
    /// overlapping the batch patches these pre-images back into the
    /// committed generation (see [`publish_generation`]).
    targets: Vec<TargetUndo>,
}

/// Pre-image of one physical target slot, captured at plan time.
struct TargetUndo {
    bucket: BucketId,
    /// Logical real-slot index the block occupied.
    logical: usize,
    key: Key,
    /// The leaf the key was mapped to before the plan remapped it.
    old_leaf: Leaf,
    /// `rewrite_stamps[bucket]` at plan time; a publish refuses to patch
    /// against a bucket rewritten since (never happens in the proxy flow —
    /// see [`publish_generation`]).
    stamp: u64,
}

/// All shared mutable client state, behind the one fine-grained lock.
struct SharedState {
    meta: OramMeta,
    /// Buckets logically rewritten this epoch, awaiting flush: real blocks
    /// placed in each (metadata lives in `meta.buckets`).
    buffer: HashMap<BucketId, Vec<Block>>,
    /// Buckets that ran out of valid dummy slots and need an early
    /// reshuffle before they can be accessed again.
    needs_reshuffle: HashSet<BucketId>,
    rng: DetRng,
    stats: OramStats,
    /// Keys whose blocks the engine is physically pulling towards the stash
    /// (mid-eviction / mid-reshuffle).  Readers wait for them.
    limbo: HashSet<Key>,
    /// Monotonic per-bucket rewrite counters.  A reader batch records the
    /// stamp of every bucket it targets, so a generation publish can tell
    /// whether an in-flight batch's undo still applies to the live layout.
    rewrite_stamps: Vec<u64>,
    /// Reader batches with physical reads in flight, keyed by batch id.
    /// Replaces the old single `reader_fetches` counter: the flush fence
    /// waits per bucket, so several batches overlap inside one epoch.
    in_flight: HashMap<u64, InFlightBatch>,
    next_batch_id: u64,
    /// Retained committed generations (the MVCC chain; see the
    /// `generations` module).
    generations: GenerationChain,
    /// Set when an operation failed after destructive metadata mutation:
    /// a read batch with physical targets failed between plan and ingest
    /// (or mid-plan, after an earlier request in the batch cleared its
    /// target), or an eviction / early reshuffle failed after pulling real
    /// blocks out of their buckets.  In every case a live value may no
    /// longer be accounted for anywhere in the metadata.  Checkpoints
    /// refuse to persist this state (see [`CheckpointSource`]) and every
    /// other operation fail-stops too (see [`check_poisoned`] — the *other*
    /// plane's threads must not keep planning against the corrupted
    /// metadata); only rebuilding the client — the proxy's crash + recovery
    /// path — clears it.
    poisoned: bool,
}

impl SharedState {
    /// Records the pre-image of `key` (its current live position) into
    /// every retained generation that has not seen the key change yet.
    /// Must run before every live position-map mutation.
    fn note_position(&mut self, key: Key) {
        self.generations
            .note_position(key, self.meta.position.get(key));
    }

    /// Records the pre-image of `bucket` (one `Arc` clone of its current
    /// live metadata) into every retained generation that has not seen the
    /// bucket change yet.  Must run before the first mutation of `bucket`
    /// in any operation.
    fn note_bucket(&mut self, bucket: BucketId) {
        self.generations
            .note_bucket(bucket, &self.meta.buckets[bucket as usize]);
    }
}

struct SharedOram {
    state: Mutex<SharedState>,
    cond: Condvar,
}

/// The immutable half of the client every handle shares.
#[derive(Clone)]
struct OramCore {
    config: OramConfig,
    geometry: TreeGeometry,
    store: Arc<dyn UntrustedStore>,
    envelope: Envelope,
    options: ExecOptions,
    shared: Arc<SharedOram>,
}

/// Where a planned access resolves its value.
enum Target {
    /// The block arrives in the physical read at this index.
    Physical(usize),
    /// Resolved at plan time (stash hit, buffered-bucket hit, or absent /
    /// padding) — no value will arrive from storage.
    Ready(Option<Value>),
}

/// Per-request plan produced by the metadata pass.
struct OpPlan {
    key: Option<Key>,
    new_leaf: Leaf,
    target: Target,
}

/// Builds a fresh split client and initialises the tree on storage.
pub(crate) fn new_split(
    config: OramConfig,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    seed: u64,
) -> Result<(OramReader, WritebackEngine)> {
    config.validate()?;
    let mut rng = DetRng::new(seed ^ 0x0ead_cafe);
    let meta = OramMeta::new(config, &mut rng);
    let (reader, engine) = from_parts(meta, keys, store, options, rng);
    engine.init_tree()?;
    Ok((reader, engine))
}

/// Restores a split client from checkpointed metadata (crash recovery).
pub(crate) fn from_meta_split(
    meta: OramMeta,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    seed: u64,
) -> (OramReader, WritebackEngine) {
    from_parts(meta, keys, store, options, DetRng::new(seed ^ 0x5eed_0bad))
}

fn from_parts(
    meta: OramMeta,
    keys: &KeyMaterial,
    store: Arc<dyn UntrustedStore>,
    options: ExecOptions,
    rng: DetRng,
) -> (OramReader, WritebackEngine) {
    let config = meta.config;
    // Seed the generation chain with the construction-time state so pins
    // and checkpoints always have a committed generation to target.
    let mut generations = GenerationChain::new();
    generations.seed(meta.stash.clone(), meta.access_count, meta.evict_count);
    let rewrite_stamps = vec![0u64; meta.buckets.len()];
    let core = OramCore {
        config,
        geometry: TreeGeometry::new(&config),
        store,
        envelope: Envelope::new(keys),
        options,
        shared: Arc::new(SharedOram {
            state: Mutex::new(SharedState {
                meta,
                buffer: HashMap::new(),
                needs_reshuffle: HashSet::new(),
                rng,
                stats: OramStats::default(),
                limbo: HashSet::new(),
                rewrite_stamps,
                in_flight: HashMap::new(),
                next_batch_id: 0,
                generations,
                poisoned: false,
            }),
            cond: Condvar::new(),
        }),
    };
    // One worker pool, shared: the sequential facade drives the two halves
    // from a single thread, so a second pool would just double the idle OS
    // threads of every client (recovery, baselines, tests).  The pipelined
    // proxy, whose halves genuinely run concurrently, gives the engine its
    // own pool at `RingOram::split` time so flush I/O and read fetches
    // never queue behind each other.
    let pool = Arc::new(ThreadPool::new(pool_size(&options)));
    let reader = OramReader {
        core: core.clone(),
        pool: pool.clone(),
    };
    let engine = WritebackEngine { core, pool };
    (reader, engine)
}

// ----------------------------------------------------------------------
// Shared helpers (sealing, opening, fetching)
// ----------------------------------------------------------------------

/// Seals a block for `(bucket, slot)` at `version`.
pub(crate) fn seal_block(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    slot: u32,
    version: Version,
    block: &Block,
    capacity: usize,
) -> Result<bytes::Bytes> {
    let plain = block.encode();
    if encrypt {
        let location = slot_location(bucket, slot);
        let sealed = envelope.seal(location, version, &plain, capacity)?;
        Ok(bytes::Bytes::from(sealed.bytes))
    } else {
        // Unencrypted mode still pads to a fixed size so dummy and real
        // slots remain the same length on storage.
        let mut padded = Vec::with_capacity(capacity + 4);
        padded.extend_from_slice(&(plain.len() as u32).to_le_bytes());
        padded.extend_from_slice(&plain);
        padded.resize(capacity + 4, 0);
        Ok(bytes::Bytes::from(padded))
    }
}

/// Opens a slot payload fetched from storage.
fn open_block(
    envelope: &Envelope,
    encrypt: bool,
    read: SlotRead,
    bytes: &bytes::Bytes,
) -> Result<Block> {
    if encrypt {
        let location = slot_location(read.bucket, read.slot);
        let sealed = obladi_crypto::SealedBlock {
            bytes: bytes.to_vec(),
        };
        let plain = envelope.open(location, read.version, &sealed)?;
        Block::decode(&plain)
    } else {
        if bytes.len() < 4 {
            return Err(ObladiError::Codec("slot payload too short".into()));
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() < 4 + len {
            return Err(ObladiError::Codec("slot payload truncated".into()));
        }
        Block::decode(&bytes[4..4 + len])
    }
}

/// Builds the full physical slot array of a bucket from its metadata and the
/// real blocks placed in it.
fn build_bucket_slots(
    envelope: &Envelope,
    encrypt: bool,
    bucket: BucketId,
    meta: &BucketMeta,
    blocks: &[Block],
    capacity: usize,
) -> Result<Vec<bytes::Bytes>> {
    let total = meta.perm.len();
    let next_version = meta.version + 1;
    let by_key: HashMap<Key, &Block> = blocks.iter().map(|b| (b.key, b)).collect();
    let dummy = Block::dummy();
    let mut slots: Vec<bytes::Bytes> = vec![bytes::Bytes::new(); total];
    for logical in 0..total {
        let physical = meta.perm[logical] as usize;
        let block: &Block = if logical < meta.z() {
            match &meta.real[logical] {
                Some((key, _)) => by_key.get(key).copied().unwrap_or(&dummy),
                None => &dummy,
            }
        } else {
            &dummy
        };
        slots[physical] = seal_block(
            envelope,
            encrypt,
            bucket,
            physical as u32,
            next_version,
            block,
            capacity,
        )?;
    }
    Ok(slots)
}

/// Location tag binding a sealed slot to its bucket and physical position.
fn slot_location(bucket: BucketId, slot: u32) -> u64 {
    (bucket << 12) | slot as u64
}

impl OramCore {
    /// Fetches the given slots with no lock held.  Only indices in
    /// `targets` are decrypted; dummy reads are fetched (for obliviousness)
    /// but their payloads are discarded.  The caller accounts
    /// `stats.physical_reads`.
    fn fetch_slots(
        &self,
        pool: &ThreadPool,
        reads: &[SlotRead],
        targets: &HashSet<usize>,
    ) -> Result<Vec<Option<Block>>> {
        if reads.is_empty() {
            return Ok(Vec::new());
        }
        let envelope = self.envelope.clone();
        let encrypt = self.options.encrypt;
        let store = self.store.clone();
        let jobs: Vec<(usize, SlotRead, bool)> = reads
            .iter()
            .enumerate()
            .map(|(i, r)| (i, *r, targets.contains(&i)))
            .collect();

        let run = move |(idx, read, is_target): (usize, SlotRead, bool)| -> Result<(usize, Option<Block>)> {
            let bytes = store.read_slot(read.bucket, read.slot)?;
            if !is_target {
                return Ok((idx, None));
            }
            let block = open_block(&envelope, encrypt, read, &bytes)?;
            Ok((idx, Some(block)))
        };

        let results: Vec<Result<(usize, Option<Block>)>> = if self.options.parallel {
            pool.map(jobs, run)
        } else {
            jobs.into_iter().map(run).collect()
        };

        let mut out: Vec<Option<Block>> = vec![None; reads.len()];
        for result in results {
            let (idx, block) = result?;
            out[idx] = block;
        }
        Ok(out)
    }

    /// Common accessors used by both halves and the facade.
    fn stats(&self) -> OramStats {
        let state = self.shared.state.lock();
        let mut stats = state.stats;
        stats.stash_peak = state.meta.stash.peak() as u64;
        stats
    }

    fn reset_stats(&self) {
        self.shared.state.lock().stats = OramStats::default();
    }

    fn stash_len(&self) -> usize {
        self.shared.state.lock().meta.stash.len()
    }

    fn buffered_buckets(&self) -> usize {
        self.shared.state.lock().buffer.len()
    }
}

// ----------------------------------------------------------------------
// Generations: pinning, publishing
// ----------------------------------------------------------------------

/// A guard pinning one committed generation.  While it lives, the
/// generation stays materializable — byte-identical no matter how far the
/// live state advances — and is retired (its overlays freed) when the last
/// pin drops.
pub struct PinnedGeneration {
    shared: Arc<SharedOram>,
    id: u64,
}

impl PinnedGeneration {
    /// The pinned generation's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Materializes the pinned generation's full metadata.
    pub fn meta(&self) -> OramMeta {
        let state = self.shared.state.lock();
        state
            .generations
            .materialize(self.id, &state.meta)
            .expect("a pinned generation is never retired")
    }
}

impl Drop for PinnedGeneration {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        let retired = state.generations.unpin(self.id);
        let obs = obladi_obs::global();
        if retired > 0 {
            obs.counter("oram.split.generation_retired")
                .add(retired as u64);
        }
        obs.gauge("oram.split.pinned_readers")
            .set(state.generations.total_pins() as i64);
    }
}

/// Pins the latest committed generation under an already-held lock.
fn pin_latest(core: &OramCore, state: &mut SharedState) -> PinnedGeneration {
    let id = state.generations.pin_latest();
    obladi_obs::global()
        .gauge("oram.split.pinned_readers")
        .set(state.generations.total_pins() as i64);
    PinnedGeneration {
        shared: core.shared.clone(),
        id,
    }
}

/// Publishes the current committed state as a new generation.  Runs at the
/// end of every flush (the decider's per-epoch commit point, including
/// flushes with an empty buffer), at `init_tree`, and implicitly at
/// construction (the seed generation).
///
/// In-flight reader batches have physical *target* blocks mid-air: cleared
/// from their buckets at plan time but not yet ingested into the stash.
/// The committed generation must keep accounting for those blocks, so the
/// publish patches every in-flight target back in — the key restored into
/// its bucket slot at its pre-plan leaf, which is exactly the state the
/// last landed write produced (reads never mutate storage, so the slot is
/// physically present at the bucket's committed version).  The patched
/// entries are re-marked dirty in the live tracking so the *next* publish's
/// delta records their post-ingest values.
fn publish_generation(core: &OramCore, guard: &mut parking_lot::MutexGuard<'_, SharedState>) {
    // A batch whose target bucket was rewritten since its plan cannot be
    // patched against the new layout.  The proxy flow never produces this —
    // every rewrite lands in the flush buffer, and the flush's per-bucket
    // fence waits such batches out before any write or publish — but wait
    // defensively for exotic drivers.
    loop {
        let conflicted = guard.in_flight.values().any(|batch| {
            batch
                .targets
                .iter()
                .any(|undo| guard.rewrite_stamps[undo.bucket as usize] != undo.stamp)
        });
        if !conflicted {
            break;
        }
        core.shared.cond.wait(guard);
    }

    let state = &mut **guard;

    // Collect the in-flight patches: per key the pre-plan position, per
    // bucket a clone of the live metadata with the target slot restored.
    let mut position_undo: HashMap<Key, Option<Leaf>> = HashMap::new();
    let mut bucket_undo: HashMap<BucketId, Arc<BucketMeta>> = HashMap::new();
    for batch in state.in_flight.values() {
        for undo in &batch.targets {
            position_undo.entry(undo.key).or_insert(Some(undo.old_leaf));
            let base = bucket_undo
                .get(&undo.bucket)
                .cloned()
                .unwrap_or_else(|| state.meta.buckets[undo.bucket as usize].clone());
            let mut patched = (*base).clone();
            patched.real[undo.logical] = Some((undo.key, undo.old_leaf));
            patched.valid[undo.logical] = true;
            patched.reads_since_shuffle = patched.reads_since_shuffle.saturating_sub(1);
            bucket_undo.insert(undo.bucket, Arc::new(patched));
        }
    }

    // Freeze this epoch's delta and overlay the patches: the delta must
    // describe the patched (committed) state, not the mid-air one.  The
    // real `max_position_delta` is stamped in when a checkpoint consumes
    // the delta.
    let mut delta = state.meta.take_delta(0);
    for (&key, &pre) in &position_undo {
        match delta.position_delta.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = pre,
            None => delta.position_delta.push((key, pre)),
        }
    }
    delta.position_delta.sort_unstable_by_key(|(k, _)| *k);
    for (&bucket, arc) in &bucket_undo {
        let patched = (**arc).clone();
        match delta.buckets.iter_mut().find(|(b, _)| *b == bucket) {
            Some(entry) => entry.1 = patched,
            None => delta.buckets.push((bucket, patched)),
        }
    }
    delta.buckets.sort_by_key(|(b, _)| *b);

    // Re-mark the patched entries dirty so the next publish's delta records
    // their live (post-ingest) values.
    for &key in position_undo.keys() {
        match state.meta.position.get(key) {
            Some(live) => {
                state.meta.position.set(key, live);
            }
            None => {
                state.meta.position.remove(key);
            }
        }
    }
    for &bucket in bucket_undo.keys() {
        state.meta.mark_bucket_dirty(bucket);
    }

    // The stash never holds mid-air blocks (a physical target enters it
    // only at ingest), so the live stash is the committed stash.
    let (_, retired) = state.generations.publish(
        delta,
        state.meta.stash.clone(),
        state.meta.access_count,
        state.meta.evict_count,
        position_undo,
        bucket_undo,
    );
    let obs = obladi_obs::global();
    obs.counter("oram.split.generation_published").inc();
    if retired > 0 {
        obs.counter("oram.split.generation_retired")
            .add(retired as u64);
    }
}

/// Measures one *logical* limbo park of a reader batch.  The old code
/// timed from before the lock was even acquired and recorded a sample for
/// every batch — including batches that never blocked — and re-measured
/// across spurious condvar wakeups.  This latches the first actual block
/// and yields exactly one sample per park, or none.
struct ParkMeter {
    started: Option<Instant>,
}

impl ParkMeter {
    fn new() -> Self {
        ParkMeter { started: None }
    }

    /// Called each time the batch is about to wait; only the first call
    /// (per meter) starts the clock — spurious wakeups re-enter here
    /// without restarting it.
    fn on_block(&mut self, now: Instant) {
        self.started.get_or_insert(now);
    }

    /// Total park duration, or `None` if the batch never blocked.
    fn finish(self, now: Instant) -> Option<Duration> {
        self.started.map(|s| now.saturating_duration_since(s))
    }
}

// ----------------------------------------------------------------------
// The read plane
// ----------------------------------------------------------------------

/// Worker-pool size for the given options.
fn pool_size(options: &ExecOptions) -> usize {
    if options.parallel {
        options.threads
    } else {
        1
    }
}

/// The concurrent read plane of the split client (see the module docs).
/// Cloneable: every clone shares the same client state and worker pool, so
/// several threads can drive concurrent read batches.
#[derive(Clone)]
pub struct OramReader {
    core: OramCore,
    pool: Arc<ThreadPool>,
}

impl OramReader {
    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        &self.core.config
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.core.geometry
    }

    /// Operation counters (shared with the engine).
    pub fn stats(&self) -> OramStats {
        self.core.stats()
    }

    /// Resets the shared operation counters.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.core.stash_len()
    }

    /// Access to the underlying store (stats in benches).
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.core.store
    }

    /// Pins the latest committed generation.  The returned guard
    /// materializes byte-identical metadata until dropped, no matter how
    /// far the live state advances (checkpoints, tests, diagnostics).
    pub fn pin_generation(&self) -> Result<PinnedGeneration> {
        let mut state = self.core.shared.state.lock();
        check_poisoned(&state)?;
        Ok(pin_latest(&self.core, &mut state))
    }

    /// Executes one read batch.  `requests[i] == None` denotes a padding
    /// (dummy) request that reads a uniformly random path.
    ///
    /// The metadata pass runs under the shared lock; the physical reads run
    /// with it released, so engine write-backs and *other reader batches*
    /// in flight on other threads overlap them in time.
    pub fn read_batch(
        &self,
        requests: &[Option<Key>],
        logger: &dyn PathLogger,
    ) -> Result<Vec<Option<Value>>> {
        // Phase 1 (locked): wait out limbo keys, then plan every request —
        // slot choices, position remaps and plan-time value capture are
        // atomic with respect to the engine and other batches.
        let (plans, physical, batch) = {
            let mut state = self.core.shared.state.lock();
            let mut park = ParkMeter::new();
            loop {
                // Re-checked after every wakeup: a concurrent engine
                // failure may poison the client while this batch is parked,
                // and planning against the corrupted metadata could
                // double-read consumed slots (see [`check_poisoned`]).
                check_poisoned(&state)?;
                let blocked = requests
                    .iter()
                    .filter_map(|r| *r)
                    .any(|k| state.limbo.contains(&k));
                if !blocked {
                    break;
                }
                park.on_block(Instant::now());
                self.core.shared.cond.wait(&mut state);
            }
            if let Some(parked) = park.finish(Instant::now()) {
                obladi_obs::global()
                    .histogram("oram.split.limbo_park_us")
                    .record_duration(parked);
            }
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut undo: Vec<TargetUndo> = Vec::new();
            let mut plans: Vec<OpPlan> = Vec::with_capacity(requests.len());
            for request in requests {
                if request.is_none() && LEAK_SKIP_DUMMY_PADS.load(Ordering::Relaxed) {
                    // Injected leak: the pad resolves without touching
                    // storage instead of reading a uniform random path.
                    plans.push(OpPlan {
                        key: None,
                        new_leaf: 0,
                        target: Target::Ready(None),
                    });
                    continue;
                }
                match plan_access(&self.core, &mut state, *request, &mut physical, &mut undo) {
                    Ok(plan) => plans.push(plan),
                    Err(err) => {
                        // Planning failed mid-batch (a buffered-hit stash
                        // insert overflowed).  The failing request loses
                        // nothing — the stash retains the block beyond its
                        // bound — but any *earlier* plan that chose a
                        // physical target has already cleared its block
                        // from the bucket metadata, and the fetch that
                        // would carry it to the stash will never be issued
                        // (the batch aborts before it is even registered
                        // in flight).  Poison the client so a concurrent
                        // engine checkpoint cannot persist the loss durably
                        // (see [`CheckpointSource`]).
                        if plans
                            .iter()
                            .any(|p| matches!(p.target, Target::Physical(_)))
                        {
                            state.poisoned = true;
                        }
                        return Err(err);
                    }
                }
            }
            state.stats.physical_reads += physical.len() as u64;
            // Register the batch *before* releasing the lock so the
            // engine's per-bucket fence cannot miss it, pinning the
            // generation the plan ran against.
            let batch = if physical.is_empty() {
                None
            } else {
                let id = state.next_batch_id;
                state.next_batch_id += 1;
                let generation = state.generations.pin_latest();
                obladi_obs::global()
                    .gauge("oram.split.pinned_readers")
                    .set(state.generations.total_pins() as i64);
                let buckets: HashSet<BucketId> = physical.iter().map(|r| r.bucket).collect();
                state.in_flight.insert(
                    id,
                    InFlightBatch {
                        generation,
                        buckets,
                        targets: undo,
                    },
                );
                Some(id)
            };
            (plans, physical, batch)
        };

        // Phase 2 (unlocked): log, then issue the physical reads.
        let targets: HashSet<usize> = plans
            .iter()
            .filter_map(|p| match p.target {
                Target::Physical(idx) => Some(idx),
                _ => None,
            })
            .collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        // Phase 3 (locked): deregister the batch on *every* path — the
        // engine's fence must never wait on a fetch that has already
        // failed — then ingest the target blocks into the stash.
        let mut state = self.core.shared.state.lock();
        if let Some(id) = batch {
            if let Some(entry) = state.in_flight.remove(&id) {
                let retired = state.generations.unpin(entry.generation);
                let obs = obladi_obs::global();
                if retired > 0 {
                    obs.counter("oram.split.generation_retired")
                        .add(retired as u64);
                }
                obs.gauge("oram.split.pinned_readers")
                    .set(state.generations.total_pins() as i64);
            }
            self.core.shared.cond.notify_all();
        }
        let result = (|state: &mut SharedState| -> Result<Vec<Option<Value>>> {
            let mut raw = fetched?;
            let mut results = Vec::with_capacity(requests.len());
            for plan in plans {
                match plan.target {
                    Target::Ready(value) => results.push(value),
                    Target::Physical(idx) => {
                        let key = plan.key.expect("physical targets carry a key");
                        // Each physical index is targeted by exactly one
                        // plan, so the block can be moved out, not cloned.
                        let block = raw.get_mut(idx).and_then(|b| b.take()).ok_or_else(|| {
                            ObladiError::Internal("missing physical target block".into())
                        })?;
                        if block.key != key {
                            return Err(ObladiError::Integrity(format!(
                                "expected block for key {key}, found {}",
                                block.key
                            )));
                        }
                        // A concurrent dummiless write of the key would have
                        // left a newer version in the stash; never clobber it
                        // (the proxy's carry set rules this out, but the
                        // guard costs nothing and keeps the invariant local).
                        if !state.meta.stash.contains(key) {
                            state.meta.stash.insert(
                                key,
                                plan.new_leaf,
                                block.value.clone(),
                                self.core.config.max_stash,
                            )?;
                        }
                        results.push(Some(block.value));
                    }
                }
            }
            Ok(results)
        })(&mut state);
        if result.is_err() && !targets.is_empty() {
            // A physical target block was cleared from its bucket at plan
            // time and never reached the stash: the live metadata no longer
            // accounts for it.  Poison the client so a concurrent engine
            // checkpoint cannot persist the loss durably before the
            // caller's fate-sharing crash lands (see [`CheckpointSource`]).
            state.poisoned = true;
        }
        result
    }
}

/// Plans one access under the shared lock: remaps the key, chooses exactly
/// one slot per non-buffered bucket on the path, and resolves stash /
/// buffered targets to their values immediately.  Physical targets append a
/// [`TargetUndo`] so an overlapping generation publish can keep accounting
/// for the mid-air block.
fn plan_access(
    core: &OramCore,
    state: &mut SharedState,
    request: Option<Key>,
    physical: &mut Vec<SlotRead>,
    undo: &mut Vec<TargetUndo>,
) -> Result<OpPlan> {
    state.stats.logical_reads += 1;
    state.meta.access_count += 1;

    let num_leaves = core.geometry.num_leaves();
    let (key, exists, old_leaf) = match request {
        Some(key) => match state.meta.position.get(key) {
            Some(leaf) => (Some(key), true, leaf),
            None => (Some(key), false, state.rng.below(num_leaves)),
        },
        None => (None, false, state.rng.below(num_leaves)),
    };
    let new_leaf = state.rng.below(num_leaves);

    // Remap immediately; the block itself moves to the stash at ingest (or
    // right here, for stash / buffered targets).
    if exists {
        if let Some(k) = key {
            state.note_position(k);
            state.meta.position.set(k, new_leaf);
            state.meta.stash.remap(k, new_leaf);
        }
    }

    let mut target = if exists {
        let k = key.expect("exists implies key");
        if state.meta.stash.contains(k) {
            Target::Ready(state.meta.stash.get(k).map(|(_, v)| v.clone()))
        } else {
            Target::Ready(None) // refined below if found in the tree
        }
    } else {
        Target::Ready(None)
    };
    let mut resolved = matches!(target, Target::Ready(Some(_)));

    for &bucket in &core.geometry.path(old_leaf) {
        let is_buffered = state.buffer.contains_key(&bucket);
        let key_slot = match (key, exists) {
            (Some(k), true) => state.meta.buckets[bucket as usize].find_key(k),
            _ => None,
        };

        if is_buffered {
            // Served locally from the buffered bucket; no physical read.
            state.stats.buffered_reads += 1;
            if let Some(logical) = key_slot {
                if !resolved {
                    // Extract the block *now*, under the lock: it leaves the
                    // buffered bucket and moves to the stash, exactly as if
                    // it had left the tree.
                    let k = key.expect("key_slot implies key");
                    state.note_bucket(bucket);
                    state.meta.bucket_mut(bucket).clear_real(logical);
                    state.meta.mark_bucket_dirty(bucket);
                    let value = state.buffer.get_mut(&bucket).and_then(|blocks| {
                        blocks
                            .iter()
                            .position(|b| b.key == k)
                            .map(|pos| blocks.remove(pos).value)
                    });
                    if let Some(value) = value {
                        state.meta.stash.insert(
                            k,
                            new_leaf,
                            value.clone(),
                            core.config.max_stash,
                        )?;
                        target = Target::Ready(Some(value));
                    }
                    resolved = true;
                }
            }
            continue;
        }

        if let Some(logical) = key_slot {
            if !resolved {
                let k = key.expect("key_slot implies key");
                let stamp = state.rewrite_stamps[bucket as usize];
                state.note_bucket(bucket);
                let meta = state.meta.bucket_mut(bucket);
                let slot = meta.mark_read(logical);
                meta.clear_real(logical);
                let version = meta.version;
                state.meta.mark_bucket_dirty(bucket);
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
                undo.push(TargetUndo {
                    bucket,
                    logical,
                    key: k,
                    old_leaf,
                    stamp,
                });
                target = Target::Physical(physical.len() - 1);
                resolved = true;
                if state.meta.buckets[bucket as usize].needs_early_reshuffle() {
                    state.needs_reshuffle.insert(bucket);
                }
                continue;
            }
        }

        // Dummy read from this bucket.
        match state.meta.buckets[bucket as usize].pick_valid_dummy(&mut state.rng) {
            Some(logical) => {
                state.note_bucket(bucket);
                let meta = state.meta.bucket_mut(bucket);
                let slot = meta.mark_read(logical);
                let version = meta.version;
                state.meta.mark_bucket_dirty(bucket);
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
                if state.meta.buckets[bucket as usize].needs_early_reshuffle() {
                    state.needs_reshuffle.insert(bucket);
                }
            }
            None => {
                // The bucket has no valid dummies left; it will be
                // reshuffled during the engine's next maintenance pass.
                // Skipping the physical read here is the recovery action
                // canonical Ring ORAM avoids by reshuffling earlier.
                state.needs_reshuffle.insert(bucket);
            }
        }
    }

    Ok(OpPlan {
        key,
        new_leaf,
        target,
    })
}

// ----------------------------------------------------------------------
// The write-back engine
// ----------------------------------------------------------------------

/// The background write-back engine of the split client (see the module
/// docs): dummiless writes, evictions, early reshuffles, flush, checkpoint
/// production and recovery support.
pub struct WritebackEngine {
    core: OramCore,
    pool: Arc<ThreadPool>,
}

impl WritebackEngine {
    /// Replaces the shared worker pool with a private one, so a caller
    /// driving the two halves from separate threads (the pipelined proxy)
    /// never queues its flush I/O behind the read plane's fetches.
    pub(crate) fn use_private_pool(&mut self) {
        self.pool = Arc::new(ThreadPool::new(pool_size(&self.core.options)));
    }

    /// The tree configuration.
    pub fn config(&self) -> &OramConfig {
        &self.core.config
    }

    /// The tree geometry helper.
    pub fn geometry(&self) -> TreeGeometry {
        self.core.geometry
    }

    /// Operation counters (shared with the reader).
    pub fn stats(&self) -> OramStats {
        self.core.stats()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.core.stash_len()
    }

    /// Number of buckets currently buffered locally (awaiting flush).
    pub fn buffered_buckets(&self) -> usize {
        self.core.buffered_buckets()
    }

    /// Access to the underlying store.
    pub fn store(&self) -> &Arc<dyn UntrustedStore> {
        &self.core.store
    }

    /// A snapshot of the *live* client metadata (tests and diagnostics);
    /// checkpoints use the latest committed generation instead.
    pub fn meta_snapshot(&self) -> OramMeta {
        self.core.shared.state.lock().meta.clone()
    }

    /// Number of generations currently retained (the latest plus any
    /// pinned history) — test / diagnostic helper.
    pub fn generations_retained(&self) -> usize {
        self.core.shared.state.lock().generations.len()
    }

    // ------------------------------------------------------------------
    // Initialisation
    // ------------------------------------------------------------------

    fn init_tree(&self) -> Result<()> {
        // The tree is written unconditionally: a freshly constructed client
        // has fresh permutations and an empty position map, so any blocks a
        // previous client left on this store are unreadable garbage to it.
        let slots_per_bucket = self.core.config.slots_per_bucket() as usize;
        let capacity = Block::padded_capacity(self.core.config.block_size);
        let encrypt = self.core.options.encrypt;
        let envelope = self.core.envelope.clone();
        let fast = self.core.options.fast_init;

        let buckets: Vec<BucketId> = self.core.geometry.all_buckets().collect();
        let store = self.core.store.clone();
        let results: Vec<Result<(BucketId, Version)>> = self.pool.map(buckets, move |bucket| {
            let slots: Vec<bytes::Bytes> = if fast {
                let sealed =
                    seal_block(&envelope, encrypt, bucket, 0, 1, &Block::dummy(), capacity)?;
                vec![sealed; slots_per_bucket]
            } else {
                let mut slots = Vec::with_capacity(slots_per_bucket);
                for slot in 0..slots_per_bucket {
                    slots.push(seal_block(
                        &envelope,
                        encrypt,
                        bucket,
                        slot as u32,
                        1,
                        &Block::dummy(),
                        capacity,
                    )?);
                }
                slots
            };
            let version = store.write_bucket(bucket, slots)?;
            Ok((bucket, version))
        });
        let mut state = self.core.shared.state.lock();
        for result in results {
            let (bucket, version) = result?;
            state.note_bucket(bucket);
            state.meta.bucket_mut(bucket).version = version;
        }
        // The initialised tree is the first committed state worth pinning.
        publish_generation(&self.core, &mut state);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Applies a write batch using dummiless writes (§6.3): the new version
    /// of each object goes directly to the stash; no physical reads are
    /// issued, but the eviction schedule still advances.
    pub fn write_batch(&mut self, writes: &[(Key, Value)], logger: &dyn PathLogger) -> Result<()> {
        self.write_batch_padded(writes, writes.len(), logger)
    }

    /// Like [`WritebackEngine::write_batch`], but pads the batch to
    /// `padded_to` logical writes so the eviction schedule is independent of
    /// how many real writes the epoch produced (§6.2).
    pub fn write_batch_padded(
        &mut self,
        writes: &[(Key, Value)],
        padded_to: usize,
        logger: &dyn PathLogger,
    ) -> Result<()> {
        // Validate every value first so a single oversized value cannot
        // leave the batch half-applied.
        for (key, value) in writes {
            if value.len() > self.core.config.block_size {
                return Err(ObladiError::Codec(format!(
                    "value for key {key} of {} bytes exceeds block size {}",
                    value.len(),
                    self.core.config.block_size
                )));
            }
        }
        let a = self.core.config.a as u64;
        for (key, value) in writes {
            let run_maintenance = {
                let mut state = self.core.shared.state.lock();
                check_poisoned(&state)?;
                dummiless_write(&self.core, &mut state, *key, value.clone())?;
                // Interleave evictions with large write batches so the
                // stash stays within its canonical Ring ORAM bound even
                // when the write batch is larger than `A`.
                state.meta.access_count.is_multiple_of(a)
            };
            if run_maintenance {
                self.run_pending_maintenance(logger)?;
            }
        }
        {
            // Padded (dummy) writes contribute to the access count only.
            let mut state = self.core.shared.state.lock();
            let padding = padded_to.saturating_sub(writes.len()) as u64;
            state.meta.access_count += padding;
            state.stats.logical_writes += padding;
        }
        self.run_pending_maintenance(logger)?;
        if !self.core.options.deferred_writes {
            self.flush_writes(logger)?;
        }
        Ok(())
    }

    /// Seals and writes every buffered bucket back to storage (one write per
    /// bucket — the last version wins), clears the buffer, and publishes the
    /// resulting state as a new generation.
    ///
    /// Issues the physical writes with the shared lock released.  The
    /// per-bucket fence first waits out in-flight reader batches holding
    /// physical reads against the buckets about to be written; buckets leave
    /// the buffered overlay only after their write has landed, so concurrent
    /// reader batches stay consistent throughout (see the module docs).
    pub fn flush_writes(&mut self, _logger: &dyn PathLogger) -> Result<()> {
        let jobs: Vec<(BucketId, Arc<BucketMeta>, Vec<Block>)> = {
            let mut state = self.core.shared.state.lock();
            check_poisoned(&state)?;
            if state.buffer.is_empty() {
                // Nothing to write, but the epoch still commits: publish a
                // generation so checkpoints capture the current state.
                publish_generation(&self.core, &mut state);
                return Ok(());
            }
            self.wait_buffered_bucket_fetches(&mut state)?;
            let mut jobs: Vec<(BucketId, Arc<BucketMeta>, Vec<Block>)> = state
                .buffer
                .iter()
                .map(|(bucket, blocks)| {
                    (
                        *bucket,
                        state.meta.buckets[*bucket as usize].clone(),
                        blocks.clone(),
                    )
                })
                .collect();
            jobs.sort_by_key(|(b, _, _)| *b);
            jobs
        };

        let capacity = Block::padded_capacity(self.core.config.block_size);
        let encrypt = self.core.options.encrypt;
        let envelope = self.core.envelope.clone();
        let store = self.core.store.clone();
        let results: Vec<Result<(BucketId, Version)>> =
            self.pool.map(jobs, move |(bucket, meta, blocks)| {
                let slots =
                    build_bucket_slots(&envelope, encrypt, bucket, &meta, &blocks, capacity)?;
                let version = store.write_bucket(bucket, slots)?;
                Ok((bucket, version))
            });

        let mut state = self.core.shared.state.lock();
        for result in results {
            let (bucket, version) = result?;
            // The version install is a metadata mutation like any other: a
            // pinned generation must keep pointing at the bucket's *old*
            // storage version (shadow paging reverts to it on recovery).
            state.note_bucket(bucket);
            state.meta.bucket_mut(bucket).version = version;
            state.meta.mark_bucket_dirty(bucket);
            state.buffer.remove(&bucket);
            state.stats.physical_writes += 1;
        }
        publish_generation(&self.core, &mut state);
        self.core.shared.cond.notify_all();
        Ok(())
    }

    /// The per-bucket flush fence: waits until no in-flight reader batch
    /// holds a physical read against a bucket in the flush buffer.  New
    /// batches never plan physical reads against buffered buckets (the
    /// overlay serves them), so this only waits for fetches planned before
    /// the buckets entered the buffer — unrelated batches keep flowing.
    fn wait_buffered_bucket_fetches(
        &self,
        state: &mut parking_lot::MutexGuard<'_, SharedState>,
    ) -> Result<()> {
        let drain_started = Instant::now();
        loop {
            check_poisoned(state)?;
            let conflict = state.in_flight.values().any(|batch| {
                batch
                    .buckets
                    .iter()
                    .any(|bucket| state.buffer.contains_key(bucket))
            });
            if !conflict {
                break;
            }
            self.core.shared.cond.wait(state);
        }
        obladi_obs::global()
            .histogram("oram.split.fence_drain_us")
            .record_duration(drain_started.elapsed());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Evictions, early reshuffles
    // ------------------------------------------------------------------

    /// Runs every eviction and early reshuffle that has come due.  The
    /// proxy's decider drives this once per epoch (right before the flush);
    /// the facade drives it at the monolithic client's points (after every
    /// read batch and interleaved with large write batches).
    pub fn run_pending_maintenance(&mut self, logger: &dyn PathLogger) -> Result<()> {
        loop {
            // Evictions owed: one per `A` logical accesses.
            let next_target = {
                let state = self.core.shared.state.lock();
                check_poisoned(&state)?;
                let owed = state.meta.access_count / self.core.config.a as u64;
                if state.meta.evict_count < owed {
                    Some(self.core.geometry.evict_target(state.meta.evict_count))
                } else {
                    None
                }
            };
            match next_target {
                Some(target) => {
                    self.evict_path(target, logger)?;
                    let mut state = self.core.shared.state.lock();
                    state.meta.evict_count += 1;
                    state.stats.evictions += 1;
                }
                None => break,
            }
        }
        // Early reshuffles for exhausted buckets.
        let pending: Vec<BucketId> = {
            let mut state = self.core.shared.state.lock();
            let mut v: Vec<BucketId> = state.needs_reshuffle.drain().collect();
            v.sort_unstable();
            v
        };
        for bucket in pending {
            // A bucket freshly rewritten by an eviction no longer needs it.
            let skip = {
                let state = self.core.shared.state.lock();
                state.buffer.contains_key(&bucket)
                    || !state.meta.buckets[bucket as usize].needs_early_reshuffle()
            };
            if skip {
                continue;
            }
            self.early_reshuffle(bucket, logger)?;
            let mut state = self.core.shared.state.lock();
            state.stats.early_reshuffles += 1;
        }
        Ok(())
    }

    fn evict_path(&mut self, target_leaf: Leaf, logger: &dyn PathLogger) -> Result<()> {
        let path = self.core.geometry.path(target_leaf);

        // ----- Read phase (planned under the lock) -----
        let (physical, expected_real, limbo_keys) = {
            let mut state = self.core.shared.state.lock();
            let state = &mut *state;
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut expected_real: Vec<usize> = Vec::new();
            let mut limbo_keys: Vec<Key> = Vec::new();
            for &bucket in &path {
                if let Some(blocks) = state.buffer.remove(&bucket) {
                    // The bucket's current contents live locally; pull them
                    // back into the stash without physical reads.
                    state.stats.buffered_reads += 1;
                    for block in blocks {
                        if let Err(err) = ingest_evicted_block(&self.core, state, block) {
                            // The bucket's blocks just left the buffered
                            // overlay and the ingest failed part-way; the
                            // live metadata can no longer be trusted to
                            // account for every value, so checkpoints must
                            // refuse it (see [`CheckpointSource`]).
                            state.poisoned = true;
                            return Err(err);
                        }
                    }
                    state.note_bucket(bucket);
                    let meta = state.meta.bucket_mut(bucket);
                    for logical in 0..meta.z() {
                        meta.clear_real(logical);
                    }
                    continue;
                }
                let reals = plan_bucket_reads(state, bucket, &mut physical, &mut limbo_keys);
                expected_real.extend(reals);
            }
            // The real blocks are now physically in flight towards the
            // stash and findable nowhere; readers must wait for them.
            for key in &limbo_keys {
                state.limbo.insert(*key);
            }
            state.stats.physical_reads += physical.len() as u64;
            (physical, expected_real, limbo_keys)
        };

        // ----- Physical reads (lock released) -----
        let targets: HashSet<usize> = expected_real.iter().copied().collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        // ----- Ingest + write phase (one critical section, so no reader
        // ever observes the gap between a block entering the stash and its
        // bucket being rewritten) -----
        let mut state = self.core.shared.state.lock();
        for key in &limbo_keys {
            state.limbo.remove(key);
        }
        self.core.shared.cond.notify_all();
        let result = (|state: &mut SharedState| -> Result<()> {
            let mut raw = fetched?;
            for idx in expected_real {
                // Each index is visited once; move the block out, no clone.
                if let Some(block) = raw.get_mut(idx).and_then(|b| b.take()) {
                    ingest_evicted_block(&self.core, state, block)?;
                }
            }

            // Write phase (deepest bucket first).
            for &bucket in path.iter().rev() {
                place_eligible_blocks(&self.core, state, bucket)?;
            }
            Ok(())
        })(&mut state);
        if result.is_err() {
            // Real blocks were pulled out of their buckets (their limbo
            // entries are gone and their slots consumed) or out of the
            // stash for a rewrite that never landed.  Poison so that
            // checkpoints refuse this state outright — the refusal must
            // hold on its own and not depend on the caller aborting before
            // its next checkpoint (an implicit thread-topology invariant).
            state.poisoned = true;
        }
        result
    }

    fn early_reshuffle(&mut self, bucket: BucketId, logger: &dyn PathLogger) -> Result<()> {
        // Read the remaining valid real blocks of the bucket.
        let (physical, limbo_keys) = {
            let mut state = self.core.shared.state.lock();
            let state = &mut *state;
            let mut physical: Vec<SlotRead> = Vec::new();
            let mut limbo_keys: Vec<Key> = Vec::new();
            plan_bucket_reads(state, bucket, &mut physical, &mut limbo_keys);
            for key in &limbo_keys {
                state.limbo.insert(*key);
            }
            state.stats.physical_reads += physical.len() as u64;
            (physical, limbo_keys)
        };

        // Every read that corresponds to a real slot is a target.
        let targets: HashSet<usize> = (0..physical.len()).collect();
        let fetched = (|| -> Result<Vec<Option<Block>>> {
            logger.log_reads(&physical)?;
            self.core.fetch_slots(&self.pool, &physical, &targets)
        })();

        let mut state = self.core.shared.state.lock();
        for key in &limbo_keys {
            state.limbo.remove(key);
        }
        self.core.shared.cond.notify_all();
        let result = (|state: &mut SharedState| -> Result<()> {
            let raw = fetched?;
            for block in raw.into_iter().flatten() {
                if !block.is_dummy() {
                    ingest_evicted_block(&self.core, state, block)?;
                }
            }

            // Re-place eligible stash blocks into the bucket (this includes
            // the blocks just read, whose paths necessarily pass through
            // it).
            place_eligible_blocks(&self.core, state, bucket)?;
            Ok(())
        })(&mut state);
        if result.is_err() {
            // Same reasoning as [`WritebackEngine::evict_path`]: real
            // blocks left their bucket (or the stash) without landing
            // anywhere durable-able, so checkpoints must refuse this state
            // regardless of what the caller does next.
            state.poisoned = true;
        }
        result
    }

    // ------------------------------------------------------------------
    // Recovery support
    // ------------------------------------------------------------------

    /// Re-issues a previously logged set of physical reads, discarding the
    /// results (recovery replays the aborted epoch's access pattern, §8).
    pub fn replay_reads(&mut self, reads: &[SlotRead]) -> Result<()> {
        let store = self.core.store.clone();
        let _ = self.pool.map(reads.to_vec(), move |read| {
            let _ = store.read_slot(read.bucket, read.slot);
        });
        self.core.shared.state.lock().stats.physical_reads += reads.len() as u64;
        Ok(())
    }

    /// Reverts every bucket on storage to the version recorded in the client
    /// metadata (shadow paging, §8).
    pub fn revert_storage_to_meta(&self) -> Result<()> {
        let versions: Vec<(BucketId, Version)> = {
            let state = self.core.shared.state.lock();
            self.core
                .geometry
                .all_buckets()
                .map(|bucket| (bucket, state.meta.buckets[bucket as usize].version))
                .collect()
        };
        for (bucket, expected) in versions {
            let current = self.core.store.bucket_version(bucket)?;
            if current != expected {
                self.core.store.revert_bucket(bucket, expected)?;
            }
        }
        Ok(())
    }

    /// Discards all epoch-local buffered state (aborting the epoch).
    pub fn discard_buffered(&mut self) {
        self.core.shared.state.lock().buffer.clear();
    }
}

/// The error every operation on a poisoned client fails with.
fn poisoned_error() -> ObladiError {
    ObladiError::Integrity(
        "ORAM client is poisoned: a failed operation left a live value unaccounted for \
         in the metadata; reads, writes, maintenance and checkpoints are all refused \
         until the client is rebuilt (crash + recovery)"
            .into(),
    )
}

/// Fails if the client is poisoned (see [`SharedState::poisoned`]).  Every
/// operational surface — reads, writes, flush, maintenance, checkpoints —
/// calls this, so the refusal is self-contained: it does not depend on the
/// thread that observed the original failure aborting before another
/// thread touches the corrupted metadata (planning against it could
/// double-read consumed slots or fetch stale layouts).
fn check_poisoned(state: &SharedState) -> Result<()> {
    if state.poisoned {
        return Err(poisoned_error());
    }
    Ok(())
}

impl CheckpointSource for WritebackEngine {
    /// Serialises the latest committed generation.  No quiescence: the pin
    /// keeps the generation materializable while concurrent reader batches
    /// keep planning, and encoding — the expensive part — runs with the
    /// lock released.  Refuses if a past fetch failed and left a block
    /// permanently unaccounted for (the poison flag; see
    /// [`CheckpointSource`]).
    fn checkpoint_full(&self) -> Result<Vec<u8>> {
        let pinned = {
            let mut state = self.core.shared.state.lock();
            check_poisoned(&state)?;
            pin_latest(&self.core, &mut state)
        };
        let meta = pinned.meta();
        Ok(meta.encode_full())
    }

    fn checkpoint_delta(&mut self, max_position_delta: usize) -> Result<MetaDelta> {
        let mut state = self.core.shared.state.lock();
        check_poisoned(&state)?;
        let stash_pad = self.core.config.max_stash;
        let block_size = self.core.config.block_size;
        Ok(state
            .generations
            .take_frozen_delta(max_position_delta, stash_pad, block_size))
    }
}

/// A dummiless write (§6.3) under the shared lock.
fn dummiless_write(core: &OramCore, state: &mut SharedState, key: Key, value: Value) -> Result<()> {
    if value.len() > core.config.block_size {
        return Err(ObladiError::Codec(format!(
            "value of {} bytes exceeds block size {}",
            value.len(),
            core.config.block_size
        )));
    }
    state.stats.logical_writes += 1;
    state.meta.access_count += 1;

    let new_leaf = state.rng.below(core.geometry.num_leaves());
    state.note_position(key);
    let old_leaf = state.meta.position.set(key, new_leaf);

    // Remove any stale copy so at most one copy of the key exists.
    if let Some(old_leaf) = old_leaf {
        if state.meta.stash.remove(key).is_none() {
            for &bucket in &core.geometry.path(old_leaf) {
                if let Some(logical) = state.meta.buckets[bucket as usize].find_key(key) {
                    state.note_bucket(bucket);
                    state.meta.bucket_mut(bucket).clear_real(logical);
                    state.meta.mark_bucket_dirty(bucket);
                    if let Some(blocks) = state.buffer.get_mut(&bucket) {
                        blocks.retain(|b| b.key != key);
                    }
                    break;
                }
            }
        }
    }

    state
        .meta
        .stash
        .insert(key, new_leaf, value, core.config.max_stash)?;
    Ok(())
}

/// Plans a full-bucket maintenance read (every valid real slot plus dummy
/// padding to `Z` reads, as canonical Ring ORAM does) and marks the bucket
/// dirty.  The reals' keys are appended to `limbo_keys` — the caller
/// registers them so readers wait for the in-flight blocks — and the
/// returned indices locate the real reads within `physical`.  Shared by
/// [`WritebackEngine::evict_path`] and [`WritebackEngine::early_reshuffle`].
fn plan_bucket_reads(
    state: &mut SharedState,
    bucket: BucketId,
    physical: &mut Vec<SlotRead>,
    limbo_keys: &mut Vec<Key>,
) -> Vec<usize> {
    state.note_bucket(bucket);
    let meta = state.meta.bucket_mut(bucket);
    let reals = meta.valid_reals();
    let real_count = reals.len();
    let mut real_indices = Vec::with_capacity(real_count);
    for logical in reals {
        if let Some((key, _)) = meta.real[logical] {
            limbo_keys.push(key);
        }
        let slot = meta.mark_read(logical);
        let version = meta.version;
        physical.push(SlotRead {
            bucket,
            slot,
            version,
        });
        real_indices.push(physical.len() - 1);
    }
    let dummies_needed = meta.z().saturating_sub(real_count);
    for _ in 0..dummies_needed {
        match meta.pick_valid_dummy(&mut state.rng) {
            Some(logical) => {
                let slot = meta.mark_read(logical);
                let version = meta.version;
                physical.push(SlotRead {
                    bucket,
                    slot,
                    version,
                });
            }
            None => break,
        }
    }
    state.meta.mark_bucket_dirty(bucket);
    real_indices
}

/// Moves up to `Z` eligible stash blocks into `bucket` and installs the
/// rewritten bucket (buffered or written through, per the exec options).
/// Shared by the eviction write phase and the early-reshuffle re-place.
fn place_eligible_blocks(core: &OramCore, state: &mut SharedState, bucket: BucketId) -> Result<()> {
    let level = core.geometry.level_of(bucket);
    let geometry = core.geometry;
    let eligible = state
        .meta
        .stash
        .eligible_for(|leaf| geometry.bucket_at(leaf, level) == bucket);
    let chosen: Vec<Key> = eligible.into_iter().take(core.config.z as usize).collect();
    let mut placed: Vec<Block> = Vec::with_capacity(chosen.len());
    for key in chosen {
        if let Some((leaf, value)) = state.meta.stash.remove(key) {
            placed.push(Block::real(key, leaf, value));
        }
    }
    rewrite_bucket(core, state, bucket, placed)
}

/// Installs fresh metadata for a logically rewritten bucket and either
/// buffers or immediately writes its contents.  Runs under the shared lock;
/// the immediate-write mode (deferred_writes = false) is only exercised by
/// the sequential facade, which has no concurrent reader to block.
fn rewrite_bucket(
    core: &OramCore,
    state: &mut SharedState,
    bucket: BucketId,
    blocks: Vec<Block>,
) -> Result<()> {
    let assignment: Vec<(Key, Leaf)> = blocks.iter().map(|b| (b.key, b.leaf)).collect();
    state.note_bucket(bucket);
    state.rewrite_stamps[bucket as usize] += 1;
    state
        .meta
        .bucket_mut(bucket)
        .rewrite(&assignment, &mut state.rng);
    state.meta.mark_bucket_dirty(bucket);
    state.needs_reshuffle.remove(&bucket);

    if core.options.deferred_writes {
        state.buffer.insert(bucket, blocks);
        return Ok(());
    }

    let capacity = Block::padded_capacity(core.config.block_size);
    let meta = (*state.meta.buckets[bucket as usize]).clone();
    let slots = build_bucket_slots(
        &core.envelope,
        core.options.encrypt,
        bucket,
        &meta,
        &blocks,
        capacity,
    )?;
    let version = core.store.write_bucket(bucket, slots)?;
    state.meta.bucket_mut(bucket).version = version;
    state.stats.physical_writes += 1;
    Ok(())
}

/// Puts a block read during eviction back into the stash, discarding it if
/// it is stale (superseded by a dummiless write or remapped since).
fn ingest_evicted_block(core: &OramCore, state: &mut SharedState, block: Block) -> Result<()> {
    if block.is_dummy() {
        return Ok(());
    }
    if state.meta.stash.contains(block.key) {
        // A newer version already lives in the stash.
        return Ok(());
    }
    match state.meta.position.get(block.key) {
        Some(leaf) if leaf == block.leaf => {
            state
                .meta
                .stash
                .insert(block.key, block.leaf, block.value, core.config.max_stash)?;
            Ok(())
        }
        // Stale copy (remapped since) or deleted key: drop it.
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NoopPathLogger;
    use obladi_common::config::OramConfig;
    use obladi_storage::InMemoryStore;

    const KEY_A: Key = 7;
    const KEY_B: Key = 9;

    fn open(max_stash: usize) -> (OramReader, WritebackEngine) {
        let config = OramConfig::small_for_tests(64).with_max_stash(max_stash);
        let keys = KeyMaterial::for_tests(1);
        let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
        let options = ExecOptions {
            parallel: false,
            threads: 1,
            deferred_writes: true,
            encrypt: false,
            fast_init: false,
        };
        new_split(config, &keys, store, options, 1).expect("client must open")
    }

    /// Stages the exact mid-batch failure the poison flag guards against:
    /// `KEY_B` lives in a *buffered* root bucket with the stash already at
    /// its bound, so a read of `KEY_B` must overflow at plan time.  With
    /// `with_physical_target`, `KEY_A` additionally lives in the tree (the
    /// deepest bucket on leaf 0's path), so a batch that plans `KEY_A`
    /// first clears a physical target before `KEY_B`'s plan fails.
    fn stage_plan_overflow(engine: &WritebackEngine, with_physical_target: bool) {
        let geometry = engine.geometry();
        let max = engine.core.config.max_stash;
        let mut guard = engine.core.shared.state.lock();
        let state = &mut *guard;
        if with_physical_target {
            let bucket_a = *geometry.path(0).last().expect("path is never empty");
            state
                .meta
                .bucket_mut(bucket_a)
                .rewrite(&[(KEY_A, 0)], &mut state.rng);
            state.meta.position.set(KEY_A, 0);
        }
        let root = geometry.path(1)[0];
        state
            .meta
            .bucket_mut(root)
            .rewrite(&[(KEY_B, 1)], &mut state.rng);
        state.meta.position.set(KEY_B, 1);
        state
            .buffer
            .insert(root, vec![Block::real(KEY_B, 1, vec![0xBB])]);
        for i in 0..max {
            state
                .meta
                .stash
                .insert(1_000 + i as Key, 0, Vec::new(), max)
                .expect("filling the stash exactly to its bound cannot overflow");
        }
    }

    #[test]
    fn plan_failure_after_cleared_target_poisons_checkpoints() {
        let (reader, mut engine) = open(8);
        stage_plan_overflow(&engine, true);
        // KEY_A plans first and clears its block from the deepest bucket;
        // KEY_B's buffered hit then overflows the stash, aborting the batch
        // before KEY_A's fetch is ever issued.
        let err = reader
            .read_batch(&[Some(KEY_A), Some(KEY_B)], &NoopPathLogger)
            .expect_err("the buffered hit must overflow the stash");
        assert!(
            matches!(err, ObladiError::StashOverflow { .. }),
            "expected a stash overflow, got {err:?}"
        );
        // KEY_A is now cleared from its bucket and present in neither the
        // stash nor any fetch in flight: persisting this state would lose
        // it durably, so both checkpoint forms must refuse.
        let full = engine
            .checkpoint_full()
            .expect_err("checkpoint must refuse");
        assert!(full.to_string().contains("poisoned"), "got {full}");
        let delta = engine
            .checkpoint_delta(8)
            .expect_err("delta checkpoint must refuse");
        assert!(delta.to_string().contains("poisoned"), "got {delta}");
        // The refusal is self-contained: *every* operational surface
        // fail-stops, not just checkpoints — the other plane's thread must
        // not keep planning against the corrupted metadata.
        let read = reader
            .read_batch(&[Some(KEY_A)], &NoopPathLogger)
            .expect_err("reads must refuse a poisoned client");
        assert!(read.to_string().contains("poisoned"), "got {read}");
        let write = engine
            .write_batch(&[(KEY_A, vec![1])], &NoopPathLogger)
            .expect_err("writes must refuse a poisoned client");
        assert!(write.to_string().contains("poisoned"), "got {write}");
        let flush = engine
            .flush_writes(&NoopPathLogger)
            .expect_err("flush must refuse a poisoned client");
        assert!(flush.to_string().contains("poisoned"), "got {flush}");
    }

    #[test]
    fn plan_failure_without_cleared_target_stays_checkpointable() {
        let (reader, engine) = open(8);
        stage_plan_overflow(&engine, false);
        let err = reader
            .read_batch(&[Some(KEY_B)], &NoopPathLogger)
            .expect_err("the buffered hit must overflow the stash");
        assert!(
            matches!(err, ObladiError::StashOverflow { .. }),
            "expected a stash overflow, got {err:?}"
        );
        // Nothing was lost: the stash retains the block past its bound, so
        // the client state is consistent (if over-full) and checkpoints may
        // proceed.
        engine
            .checkpoint_full()
            .expect("no physical target was cleared, so the client is not poisoned");
    }

    #[test]
    fn park_meter_records_one_sample_per_logical_park() {
        // Instrumented clock: synthetic instants stand in for real waits.
        let t0 = Instant::now();
        let mut meter = ParkMeter::new();
        meter.on_block(t0);
        // Spurious condvar wakeups re-enter the wait loop; the clock must
        // not restart (the old code re-measured and double-counted here).
        meter.on_block(t0 + Duration::from_micros(50));
        meter.on_block(t0 + Duration::from_micros(120));
        assert_eq!(
            meter.finish(t0 + Duration::from_micros(200)),
            Some(Duration::from_micros(200)),
            "one sample spanning the whole logical park"
        );
    }

    #[test]
    fn park_meter_is_silent_when_the_batch_never_blocked() {
        let meter = ParkMeter::new();
        assert_eq!(
            meter.finish(Instant::now()),
            None,
            "unblocked batches must not record a park"
        );
    }

    #[test]
    fn empty_flush_still_publishes_a_generation() {
        let (_reader, mut engine) = open(8);
        assert_eq!(engine.generations_retained(), 1);
        // Consume the init-time delta, flush with an empty buffer, and the
        // next delta must come from the *new* generation (not error out).
        engine.checkpoint_delta(8).expect("delta after init");
        engine
            .flush_writes(&NoopPathLogger)
            .expect("empty flush succeeds");
        assert_eq!(engine.generations_retained(), 1, "old generation retired");
        engine.checkpoint_delta(8).expect("delta after empty flush");
    }

    #[test]
    fn pinned_generation_materializes_byte_identically_across_publishes() {
        let (reader, mut engine) = open(64);
        engine
            .write_batch(&[(KEY_A, vec![0xAA])], &NoopPathLogger)
            .unwrap();
        engine.flush_writes(&NoopPathLogger).unwrap();
        let pinned = reader.pin_generation().unwrap();
        let before = pinned.meta().encode_full();
        // Two full write+flush cycles publish two newer generations while
        // the pin holds the old one alive.
        engine
            .write_batch(&[(KEY_B, vec![0xBB])], &NoopPathLogger)
            .unwrap();
        engine.flush_writes(&NoopPathLogger).unwrap();
        engine
            .write_batch(&[(KEY_A, vec![0xCC])], &NoopPathLogger)
            .unwrap();
        engine.flush_writes(&NoopPathLogger).unwrap();
        assert!(
            engine.generations_retained() >= 2,
            "the pinned generation must stay retained"
        );
        assert_eq!(
            pinned.meta().encode_full(),
            before,
            "a pinned generation is an immutable snapshot"
        );
        drop(pinned);
        assert_eq!(
            engine.generations_retained(),
            1,
            "dropping the last pin retires the old generation"
        );
    }
}
