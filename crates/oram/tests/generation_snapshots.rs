//! Snapshot-isolation properties of the split client's generation chain.
//!
//! A reader that pins generation `G` must observe *byte-identical*
//! metadata — and therefore byte-identical access plans — no matter what
//! the other plane does: before the write-back engine publishes `G+1`,
//! while the publish is in flight, and after it completes.  The proptest
//! drives several concurrent pinned readers against a publishing engine;
//! the torture test holds one pin across two consecutive publishes and
//! checks the chain's retention accounting on the way.

use obladi_common::config::OramConfig;
use obladi_common::types::{Key, Value};
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, NoopPathLogger, OramReader, RingOram, WritebackEngine};
use obladi_storage::{InMemoryStore, UntrustedStore};
use proptest::prelude::*;
use std::sync::Arc;

const KEYSPACE: u64 = 64;

fn value_for(key: Key, round: u64) -> Value {
    let mut v = key.to_le_bytes().to_vec();
    v.extend_from_slice(&round.to_le_bytes());
    v
}

fn open_split(seed: u64) -> (OramReader, WritebackEngine) {
    let config = OramConfig::small_for_tests(KEYSPACE * 2);
    let keys = KeyMaterial::for_tests(seed);
    let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
    RingOram::new(config, &keys, store, ExecOptions::parallel(4), seed)
        .expect("client must open")
        .split()
}

/// One writes-then-flush round on the engine: mutates live state and
/// publishes the next generation.
fn publish_round(engine: &mut WritebackEngine, round: u64) {
    let writes: Vec<(Key, Value)> = (0..KEYSPACE)
        .filter(|k| k % 2 == 0)
        .map(|k| (k, value_for(k, round)))
        .collect();
    engine
        .write_batch(&writes, &NoopPathLogger)
        .expect("write batch");
    engine.flush_writes(&NoopPathLogger).expect("flush");
}

/// Odd keys only — disjoint from `publish_round`'s writes, as the split
/// client's caller contract requires for concurrent batches.
fn odd_reads(offset: u64, count: usize) -> Vec<Option<Key>> {
    (0..count as u64)
        .map(|i| Some(((offset + 2 * i + 1) % KEYSPACE) | 1))
        .collect()
}

fn check_case(seed: u64) -> Result<(), String> {
    let (reader, mut engine) = open_split(seed);
    // Advance past the freshly initialised state so generation G has real
    // history behind it.
    publish_round(&mut engine, 0);
    reader
        .read_batch(&odd_reads(seed, 4), &NoopPathLogger)
        .map_err(|e| format!("warm-up read: {e}"))?;

    // Several readers pin the same latest generation G.
    let pins: Vec<_> = (0..3)
        .map(|_| reader.pin_generation().expect("pin"))
        .collect();
    let generation = pins[0].id();
    let baseline = pins[0].meta().encode_full();
    for pin in &pins {
        if pin.id() != generation {
            return Err(format!(
                "pins diverged: {} vs {generation} (seed {seed})",
                pin.id()
            ));
        }
        if pin.meta().encode_full() != baseline {
            return Err(format!("pre-publish snapshot diverged (seed {seed})"));
        }
    }

    // Engine publishes G+1 (and then G+2) while the pinned readers keep
    // materializing G and a live reader keeps mutating position state.
    std::thread::scope(|scope| -> Result<(), String> {
        let engine = &mut engine;
        let publisher = scope.spawn(move || {
            publish_round(engine, 1);
            publish_round(engine, 2);
        });
        let live_reader = reader.clone();
        let live = scope.spawn(move || {
            for i in 0..4 {
                live_reader
                    .read_batch(&odd_reads(seed + i, 4), &NoopPathLogger)
                    .expect("live read during publish");
            }
        });
        for pin in &pins {
            for _ in 0..8 {
                if pin.meta().encode_full() != baseline {
                    return Err(format!(
                        "mid-publish snapshot diverged from generation {generation} \
                         (seed {seed})"
                    ));
                }
            }
        }
        publisher.join().expect("publisher panicked");
        live.join().expect("live reader panicked");
        Ok(())
    })?;

    // After both publishes the pinned view is still byte-identical, while
    // the latest generation has moved on.
    for pin in &pins {
        if pin.meta().encode_full() != baseline {
            return Err(format!("post-publish snapshot diverged (seed {seed})"));
        }
    }
    let latest = reader.pin_generation().expect("pin latest");
    if latest.id() <= generation {
        return Err(format!(
            "publishes must advance the latest generation: {} after {generation}",
            latest.id()
        ));
    }
    if latest.meta().encode_full() == baseline {
        return Err(format!(
            "the new generation encodes identically to {generation}, \
             publish was a no-op (seed {seed})"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent readers pinned to generation G observe byte-identical
    /// metadata before, during and after the engine publishes G+1 and G+2.
    #[test]
    fn pinned_readers_observe_frozen_snapshots(seed in 1u64..10_000) {
        if let Err(problem) = check_case(seed) {
            return Err(TestCaseError::fail(problem));
        }
    }
}

/// Torture: one pin held across two publishes, with retention accounting
/// checked at every step — the pinned entry survives exactly as long as
/// the pin, and the chain shrinks back to just the latest once it drops.
#[test]
fn pin_held_across_two_publishes_keeps_its_bytes() {
    let (reader, mut engine) = open_split(0xdead_beef);
    publish_round(&mut engine, 0);
    assert_eq!(engine.generations_retained(), 1, "nothing pinned yet");

    let pin = reader.pin_generation().expect("pin");
    let generation = pin.id();
    let baseline = pin.meta().encode_full();

    publish_round(&mut engine, 1);
    assert_eq!(
        engine.generations_retained(),
        2,
        "pinned G plus the new latest"
    );
    assert_eq!(pin.meta().encode_full(), baseline, "after first publish");

    // Mutate live read state between the publishes too.
    reader
        .read_batch(&odd_reads(3, 6), &NoopPathLogger)
        .expect("read between publishes");
    assert_eq!(pin.meta().encode_full(), baseline, "after live reads");

    publish_round(&mut engine, 2);
    assert_eq!(
        engine.generations_retained(),
        2,
        "the unpinned middle generation retires at the second publish"
    );
    assert_eq!(pin.meta().encode_full(), baseline, "after second publish");
    assert_eq!(pin.id(), generation, "the pin never migrates");

    drop(pin);
    assert_eq!(
        engine.generations_retained(),
        1,
        "dropping the last pin retires the history immediately"
    );
}
