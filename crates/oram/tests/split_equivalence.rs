//! Differential property test for the split ORAM client: the same seeded
//! epoch schedule, run (a) through the sequential [`RingOram`] facade and
//! (b) through an [`OramReader`] / [`WritebackEngine`] pair on two *actually
//! concurrent* threads, must produce identical committed read/write
//! semantics — every read observes exactly the value the model (a plain
//! `HashMap` oracle) prescribes, in both drivers.
//!
//! The concurrent driver mirrors the pipelined proxy's contract: epoch
//! `e`'s write batch is applied by the engine (evictions, flush) while the
//! *next* epoch's read batch runs on the reader, and the two key sets are
//! disjoint (the proxy's carry-pending set enforces exactly this).  The
//! physical access sequences legitimately differ between the two runs —
//! interleaving changes RNG consumption — but the values must not.

use obladi_common::config::OramConfig;
use obladi_common::rng::DetRng;
use obladi_common::types::{Key, Value};
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, NoopPathLogger, OramReader, RingOram, WritebackEngine};
use obladi_storage::{InMemoryStore, UntrustedStore};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const KEYSPACE: u64 = 96;

fn value_for(key: Key, epoch: usize) -> Value {
    let mut v = key.to_le_bytes().to_vec();
    v.extend_from_slice(&(epoch as u64).to_le_bytes());
    v
}

/// One epoch of the schedule: the keys the epoch writes, and the keys the
/// *next* epoch reads while this epoch's write-back is in flight.  The two
/// sets are disjoint by construction (the proxy's carry-pending rule).
#[derive(Debug, Clone)]
struct EpochPlan {
    writes: Vec<Key>,
    next_reads: Vec<Key>,
}

fn schedule(seed: u64, epochs: usize) -> Vec<EpochPlan> {
    let mut rng = DetRng::new(seed ^ 0x5517_ab1e);
    (0..epochs)
        .map(|_| {
            let write_count = 4 + rng.below_usize(8);
            let writes: HashSet<Key> = (0..write_count).map(|_| rng.below(KEYSPACE)).collect();
            // Deduplicated, like the proxy's pending-fetch set: a repeated
            // key within one batch is defined to miss (both clients agree),
            // which the map model deliberately does not encode.
            let read_count = 4 + rng.below_usize(8);
            let mut seen = HashSet::new();
            let next_reads: Vec<Key> = (0..read_count * 3)
                .map(|_| rng.below(KEYSPACE))
                .filter(|k| !writes.contains(k) && seen.insert(*k))
                .take(read_count)
                .collect();
            let mut writes: Vec<Key> = writes.into_iter().collect();
            writes.sort_unstable();
            EpochPlan { writes, next_reads }
        })
        .collect()
}

fn open_split(seed: u64) -> (OramReader, WritebackEngine) {
    let config = OramConfig::small_for_tests(KEYSPACE * 2);
    let keys = KeyMaterial::for_tests(seed);
    let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
    RingOram::new(config, &keys, store, ExecOptions::parallel(4), seed)
        .expect("client must open")
        .split()
}

/// Drives the schedule with the reader and engine on two concurrent
/// threads, returning each epoch's read observations.
fn run_concurrent(seed: u64, plans: &[EpochPlan]) -> Vec<Vec<Option<Value>>> {
    let (reader, mut engine) = open_split(seed);
    let mut observations = Vec::with_capacity(plans.len());
    for (epoch, plan) in plans.iter().enumerate() {
        let writes: Vec<(Key, Value)> = plan
            .writes
            .iter()
            .map(|&k| (k, value_for(k, epoch)))
            .collect();
        let requests: Vec<Option<Key>> = plan.next_reads.iter().copied().map(Some).collect();
        let (reads, write_result) = std::thread::scope(|scope| {
            let engine = &mut engine;
            let writer = scope.spawn(move || -> obladi_common::error::Result<()> {
                // The engine's half of the epoch: dummiless writes, the
                // evictions they owe, and the physical flush.
                engine.write_batch(&writes, &NoopPathLogger)?;
                engine.flush_writes(&NoopPathLogger)?;
                Ok(())
            });
            // The reader's half: the next epoch's batch, concurrently.
            let reads = reader.read_batch(&requests, &NoopPathLogger);
            (reads, writer.join().expect("engine thread panicked"))
        });
        write_result.expect("write batch failed");
        observations.push(reads.expect("read batch failed"));
    }
    observations
}

/// Drives the same schedule sequentially through the facade: reads of epoch
/// `e+1` run *before* epoch `e`'s writes apply, which is the same ordering
/// the disjointness guarantees for the concurrent run.
fn run_sequential(seed: u64, plans: &[EpochPlan]) -> Vec<Vec<Option<Value>>> {
    let config = OramConfig::small_for_tests(KEYSPACE * 2);
    let keys = KeyMaterial::for_tests(seed);
    let store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
    let mut oram = RingOram::new(config, &keys, store, ExecOptions::parallel(4), seed)
        .expect("client must open");
    let mut observations = Vec::with_capacity(plans.len());
    for (epoch, plan) in plans.iter().enumerate() {
        let requests: Vec<Option<Key>> = plan.next_reads.iter().copied().map(Some).collect();
        let reads = oram
            .read_batch(&requests, &NoopPathLogger)
            .expect("read batch failed");
        observations.push(reads);
        let writes: Vec<(Key, Value)> = plan
            .writes
            .iter()
            .map(|&k| (k, value_for(k, epoch)))
            .collect();
        oram.write_batch(&writes, &NoopPathLogger)
            .expect("write batch failed");
        oram.flush_writes(&NoopPathLogger).expect("flush failed");
    }
    observations
}

/// What the model (a plain map) says each epoch's reads must observe.
fn run_model(plans: &[EpochPlan]) -> Vec<Vec<Option<Value>>> {
    let mut model: HashMap<Key, Value> = HashMap::new();
    let mut observations = Vec::with_capacity(plans.len());
    for (epoch, plan) in plans.iter().enumerate() {
        observations.push(
            plan.next_reads
                .iter()
                .map(|k| model.get(k).cloned())
                .collect(),
        );
        for &k in &plan.writes {
            model.insert(k, value_for(k, epoch));
        }
    }
    observations
}

fn check_case(seed: u64, epochs: usize) -> Result<(), String> {
    let plans = schedule(seed, epochs);
    let expected = run_model(&plans);
    let concurrent = run_concurrent(seed, &plans);
    if concurrent != expected {
        return Err(format!(
            "concurrent split client diverged from the model (seed {seed})"
        ));
    }
    let sequential = run_sequential(seed, &plans);
    if sequential != expected {
        return Err(format!(
            "sequential facade diverged from the model (seed {seed})"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent reader/engine and the sequential facade observe exactly
    /// the values the model oracle prescribes, epoch for epoch.
    #[test]
    fn split_and_facade_match_the_model(seed in 1u64..10_000) {
        if let Err(problem) = check_case(seed, 6) {
            return Err(TestCaseError::fail(problem));
        }
    }
}

/// A longer single-seed stress run: many epochs of concurrent reader/engine
/// traffic, then a full sweep read of the keyspace — catches fence/limbo
/// races the short proptest cases may miss.
#[test]
fn concurrent_stress_preserves_every_value() {
    let seed = 4242;
    let plans = schedule(seed, 24);
    let expected = run_model(&plans);
    let observed = run_concurrent(seed, &plans);
    assert_eq!(
        observed, expected,
        "a concurrent epoch observed a wrong value"
    );

    // Final sweep through a fresh concurrent run, then read back everything
    // sequentially on the reader and compare against the model's end state.
    let (reader, mut engine) = open_split(seed ^ 0xabc);
    let mut model: HashMap<Key, Value> = HashMap::new();
    for (epoch, plan) in plans.iter().enumerate() {
        let writes: Vec<(Key, Value)> = plan
            .writes
            .iter()
            .map(|&k| (k, value_for(k, epoch)))
            .collect();
        let requests: Vec<Option<Key>> = plan.next_reads.iter().copied().map(Some).collect();
        std::thread::scope(|scope| {
            let engine = &mut engine;
            let writer = scope.spawn(move || {
                engine.write_batch(&writes, &NoopPathLogger).unwrap();
                engine.flush_writes(&NoopPathLogger).unwrap();
            });
            reader.read_batch(&requests, &NoopPathLogger).unwrap();
            writer.join().expect("engine thread panicked");
        });
        for &k in &plan.writes {
            model.insert(k, value_for(k, epoch));
        }
    }
    for k in 0..KEYSPACE {
        let observed = reader
            .read_batch(&[Some(k)], &NoopPathLogger)
            .unwrap()
            .pop()
            .flatten();
        assert_eq!(
            observed,
            model.get(&k).cloned(),
            "key {k} after the stress run"
        );
        // Keep the buffered overlay drained so the next reads stay cheap.
        engine.run_pending_maintenance(&NoopPathLogger).unwrap();
        engine.flush_writes(&NoopPathLogger).unwrap();
    }
}
