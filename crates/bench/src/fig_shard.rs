//! Shard-count scale-out sweep (companion to Figure 10a's parallelism
//! study).
//!
//! Figure 10a shows how far *intra*-tree parallelism carries one ORAM;
//! this experiment measures what *inter*-tree parallelism adds: the same
//! YCSB load is driven through the sharded front door at increasing shard
//! counts, with a single unsharded proxy as the 1-shard baseline.  Each
//! shard runs a full independent proxy+ORAM pipeline, so the sweep exposes
//! both the scaling win (independent epoch pipelines) and the new costs
//! (the global epoch barrier, cross-shard commit votes).

use crate::harness::{fmt1, print_header, print_row};
use crate::opts::BenchOpts;
use obladi_common::config::{ObladiConfig, ShardConfig};
use obladi_shard::ShardedDb;
use obladi_workloads::{run_deployment, YcsbConfig, YcsbWorkload};
use std::time::Duration;

/// Shard counts swept by the experiment (1 = unsharded baseline topology).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shard_template(opts: &BenchOpts) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(if opts.full { 8_192 } else { 2_048 });
    // YCSB rows (64-byte values plus row framing) must fit one ORAM block.
    config.oram.block_size = 192;
    config.oram.max_stash = 4_096;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.read_batches = 4;
    config.epoch.read_batch_size = if opts.full { 64 } else { 32 };
    config.epoch.write_batch_size = if opts.full { 128 } else { 64 };
    config.seed = opts.seed;
    config
}

fn workload(opts: &BenchOpts, ops_per_txn: usize) -> YcsbWorkload {
    YcsbWorkload::new(YcsbConfig {
        num_keys: if opts.full { 4_096 } else { 1_024 },
        read_proportion: 0.5,
        ops_per_txn,
        zipf_theta: 0.6,
        value_size: 64,
    })
}

/// Runs the shard-count sweep, printing committed throughput, abort rate
/// and the share of committed transactions that spanned several shards.
///
/// Two YCSB mixes are swept.  Single-key transactions model the
/// partition-friendly traffic sharding exists for: each transaction runs
/// entirely on one shard, so independent epoch pipelines multiply capacity.
/// Four-key transactions are the adversarial mix: a uniform router makes
/// nearly every transaction cross-shard, exposing the cost of the global
/// epoch barrier and the unanimous commit vote.
pub fn run_fig_shard(opts: &BenchOpts) {
    print_header(
        "Shard scale-out — YCSB throughput vs shard count",
        &[
            "mix",
            "deployment",
            "committed_txn_s",
            "abort_rate",
            "cross_shard_share",
            "global_epochs",
        ],
    );
    // Closed-loop clients must outnumber one shard's per-epoch commit
    // capacity, or the clients (not the pipeline) are the bottleneck and
    // every topology measures the same.
    let clients = opts.clients.max(32);
    for (mix, ops_per_txn) in [("1key", 1usize), ("4key", 4)] {
        let workload = workload(opts, ops_per_txn);
        for shards in SHARD_COUNTS {
            let config = ShardConfig {
                shards,
                shard: shard_template(opts),
            };
            let db = match ShardedDb::open(config) {
                Ok(db) => db,
                Err(err) => {
                    print_row(&[
                        mix.to_string(),
                        format!("obladi-{shards}shards"),
                        format!("failed: {err}"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                    continue;
                }
            };
            let (label, stats) = run_deployment(&db, &workload, clients, opts.duration, opts.seed)
                .expect("workload setup failed");
            let sharded = db.stats();
            let total = stats.committed + stats.aborted;
            let abort_rate = if total == 0 {
                0.0
            } else {
                stats.aborted as f64 / total as f64
            };
            let cross_share = if sharded.committed == 0 {
                0.0
            } else {
                sharded.cross_shard_committed as f64 / sharded.committed as f64
            };
            print_row(&[
                mix.to_string(),
                label,
                fmt1(stats.throughput()),
                format!("{abort_rate:.3}"),
                format!("{cross_share:.3}"),
                sharded.global_epochs.to_string(),
            ]);
            db.shutdown();
        }
    }
}
