//! Shard-count scale-out sweep (companion to Figure 10a's parallelism
//! study).
//!
//! Figure 10a shows how far *intra*-tree parallelism carries one ORAM;
//! this experiment measures what *inter*-tree parallelism adds: the same
//! YCSB load is driven through the sharded front door at increasing shard
//! counts, with a single unsharded proxy as the 1-shard baseline.  Each
//! shard runs a full independent proxy+ORAM pipeline, so the sweep exposes
//! both the scaling win (independent epoch pipelines) and the new costs
//! (the global epoch barrier, cross-shard commit votes).

use crate::harness::{fmt1, print_header, print_row, write_metrics_out, write_trace_out};
use crate::opts::BenchOpts;
use crate::profiles::StorageProfile;
use obladi_common::config::{ObladiConfig, ShardConfig};
use obladi_common::stats::LatencyRecorder;
use obladi_obs::audit::AuditRing;
use obladi_obs::HistogramSnapshot;
use obladi_shard::ShardedDb;
use obladi_storage::{RecordingStore, UntrustedStore};
use obladi_workloads::{
    run_deployment, SmallBankConfig, SmallBankWorkload, Workload, YcsbConfig, YcsbWorkload,
};
use std::sync::Arc;
use std::time::Duration;

/// Shard counts swept by the experiment (1 = unsharded baseline topology).
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

pub(crate) fn shard_template(opts: &BenchOpts) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(if opts.full { 8_192 } else { 2_048 });
    // YCSB rows (64-byte values plus row framing) must fit one ORAM block.
    config.oram.block_size = 192;
    config.oram.max_stash = 4_096;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.read_batches = 4;
    config.epoch.read_batch_size = if opts.full { 64 } else { 32 };
    config.epoch.write_batch_size = if opts.full { 128 } else { 64 };
    config.seed = opts.seed;
    config
}

fn workload(opts: &BenchOpts, ops_per_txn: usize) -> YcsbWorkload {
    YcsbWorkload::new(YcsbConfig {
        num_keys: if opts.full { 4_096 } else { 1_024 },
        read_proportion: 0.5,
        ops_per_txn,
        zipf_theta: 0.6,
        value_size: 64,
    })
}

/// Runs one mix × shard-count cell against the shared Memory storage
/// profile, printing the row.
fn run_scaleout_cell<W: Workload>(opts: &BenchOpts, mix: &str, workload: &W, shards: usize) {
    let clients = opts.clients.max(32);
    let config = ShardConfig {
        shards,
        shard: shard_template(opts),
        ..ShardConfig::default()
    };
    let built = StorageProfile::Memory
        .build(shards, opts.seed)
        .expect("memory profile cannot fail");
    let db = match ShardedDb::open_with_stores(config, built.stores.clone()) {
        Ok(db) => db,
        Err(err) => {
            print_row(&[
                mix.to_string(),
                format!("obladi-{shards}shards"),
                format!("failed: {err}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            return;
        }
    };
    let (label, stats) = run_deployment(&db, workload, clients, opts.duration, opts.seed)
        .expect("workload setup failed");
    let sharded = db.stats();
    let total = stats.committed + stats.aborted;
    let abort_rate = if total == 0 {
        0.0
    } else {
        stats.aborted as f64 / total as f64
    };
    let cross_share = if sharded.committed == 0 {
        0.0
    } else {
        sharded.cross_shard_committed as f64 / sharded.committed as f64
    };
    print_row(&[
        mix.to_string(),
        label,
        fmt1(stats.throughput()),
        format!("{abort_rate:.3}"),
        format!("{cross_share:.3}"),
        sharded.global_epochs.to_string(),
    ]);
    db.shutdown();
}

/// Runs the shard-count sweep, printing committed throughput, abort rate
/// and the share of committed transactions that spanned several shards.
///
/// Two YCSB mixes plus a SmallBank mix are swept.  Single-key YCSB
/// transactions model the partition-friendly traffic sharding exists for:
/// each transaction runs entirely on one shard, so independent epoch
/// pipelines multiply capacity.  Four-key YCSB is the adversarial mix: a
/// uniform router makes nearly every transaction cross-shard, exposing the
/// cost of the global epoch barrier and the unanimous commit vote.
/// SmallBank sits between them — realistic short transactions over
/// checking/savings account pairs (2–4 keys, hotspot-skewed), the first
/// step on the ROADMAP's "scale-out benchmarking depth" item.
pub fn run_fig_shard(opts: &BenchOpts) {
    print_header(
        "Shard scale-out — YCSB + SmallBank throughput vs shard count",
        &[
            "mix",
            "deployment",
            "committed_txn_s",
            "abort_rate",
            "cross_shard_share",
            "global_epochs",
        ],
    );
    for (mix, ops_per_txn) in [("1key", 1usize), ("4key", 4)] {
        let workload = workload(opts, ops_per_txn);
        for shards in SHARD_COUNTS {
            run_scaleout_cell(opts, mix, &workload, shards);
        }
    }
    let smallbank = SmallBankWorkload::new(SmallBankConfig {
        num_accounts: if opts.full { 1_024 } else { 256 },
        hotspot_fraction: 0.1,
        hotspot_probability: 0.25,
    });
    for shards in SHARD_COUNTS {
        run_scaleout_cell(opts, "smallbank", &smallbank, shards);
    }
}

/// Storage shapes swept by the pipeline experiment (from the shared
/// [`StorageProfile`] catalogue).  The skewed shape measures the barrier
/// pipeline's win (one slow shard holds the rendezvous open; at depth 2
/// the fast shards' next-epoch reads run inside that window), and — with
/// the split ORAM client — the uniform-latency and remote-socket shapes
/// now measure the *write-back* overlap: every shard's epoch `N` flush
/// round-trips (most expensive over the spawned `obladi-stored` daemons)
/// run while its own epoch `N+1` reads execute, instead of serializing
/// behind one client lock.
fn pipeline_profiles() -> Vec<StorageProfile> {
    vec![
        StorageProfile::Memory,
        StorageProfile::UniformLatency(Duration::from_micros(250)),
        StorageProfile::OneSlowShard {
            shard: 2,
            read_latency: Duration::from_millis(2),
        },
        StorageProfile::RemoteSocket,
    ]
}

/// One measured cell of the pipeline sweep.
struct PipelineCell {
    profile: String,
    mix: &'static str,
    depth: u32,
    committed_per_s: f64,
    abort_rate: f64,
    global_epochs: u64,
    epoch_period_ms: f64,
    /// Client-observed commit latency (commit request → acknowledged
    /// outcome) over the cell's committed transactions.
    commit_latency: LatencyRecorder,
    /// Per-stage time attribution: `(metric, snapshot)` for every pipeline
    /// phase histogram this cell exercised (proxy phases, split-client
    /// waits, the global epoch period).
    phases: Vec<(String, HistogramSnapshot)>,
    /// Abort causes aggregated across shards: `(cause_label, count)`.
    abort_causes: Vec<(String, u64)>,
}

/// Histogram prefixes that constitute the cell's per-stage attribution.
const PHASE_PREFIXES: [&str; 3] = ["proxy.phase.", "oram.split.", "shard.epoch."];

/// Named phase histograms plus aggregated `(cause, count)` abort totals.
type CellAttribution = (Vec<(String, HistogramSnapshot)>, Vec<(String, u64)>);

/// Extracts this cell's phase histograms and abort-cause counters from a
/// registry snapshot taken after the cell ran (the registry is reset before
/// each cell, so everything in the snapshot belongs to it).  Abort counters
/// are named `shard.{index}.abort.{cause}`; they are summed across shards
/// so the breakdown is by cause.
fn attribute_cell(snapshot: &obladi_obs::RegistrySnapshot) -> CellAttribution {
    let phases: Vec<(String, HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .filter(|(name, h)| h.count > 0 && PHASE_PREFIXES.iter().any(|p| name.starts_with(p)))
        .cloned()
        .collect();
    let mut causes: Vec<(String, u64)> = Vec::new();
    for (name, count) in &snapshot.counters {
        let Some(cause) = name.split(".abort.").nth(1) else {
            continue;
        };
        match causes.iter_mut().find(|(c, _)| c == cause) {
            Some((_, total)) => *total += count,
            None => causes.push((cause.to_string(), *count)),
        }
    }
    causes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    (phases, causes)
}

/// Sweeps storage latency profiles at pipeline depth 1 (stop-the-world
/// barrier) vs depth 2 (overlapped), on a 3-shard deployment under YCSB,
/// comparing the global epoch period and committed throughput.  Results go
/// to stdout and `BENCH_shard_pipeline.json`.
pub fn run_fig_shard_pipeline(opts: &BenchOpts) {
    print_header(
        "Pipelined epoch barrier — epoch period vs storage latency",
        &[
            "profile",
            "mix",
            "pipeline_depth",
            "committed_txn_s",
            "abort_rate",
            "global_epochs",
            "epoch_period_ms",
            "commit_p50_ms",
        ],
    );
    let clients = opts.clients.max(16);
    let shards = 3usize;
    let mut cells: Vec<PipelineCell> = Vec::new();
    // Every store is wrapped in the adversary-view recorder; the ring is
    // reset per cell so `--trace-out` captures the final cell's trace.
    let audit_ring = Arc::new(AuditRing::default());
    // Read-only isolates the pipeline's headline win (reads keep flowing
    // while a decision is in flight, instead of aborting in the parked
    // window); the 50/50 mix also shows its cost (reads of keys the
    // deciding epoch wrote pin to the pre-decision snapshot and wait);
    // 4-key transactions are almost always cross-shard on 3 shards, so
    // xshard4 attributes the cross-shard gap (gate waits, unanimous-vote
    // aborts) stage by stage; zipf is read-only under heavy key skew
    // (θ = 0.95), the contrast workload for the obliviousness auditor.
    for (mix, read_proportion, ops_per_txn, zipf_theta) in [
        ("read", 1.0f64, 1usize, 0.6f64),
        ("rw50", 0.5, 1, 0.6),
        ("xshard4", 0.5, 4, 0.6),
        ("zipf", 1.0, 1, 0.95),
    ] {
        if !opts.mix_selected(mix) {
            continue;
        }
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: if opts.full { 4_096 } else { 1_024 },
            read_proportion,
            ops_per_txn,
            zipf_theta,
            value_size: 64,
        });
        for profile in pipeline_profiles() {
            let profile_name = profile.name();
            if !opts.profile_selected(&profile_name) {
                continue;
            }
            for depth in [1u32, 2] {
                // Each cell's snapshot must attribute only its own time,
                // and the commit-latency recorder only its own commits.
                obladi_obs::global().reset();
                obladi_obs::trace::global().reset();
                audit_ring.reset();
                let _ = obladi_common::stats::take_commit_latencies();
                let mut config = ShardConfig {
                    shards,
                    shard: shard_template(opts),
                    ..ShardConfig::default()
                };
                config.shard.epoch.pipeline_depth = depth;
                let built = profile
                    .build(shards, opts.seed)
                    .expect("in-process profiles cannot fail");
                let stores: Vec<Arc<dyn UntrustedStore>> = built
                    .stores
                    .iter()
                    .enumerate()
                    .map(|(index, store)| {
                        Arc::new(RecordingStore::new(
                            store.clone(),
                            audit_ring.clone(),
                            index as u32,
                        )) as Arc<dyn UntrustedStore>
                    })
                    .collect();
                let db = match ShardedDb::open_with_stores(config, stores) {
                    Ok(db) => db,
                    Err(err) => {
                        print_row(&[
                            profile_name.clone(),
                            mix.to_string(),
                            depth.to_string(),
                            format!("failed: {err}"),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                        continue;
                    }
                };
                let (_, stats) = run_deployment(&db, &workload, clients, opts.duration, opts.seed)
                    .expect("workload setup failed");
                let commit_latency = obladi_common::stats::take_commit_latencies();
                let sharded = db.stats();
                let total = stats.committed + stats.aborted;
                let abort_rate = if total == 0 {
                    0.0
                } else {
                    stats.aborted as f64 / total as f64
                };
                let epoch_period_ms = if sharded.global_epochs == 0 {
                    f64::INFINITY
                } else {
                    opts.duration.as_secs_f64() * 1000.0 / sharded.global_epochs as f64
                };
                print_row(&[
                    profile_name.clone(),
                    mix.to_string(),
                    depth.to_string(),
                    fmt1(stats.throughput()),
                    format!("{abort_rate:.3}"),
                    sharded.global_epochs.to_string(),
                    format!("{epoch_period_ms:.2}"),
                    format!("{:.2}", commit_latency.median().as_secs_f64() * 1000.0),
                ]);
                // Pull `daemon.*` metrics from any remote stores into the
                // local registry (as `daemon.{shard}.*`) while the
                // connections are still open, so `--metrics-out` unifies
                // cross-process telemetry.
                db.publish_daemon_metrics();
                db.shutdown();
                built.shutdown();
                // Snapshot after shutdown so final write-backs and
                // checkpoints land in the cell they belong to.
                let (phases, abort_causes) = attribute_cell(&obladi_obs::global().snapshot());
                cells.push(PipelineCell {
                    profile: profile_name.clone(),
                    mix,
                    depth,
                    committed_per_s: stats.throughput(),
                    abort_rate,
                    global_epochs: sharded.global_epochs,
                    epoch_period_ms,
                    commit_latency,
                    phases,
                    abort_causes,
                });
            }
        }
    }
    write_pipeline_json(opts, &cells);
    // The registry still holds the last cell's data; `--metrics-out`
    // captures it (CI's smoke step runs a single-cell sweep), and the
    // audit ring holds the last cell's adversary-view trace.
    write_metrics_out(opts);
    write_trace_out(opts, &audit_ring);
}

/// Records the sweep as `BENCH_shard_pipeline.json` (hand-formatted: the
/// vendored serde shim has no serializer).
fn write_pipeline_json(opts: &BenchOpts, cells: &[PipelineCell]) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"shard_pipeline\",\n  \"shards\": 3,\n  \"duration_s\": {:.1},\n  \
         \"seed\": {},\n  \"cells\": [\n",
        opts.duration.as_secs_f64(),
        opts.seed
    ));
    for (index, cell) in cells.iter().enumerate() {
        let comma = if index + 1 == cells.len() { "" } else { "," };
        // A zero-epoch cell has an infinite period; `null` keeps the file
        // valid JSON (`inf` would not be).
        let period = if cell.epoch_period_ms.is_finite() {
            format!("{:.2}", cell.epoch_period_ms)
        } else {
            "null".to_string()
        };
        // Client-observed commit latency; `null` for a cell that committed
        // nothing (a zeroed distribution would read as "instant").
        let commit_ms = if cell.commit_latency.is_empty() {
            "null".to_string()
        } else {
            format!(
                "{{\"p50\": {:.2}, \"p99\": {:.2}, \"max\": {:.2}}}",
                cell.commit_latency.median().as_secs_f64() * 1000.0,
                cell.commit_latency.p99().as_secs_f64() * 1000.0,
                cell.commit_latency.max().as_secs_f64() * 1000.0,
            )
        };
        json.push_str(&format!(
            "    {{\"profile\": \"{}\", \"mix\": \"{}\", \"pipeline_depth\": {}, \
             \"committed_per_s\": {:.1}, \"abort_rate\": {:.3}, \"global_epochs\": {}, \
             \"epoch_period_ms\": {period}, \"commit_latency_ms\": {commit_ms},\n",
            cell.profile,
            cell.mix,
            cell.depth,
            cell.committed_per_s,
            cell.abort_rate,
            cell.global_epochs,
        ));
        // Per-stage time attribution: where the cell's milliseconds went.
        json.push_str("     \"phases\": {");
        for (i, (name, h)) in cell.phases.iter().enumerate() {
            let comma = if i + 1 == cell.phases.len() { "" } else { "," };
            json.push_str(&format!(
                "\n       \"{name}\": {{\"count\": {}, \"total_ms\": {:.1}, \"mean_us\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{comma}",
                h.count,
                h.sum as f64 / 1000.0,
                h.mean(),
                h.p50(),
                h.p99(),
                h.max,
            ));
        }
        json.push_str("},\n");
        json.push_str("     \"abort_causes\": {");
        for (i, (cause, count)) in cell.abort_causes.iter().enumerate() {
            let comma = if i + 1 == cell.abort_causes.len() {
                ""
            } else {
                ","
            };
            json.push_str(&format!("\"{cause}\": {count}{comma}"));
        }
        json.push_str(&format!("}}}}{comma}\n"));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_shard_pipeline.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}
