//! Figure 11 / Table 11b: durability cost and recovery time (§11.3).

use crate::harness::{build_store, fmt1, print_header, print_row};
use crate::opts::BenchOpts;
use obladi_common::config::{BackendKind, EpochConfig, OramConfig};
use obladi_common::rng::DetRng;
use obladi_common::types::Key;
use obladi_core::DurabilityManager;
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, NoopPathLogger, RingOram};
use obladi_storage::{TrustedCounter, UntrustedStore};
use std::sync::Arc;
use std::time::Instant;

/// Result of one durability run.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityRun {
    /// Throughput with durability enabled divided by throughput without
    /// (the "Slowdown" row of Table 11b, reported as a ratio ≤ 1).
    pub slowdown: f64,
    /// Total recovery time in milliseconds.
    pub recovery_ms: f64,
    /// Time reading recovery data from storage.
    pub network_ms: f64,
    /// Position-map restore time.
    pub position_ms: f64,
    /// Permutation/bucket-metadata restore time.
    pub permutation_ms: f64,
    /// Path-replay time.
    pub paths_ms: f64,
}

struct EpochRunner<'a> {
    oram: RingOram,
    manager: &'a DurabilityManager,
    epoch: u64,
    batch_size: usize,
    rng: DetRng,
    keys: u64,
}

impl EpochRunner<'_> {
    /// Runs one epoch: a few read batches, a write batch, flush, checkpoint.
    fn run_epoch(&mut self, durable: bool) {
        self.manager.set_current_epoch(self.epoch);
        for _ in 0..3 {
            if durable {
                self.manager.begin_read_batch();
            }
            let reads: Vec<Option<Key>> = (0..self.batch_size)
                .map(|_| Some(self.rng.below(self.keys)))
                .collect();
            if durable {
                self.oram.read_batch(&reads, self.manager).unwrap();
            } else {
                self.oram.read_batch(&reads, &NoopPathLogger).unwrap();
            }
        }
        let writes: Vec<(Key, Vec<u8>)> = (0..self.batch_size / 2)
            .map(|_| {
                let k = self.rng.below(self.keys);
                (k, vec![k as u8; 32])
            })
            .collect();
        if durable {
            self.oram.write_batch(&writes, self.manager).unwrap();
            self.oram.flush_writes(self.manager).unwrap();
            self.manager
                .commit_epoch(self.epoch, &mut self.oram)
                .unwrap();
        } else {
            self.oram.write_batch(&writes, &NoopPathLogger).unwrap();
            self.oram.flush_writes(&NoopPathLogger).unwrap();
        }
        self.epoch += 1;
    }
}

fn populate(oram: &mut RingOram, keys: u64) {
    let writes: Vec<(Key, Vec<u8>)> = (0..keys).map(|k| (k, vec![k as u8; 32])).collect();
    for chunk in writes.chunks(512) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
}

/// Runs the durability experiment for one ORAM size: measures the
/// steady-state slowdown of checkpointing and the recovery-time breakdown.
pub fn durability_run(
    num_objects: u64,
    populated_keys: u64,
    checkpoint_every: u32,
    opts: &BenchOpts,
) -> DurabilityRun {
    let backend = BackendKind::Server;
    let store: Arc<dyn UntrustedStore> = build_store(backend, opts);
    let keys = KeyMaterial::for_tests(opts.seed);
    let z = if opts.full { 100 } else { 16 };
    let config = OramConfig::for_capacity(num_objects, z)
        .with_block_size(64)
        .with_max_stash(2_048);
    let epoch_config = EpochConfig::default()
        .with_checkpoint_every(checkpoint_every)
        .with_read_batch_size(64)
        .with_read_batches(3)
        .with_write_batch_size(64);
    let exec = ExecOptions::parallel(32).with_fast_init();
    let batch_size = 64;
    let epochs = if opts.full { 12 } else { 6 };

    // --- Baseline: durability off. ---
    let baseline_manager = DurabilityManager::new(
        &keys,
        store.clone(),
        TrustedCounter::new(),
        &epoch_config.with_durability(false),
    );
    let mut baseline = EpochRunner {
        oram: RingOram::new(config, &keys, store.clone(), exec, opts.seed).unwrap(),
        manager: &baseline_manager,
        epoch: 1,
        batch_size,
        rng: DetRng::new(opts.seed),
        keys: populated_keys,
    };
    populate(&mut baseline.oram, populated_keys);
    let start = Instant::now();
    for _ in 0..epochs {
        baseline.run_epoch(false);
    }
    let baseline_tput = (epochs * batch_size * 3) as f64 / start.elapsed().as_secs_f64();

    // --- Durability on, then crash and recover. ---
    let store2: Arc<dyn UntrustedStore> = build_store(backend, opts);
    let counter = TrustedCounter::new();
    let manager = DurabilityManager::new(&keys, store2.clone(), counter, &epoch_config);
    let mut durable = EpochRunner {
        oram: RingOram::new(config, &keys, store2.clone(), exec, opts.seed).unwrap(),
        manager: &manager,
        epoch: 1,
        batch_size,
        rng: DetRng::new(opts.seed),
        keys: populated_keys,
    };
    populate(&mut durable.oram, populated_keys);
    let start = Instant::now();
    for _ in 0..epochs {
        durable.run_epoch(true);
    }
    let durable_tput = (epochs * batch_size * 3) as f64 / start.elapsed().as_secs_f64();

    // Start an epoch that never commits (this is what recovery replays).
    let aborted_epoch = durable.epoch;
    manager.set_current_epoch(aborted_epoch);
    manager.begin_read_batch();
    let reads: Vec<Option<Key>> = (0..batch_size)
        .map(|_| Some(durable.rng.below(populated_keys)))
        .collect();
    durable.oram.read_batch(&reads, &manager).unwrap();
    let oram_config = *durable.oram.config();
    drop(durable);

    let (_recovered, _epoch, report) = manager
        .recover(oram_config, &keys, exec, opts.seed)
        .expect("recovery failed");

    DurabilityRun {
        slowdown: durable_tput / baseline_tput.max(1e-9),
        recovery_ms: report.total_ms,
        network_ms: report.network_ms,
        position_ms: report.position_ms,
        permutation_ms: report.permutation_ms,
        paths_ms: report.paths_ms,
    }
}

/// Figure 11a: throughput as a function of the full-checkpoint frequency.
pub fn run_fig11a(opts: &BenchOpts) {
    let frequencies: Vec<u32> = if opts.full {
        vec![1, 4, 16, 64, 256]
    } else {
        vec![1, 4, 16, 64]
    };
    print_header(
        "Figure 11a — checkpoint frequency vs relative throughput (100K-object ORAM)",
        &["checkpoint_every", "slowdown_vs_no_durability"],
    );
    let objects = if opts.full { 100_000 } else { 20_000 };
    for &freq in &frequencies {
        let run = durability_run(objects, 2_000, freq, opts);
        print_row(&[freq.to_string(), format!("{:.3}", run.slowdown)]);
    }
}

/// Table 11b: recovery-time breakdown per ORAM size.
pub fn run_fig11b(opts: &BenchOpts) {
    let sizes: Vec<(u64, u64, &str)> = if opts.full {
        vec![
            (10_000, 2_000, "10K"),
            (100_000, 5_000, "100K"),
            (1_000_000, 10_000, "1M"),
        ]
    } else {
        vec![(10_000, 1_000, "10K"), (50_000, 2_000, "50K")]
    };
    print_header(
        "Table 11b — recovery time breakdown (ms)",
        &[
            "size",
            "slowdown",
            "rec_time_ms",
            "network_ms",
            "pos_ms",
            "perm_ms",
            "paths_ms",
        ],
    );
    for (objects, populated, label) in sizes {
        let run = durability_run(objects, populated, 4, opts);
        print_row(&[
            label.to_string(),
            format!("{:.2}", run.slowdown),
            fmt1(run.recovery_ms),
            fmt1(run.network_ms),
            fmt1(run.position_ms),
            fmt1(run.permutation_ms),
            fmt1(run.paths_ms),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_run_smoke() {
        let opts = BenchOpts::smoke();
        let run = durability_run(2_000, 200, 2, &opts);
        assert!(run.slowdown > 0.0, "slowdown must be a positive ratio");
        assert!(run.recovery_ms >= 0.0);
        assert!(
            run.recovery_ms + 1e-9 >= 0.0_f64.max(run.paths_ms * 0.0),
            "sanity"
        );
    }
}
