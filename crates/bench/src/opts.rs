//! Command-line options shared by all benchmark binaries.

use std::time::Duration;

/// Options controlling benchmark scale.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Run the full-scale configuration (larger trees, longer windows,
    /// unscaled latencies).  Default is a quick mode that preserves shape.
    pub full: bool,
    /// Factor applied to simulated storage latencies (1.0 = the paper's
    /// nominal values).
    pub latency_scale: f64,
    /// Measurement window per data point.
    pub duration: Duration,
    /// Closed-loop client threads for application benchmarks.
    pub clients: usize,
    /// Random seed.
    pub seed: u64,
    /// Write the full metrics-registry snapshot (JSON) to this path after
    /// the run.
    pub metrics_out: Option<String>,
    /// Write the adversary-view access trace (JSON) to this path after the
    /// run, for bins that install the trace recorder.
    pub trace_out: Option<String>,
    /// Restrict sweeps to storage profiles whose name contains this
    /// substring (CI smoke cells).
    pub profile: Option<String>,
    /// Restrict sweeps to the named workload mix (CI smoke cells).
    pub mix: Option<String>,
}

impl BenchOpts {
    /// Parses options from the process arguments.
    ///
    /// Supported flags: `--full`, `--scale <f64>`, `--seconds <u64>`,
    /// `--clients <usize>`, `--seed <u64>`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_slice(&args)
    }

    /// Parses options from an explicit argument list (tests).
    pub fn from_slice(args: &[String]) -> Self {
        let mut opts = BenchOpts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--metrics-out" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.metrics_out = Some(v.clone());
                        i += 1;
                    }
                }
                "--trace-out" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.trace_out = Some(v.clone());
                        i += 1;
                    }
                }
                "--profile" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.profile = Some(v.clone());
                        i += 1;
                    }
                }
                "--mix" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.mix = Some(v.clone());
                        i += 1;
                    }
                }
                "--full" => {
                    opts.full = true;
                    opts.latency_scale = 1.0;
                    opts.duration = Duration::from_secs(20);
                    opts.clients = 32;
                }
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.latency_scale = v;
                        i += 1;
                    }
                }
                "--seconds" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.duration = Duration::from_secs(v);
                        i += 1;
                    }
                }
                "--clients" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.clients = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Whether `profile_name` passes the `--profile` substring filter.
    pub fn profile_selected(&self, profile_name: &str) -> bool {
        self.profile
            .as_deref()
            .is_none_or(|want| profile_name.contains(want))
    }

    /// Whether `mix_name` passes the `--mix` filter (exact match).
    pub fn mix_selected(&self, mix_name: &str) -> bool {
        self.mix.as_deref().is_none_or(|want| mix_name == want)
    }

    /// A very small configuration used by smoke tests of the harness itself.
    pub fn smoke() -> Self {
        BenchOpts {
            full: false,
            latency_scale: 0.0,
            duration: Duration::from_millis(300),
            clients: 2,
            seed: 7,
            metrics_out: None,
            trace_out: None,
            profile: None,
            mix: None,
        }
    }
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            full: false,
            latency_scale: 0.05,
            duration: Duration::from_secs(3),
            clients: 16,
            seed: 42,
            metrics_out: None,
            trace_out: None,
            profile: None,
            mix: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_are_quick_mode() {
        let opts = BenchOpts::from_slice(&[]);
        assert!(!opts.full);
        assert!(opts.latency_scale < 1.0);
    }

    #[test]
    fn full_flag_switches_to_paper_scale() {
        let opts = BenchOpts::from_slice(&s(&["bench", "--full"]));
        assert!(opts.full);
        assert_eq!(opts.latency_scale, 1.0);
    }

    #[test]
    fn individual_flags_parse() {
        let opts = BenchOpts::from_slice(&s(&[
            "bench",
            "--scale",
            "0.5",
            "--seconds",
            "9",
            "--clients",
            "4",
            "--seed",
            "123",
        ]));
        assert_eq!(opts.latency_scale, 0.5);
        assert_eq!(opts.duration, Duration::from_secs(9));
        assert_eq!(opts.clients, 4);
        assert_eq!(opts.seed, 123);
    }

    #[test]
    fn output_paths_parse() {
        let opts = BenchOpts::from_slice(&s(&[
            "bench",
            "--metrics-out",
            "m.json",
            "--trace-out",
            "t.json",
        ]));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
    }

    #[test]
    fn malformed_values_are_ignored() {
        let opts = BenchOpts::from_slice(&s(&["bench", "--scale", "not-a-number"]));
        assert_eq!(opts.latency_scale, BenchOpts::default().latency_scale);
    }
}
