//! Figure 9: end-to-end application performance (§11.1).
//!
//! Runs TPC-C, SmallBank and FreeHealth on five engines — MySQL-like 2PL,
//! NoPriv (local and WAN) and Obladi (local and WAN) — and prints throughput
//! (Figure 9a) and latency (Figure 9b) rows.
//!
//! Scale notes: the default (quick) mode uses reduced table cardinalities
//! and scaled-down storage latencies so the whole figure regenerates in a
//! few minutes; the comparisons the paper makes (Obladi within roughly an
//! order of magnitude of NoPriv's throughput, latency one to two orders of
//! magnitude higher, FreeHealth closest because of its small write batches)
//! are preserved.  `--full` increases cardinalities, client counts and
//! latencies.

use crate::harness::{app_obladi_config, build_store, fmt1, print_header, print_row};
use crate::opts::BenchOpts;
use obladi_common::config::BackendKind;
use obladi_common::stats::RunStats;
use obladi_core::{NoPrivDb, ObladiDb, TwoPhaseLockingDb};
use obladi_crypto::KeyMaterial;
use obladi_storage::TrustedCounter;
use obladi_workloads::{
    run_closed_loop, FreeHealthConfig, FreeHealthWorkload, SmallBankConfig, SmallBankWorkload,
    TpccConfig, TpccWorkload, Workload,
};
use std::time::Duration;

/// Closed-loop client count used for Obladi runs of an application (bounded
/// by the application's epoch read capacity so transactions fit).
fn obladi_clients(app: &str, opts: &BenchOpts) -> usize {
    let base = match app {
        "tpcc" => 16,
        "smallbank" => 48,
        _ => 32,
    };
    if opts.full {
        base * 4
    } else {
        base
    }
}

/// One engine's measurement.
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// Engine label as used in the paper's legends.
    pub engine: &'static str,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean latency in milliseconds.
    pub mean_latency_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Abort rate (fraction).
    pub abort_rate: f64,
}

fn result(engine: &'static str, stats: &RunStats) -> EngineResult {
    EngineResult {
        engine,
        throughput: stats.throughput(),
        mean_latency_ms: stats.latency.mean().as_secs_f64() * 1000.0,
        p99_latency_ms: stats.latency.p99().as_secs_f64() * 1000.0,
        abort_rate: stats.abort_rate(),
    }
}

/// Runs one workload on the MySQL-like 2PL engine.
fn bench_mysql<W: Workload>(workload: &W, opts: &BenchOpts) -> EngineResult {
    let db = TwoPhaseLockingDb::new();
    workload.setup(&db).expect("2PL setup failed");
    let stats = run_closed_loop(&db, workload, opts.clients, opts.duration, opts.seed);
    result("MySQL(2PL)", &stats)
}

/// Runs one workload on NoPriv over the given backend.
fn bench_nopriv<W: Workload>(
    workload: &W,
    backend: BackendKind,
    engine: &'static str,
    opts: &BenchOpts,
) -> EngineResult {
    let store = build_store(backend, opts);
    let db = NoPrivDb::new(store);
    workload.setup(&db).expect("NoPriv setup failed");
    let stats = run_closed_loop(&db, workload, opts.clients, opts.duration, opts.seed);
    result(engine, &stats)
}

/// Runs one workload on Obladi over the given backend.
fn bench_obladi<W: Workload>(
    app: &str,
    workload: &W,
    rows: u64,
    backend: BackendKind,
    engine: &'static str,
    opts: &BenchOpts,
) -> EngineResult {
    let config = app_obladi_config(app, rows, backend, opts);
    let store = build_store(backend, opts);
    let db = ObladiDb::open_with(
        config,
        store,
        TrustedCounter::new(),
        KeyMaterial::for_tests(opts.seed),
    )
    .expect("failed to open Obladi");
    workload.setup(&db).expect("Obladi setup failed");
    let stats = run_closed_loop(
        &db,
        workload,
        obladi_clients(app, opts),
        opts.duration,
        opts.seed,
    );
    db.shutdown();
    result(engine, &stats)
}

/// Runs Obladi only, with an explicit batch interval, and returns throughput
/// (used by the Figure 10f epoch-duration sweep).
pub fn bench_obladi_only<W: Workload>(
    app: &str,
    workload: &W,
    rows: u64,
    batch_interval_ms: u64,
    opts: &BenchOpts,
) -> f64 {
    let mut config = app_obladi_config(app, rows, BackendKind::Server, opts);
    config.epoch.batch_interval = Duration::from_millis(batch_interval_ms);
    let store = build_store(BackendKind::Server, opts);
    let db = ObladiDb::open_with(
        config,
        store,
        TrustedCounter::new(),
        KeyMaterial::for_tests(opts.seed),
    )
    .expect("failed to open Obladi");
    workload.setup(&db).expect("Obladi setup failed");
    let stats = run_closed_loop(
        &db,
        workload,
        obladi_clients(app, opts),
        opts.duration,
        opts.seed,
    );
    db.shutdown();
    stats.throughput()
}

/// Benchmarks one application on all five engines and prints both the
/// throughput and latency rows.
pub fn bench_app<W: Workload>(app: &'static str, workload: &W, rows: u64, opts: &BenchOpts) {
    let results = vec![
        bench_obladi(app, workload, rows, BackendKind::Server, "Obladi", opts),
        bench_nopriv(workload, BackendKind::Server, "NoPriv", opts),
        bench_mysql(workload, opts),
        bench_obladi(app, workload, rows, BackendKind::ServerWan, "ObladiW", opts),
        bench_nopriv(workload, BackendKind::ServerWan, "NoPrivW", opts),
    ];

    print_header(
        &format!("Figure 9 — {app}: throughput and latency"),
        &[
            "engine",
            "throughput_txn_s",
            "mean_latency_ms",
            "p99_latency_ms",
            "abort_rate",
        ],
    );
    for r in &results {
        print_row(&[
            r.engine.to_string(),
            fmt1(r.throughput),
            fmt1(r.mean_latency_ms),
            fmt1(r.p99_latency_ms),
            format!("{:.3}", r.abort_rate),
        ]);
    }
    // Summary ratios the paper quotes.
    let obladi = &results[0];
    let nopriv = &results[1];
    if obladi.throughput > 0.0 && nopriv.throughput > 0.0 {
        println!(
            "# {app}: NoPriv/Obladi throughput ratio = {:.1}x, Obladi/NoPriv latency ratio = {:.1}x",
            nopriv.throughput / obladi.throughput,
            obladi.mean_latency_ms / nopriv.mean_latency_ms.max(1e-6),
        );
    }
}

/// Workload sizes for the quick and full modes.
pub fn tpcc_workload(opts: &BenchOpts) -> (TpccWorkload, u64) {
    let config = if opts.full {
        TpccConfig::benchmark(10)
    } else {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 4,
            customers_per_district: 30,
            items: 200,
            last_names: 8,
            stock_level_orders: 3,
            max_order_lines: 6,
        }
    };
    let rows = config.items
        + config.warehouses
            * (1 + config.items
                + config.districts_per_warehouse
                    * (1 + config.customers_per_district + config.last_names));
    (TpccWorkload::new(config), rows)
}

/// SmallBank workload for the current mode.
pub fn smallbank_workload(opts: &BenchOpts) -> (SmallBankWorkload, u64) {
    let config = if opts.full {
        SmallBankConfig {
            num_accounts: 20_000,
            hotspot_fraction: 0.01,
            hotspot_probability: 0.25,
        }
    } else {
        SmallBankConfig {
            num_accounts: 600,
            hotspot_fraction: 0.05,
            hotspot_probability: 0.25,
        }
    };
    let rows = config.num_accounts * 2;
    (SmallBankWorkload::new(config), rows)
}

/// FreeHealth workload for the current mode.
pub fn freehealth_workload(opts: &BenchOpts) -> (FreeHealthWorkload, u64) {
    let config = if opts.full {
        FreeHealthConfig::benchmark()
    } else {
        FreeHealthConfig {
            users: 8,
            patients: 150,
            drugs: 50,
            episodes_per_patient: 2,
            list_limit: 3,
        }
    };
    let rows =
        config.users + config.drugs + config.patients * (2 + config.episodes_per_patient * 2);
    (FreeHealthWorkload::new(config), rows)
}

/// Runs the complete Figure 9 experiment (all three applications).
pub fn run_fig09(opts: &BenchOpts) {
    {
        let (workload, rows) = tpcc_workload(opts);
        bench_app("tpcc", &workload, rows, opts);
    }
    {
        let (workload, rows) = smallbank_workload(opts);
        bench_app("smallbank", &workload, rows, opts);
    }
    {
        let (workload, rows) = freehealth_workload(opts);
        bench_app("freehealth", &workload, rows, opts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mysql_and_nopriv_engines_run_smallbank_smoke() {
        let mut opts = BenchOpts::smoke();
        opts.duration = Duration::from_millis(200);
        let workload = SmallBankWorkload::new(SmallBankConfig {
            num_accounts: 40,
            hotspot_fraction: 0.1,
            hotspot_probability: 0.25,
        });
        let mysql = bench_mysql(&workload, &opts);
        assert!(mysql.throughput > 0.0);
        let nopriv = bench_nopriv(&workload, BackendKind::Dummy, "NoPriv", &opts);
        assert!(nopriv.throughput > 0.0);
    }

    #[test]
    fn obladi_engine_runs_smallbank_smoke() {
        let mut opts = BenchOpts::smoke();
        opts.duration = Duration::from_millis(400);
        let workload = SmallBankWorkload::new(SmallBankConfig {
            num_accounts: 32,
            hotspot_fraction: 0.1,
            hotspot_probability: 0.2,
        });
        let result = bench_obladi(
            "smallbank",
            &workload,
            64,
            BackendKind::Dummy,
            "Obladi",
            &opts,
        );
        assert!(
            result.throughput > 0.0,
            "Obladi must commit transactions in the smoke benchmark"
        );
    }
}
