//! Shared builders and table-printing helpers for the benchmark binaries.

use crate::opts::BenchOpts;
use obladi_common::config::{BackendKind, EpochConfig, ObladiConfig, OramConfig};
use obladi_common::latency::LatencyProfile;
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, RingOram};
use obladi_storage::{InMemoryStore, LatencyStore, TrustedCounter, UntrustedStore};
use std::sync::Arc;
use std::time::Duration;

/// Prints a table header row.
pub fn print_header(title: &str, columns: &[&str]) {
    println!();
    println!("== {title} ==");
    println!("{}", columns.join("\t"));
}

/// Prints a table data row.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float with one decimal place.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Dumps the global metrics registry as JSON to `--metrics-out <path>`, if
/// the flag was given.  Every benchmark binary calls this after its run so
/// any experiment's instrumentation can be captured without code changes.
pub fn write_metrics_out(opts: &BenchOpts) {
    let Some(path) = opts.metrics_out.as_deref() else {
        return;
    };
    let json = obladi_obs::report::render_json(&obladi_obs::global().snapshot(), 0);
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote metrics snapshot to {path}"),
        Err(err) => eprintln!("could not write metrics snapshot {path}: {err}"),
    }
}

/// Dumps a recorded adversary-view trace as JSON to `--trace-out <path>`,
/// if the flag was given.  Bins that install the trace recorder call this
/// with the ring of their final (or only) cell.
pub fn write_trace_out(opts: &BenchOpts, ring: &obladi_obs::audit::AuditRing) {
    let Some(path) = opts.trace_out.as_deref() else {
        return;
    };
    let json = obladi_obs::audit::render_audit_json(&ring.ops(), ring.dropped(), 0);
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote adversary-view trace to {path}"),
        Err(err) => eprintln!("could not write adversary-view trace {path}: {err}"),
    }
}

/// Builds a latency-wrapped in-memory store for a backend kind.
pub fn build_store(kind: BackendKind, opts: &BenchOpts) -> Arc<dyn UntrustedStore> {
    let profile = LatencyProfile::for_backend(kind).scaled(opts.latency_scale);
    Arc::new(LatencyStore::new(
        Arc::new(InMemoryStore::new()),
        profile,
        opts.seed,
    ))
}

/// ORAM tree configuration used by the micro-benchmarks (Figure 10):
/// a 10K-object tree in quick mode, the paper's 100K-object tree with
/// `Z = 100` in `--full` mode.
pub fn micro_oram_config(opts: &BenchOpts) -> OramConfig {
    // The stash bound must accommodate a full batch of targets between
    // evictions (the executor defers maintenance to batch boundaries).
    if opts.full {
        OramConfig::for_capacity(100_000, 100)
            .with_block_size(64)
            .with_max_stash(16_384)
    } else {
        OramConfig::for_capacity(10_000, 16)
            .with_block_size(64)
            .with_max_stash(8_192)
    }
}

/// Builds a [`RingOram`] client over `kind` storage with the given executor
/// options.
pub fn build_oram(
    kind: BackendKind,
    opts: &BenchOpts,
    exec: ExecOptions,
    config: OramConfig,
) -> RingOram {
    let store = build_store(kind, opts);
    let keys = KeyMaterial::for_tests(opts.seed);
    RingOram::new(config, &keys, store, exec.with_fast_init(), opts.seed)
        .expect("failed to build ORAM")
}

/// Number of executor threads used for parallel ORAM runs.
pub fn parallel_threads(kind: BackendKind, opts: &BenchOpts) -> usize {
    match kind {
        // High-latency backends benefit from many outstanding requests.
        BackendKind::ServerWan => {
            if opts.full {
                256
            } else {
                128
            }
        }
        BackendKind::Dynamo => 64,
        BackendKind::Server => 64,
        BackendKind::Dummy => 16,
    }
}

/// Epoch configuration used for application benchmarks on Obladi, loosely
/// derived from the per-application settings of §11.1 but scaled to the
/// quick-mode table sizes.
pub fn app_epoch_config(app: &str, opts: &BenchOpts) -> EpochConfig {
    let scale = if opts.full { 4 } else { 1 };
    // Each sequentially-issued dependent read consumes one read batch
    // (§6.4), so R must cover the longest read chain of the application's
    // transactions: large for TPC-C (NewOrder/StockLevel walk items and
    // order lines one by one), moderate for FreeHealth, small for SmallBank.
    match app {
        // TPC-C: many read batches and a large write batch.
        "tpcc" => EpochConfig::default()
            .with_read_batches(20)
            .with_read_batch_size(32 * scale)
            .with_write_batch_size(256 * scale)
            .with_batch_interval(Duration::from_millis(2))
            .with_executor_threads(32)
            .with_checkpoint_every(16),
        // SmallBank: short homogeneous transactions, smaller epochs.
        "smallbank" => EpochConfig::default()
            .with_read_batches(4)
            .with_read_batch_size(64 * scale)
            .with_write_batch_size(96 * scale)
            .with_batch_interval(Duration::from_millis(3))
            .with_executor_threads(32)
            .with_checkpoint_every(16),
        // FreeHealth: read-heavy, many small read batches, small write batch.
        _ => EpochConfig::default()
            .with_read_batches(10)
            .with_read_batch_size(48 * scale)
            .with_write_batch_size(48 * scale)
            .with_batch_interval(Duration::from_millis(2))
            .with_executor_threads(32)
            .with_checkpoint_every(16),
    }
}

/// ORAM configuration for application benchmarks (sized to the loaded
/// tables).
pub fn app_oram_config(num_rows: u64, opts: &BenchOpts) -> OramConfig {
    let z = if opts.full { 32 } else { 16 };
    OramConfig::for_capacity(num_rows.max(1024) * 2, z)
        .with_block_size(160)
        .with_max_stash(4 * z as usize + 256)
}

/// Assembles a full Obladi configuration for an application benchmark.
pub fn app_obladi_config(
    app: &str,
    num_rows: u64,
    backend: BackendKind,
    opts: &BenchOpts,
) -> ObladiConfig {
    ObladiConfig {
        oram: app_oram_config(num_rows, opts),
        epoch: app_epoch_config(app, opts),
        backend,
        latency_scale: opts.latency_scale,
        seed: opts.seed,
    }
}

/// Builds a fresh trusted counter (helper so binaries avoid importing
/// storage directly).
pub fn counter() -> Arc<TrustedCounter> {
    TrustedCounter::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_scales_with_mode() {
        let quick = micro_oram_config(&BenchOpts::default());
        let full_opts = BenchOpts {
            full: true,
            ..BenchOpts::default()
        };
        let full = micro_oram_config(&full_opts);
        assert!(full.num_objects > quick.num_objects);
        assert_eq!(full.z, 100);
        quick.validate().unwrap();
        full.validate().unwrap();
    }

    #[test]
    fn app_configs_validate() {
        let opts = BenchOpts::default();
        for app in ["tpcc", "smallbank", "freehealth"] {
            let config = app_obladi_config(app, 5_000, BackendKind::Server, &opts);
            config.validate().unwrap();
        }
    }

    #[test]
    fn build_oram_smoke() {
        let opts = BenchOpts::smoke();
        let config = OramConfig::small_for_tests(256);
        let mut oram = build_oram(BackendKind::Dummy, &opts, ExecOptions::parallel(2), config);
        oram.write_batch(&[(1, vec![1; 8])], &obladi_oram::NoopPathLogger)
            .unwrap();
        oram.flush_writes(&obladi_oram::NoopPathLogger).unwrap();
        let out = oram
            .read_batch(&[Some(1)], &obladi_oram::NoopPathLogger)
            .unwrap();
        assert_eq!(out[0], Some(vec![1; 8]));
    }

    #[test]
    fn thread_counts_grow_with_latency() {
        let opts = BenchOpts::default();
        assert!(
            parallel_threads(BackendKind::ServerWan, &opts)
                > parallel_threads(BackendKind::Dummy, &opts)
        );
    }
}
