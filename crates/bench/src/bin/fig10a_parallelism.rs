//! Regenerates Figure 10a (ORAM parallelism).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10a(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
