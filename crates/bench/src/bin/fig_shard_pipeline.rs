//! Runs the pipelined-epoch-barrier sweep: barrier (depth 1) vs pipelined
//! (depth 2) global epoch period and throughput across storage latency
//! profiles, on a 3-shard deployment.  Records `BENCH_shard_pipeline.json`.
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig_shard::run_fig_shard_pipeline(&opts);
}
