//! Runs the observability-overhead cell: the same YCSB load with metrics
//! enabled vs disabled in interleaved best-of-N rounds, failing (non-zero
//! exit) if the enabled arm loses more than 1% throughput.
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::obs_overhead::run_obs_overhead(&opts);
}
