//! Regenerates Figure 9 (application throughput and latency).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig09::run_fig09(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
