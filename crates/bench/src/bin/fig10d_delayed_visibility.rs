//! Regenerates Figure 10d (delayed visibility / buffered write-back).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10d(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
