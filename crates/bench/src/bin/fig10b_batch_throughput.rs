//! Regenerates Figure 10b (batch size vs throughput).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10bc(&opts, false);
    obladi_bench::harness::write_metrics_out(&opts);
}
