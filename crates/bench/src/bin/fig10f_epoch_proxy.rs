//! Regenerates Figure 10f (epoch duration vs application throughput).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10f(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
