//! Regenerates Figure 10c (batch size vs latency).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10bc(&opts, true);
    obladi_bench::harness::write_metrics_out(&opts);
}
