//! Regenerates Figure 11a (checkpoint frequency vs throughput).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig11::run_fig11a(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
