//! Runs every figure and table of the evaluation in sequence.
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    println!("# Obladi reproduction — full evaluation run");
    println!("# mode: {}", if opts.full { "full" } else { "quick" });
    obladi_bench::fig10::run_fig10a(&opts);
    obladi_bench::fig10::run_fig10bc(&opts, false);
    obladi_bench::fig10::run_fig10bc(&opts, true);
    obladi_bench::fig10::run_fig10d(&opts);
    obladi_bench::fig10::run_fig10e(&opts);
    obladi_bench::fig11::run_fig11a(&opts);
    obladi_bench::fig11::run_fig11b(&opts);
    obladi_bench::fig09::run_fig09(&opts);
    obladi_bench::fig10::run_fig10f(&opts);
    obladi_bench::ablation::run_ablation(&opts);
    obladi_bench::fig_shard::run_fig_shard(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
