//! Regenerates Table 11b (recovery time breakdown).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig11::run_fig11b(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
