//! Runs the ablation table over Obladi's proxy mechanisms (see
//! `obladi_bench::ablation` and EXPERIMENTS.md).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::ablation::run_ablation(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
