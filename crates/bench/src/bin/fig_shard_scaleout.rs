//! Runs the shard-count scale-out sweep (YCSB through the sharded front
//! door at 1 / 2 / 4 / 8 shards).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig_shard::run_fig_shard(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
