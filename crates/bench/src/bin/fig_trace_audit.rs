//! Adversary-view trace audit: runs contrasting workloads over recording
//! stores and requires their traces to be indistinguishable (the §9
//! obliviousness argument, made executable).  With `--mutate`, arms the
//! test-only dummy-pad leak and succeeds only if the auditor catches it.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mutate = args.iter().any(|arg| arg == "--mutate");
    let opts = obladi_bench::BenchOpts::from_args();
    if !obladi_bench::fig_trace_audit::run_fig_trace_audit(&opts, mutate) {
        std::process::exit(1);
    }
}
