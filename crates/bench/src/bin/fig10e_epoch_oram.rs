//! Regenerates Figure 10e (epoch size impact on the ORAM).
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig10::run_fig10e(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
