//! Runs the storage-transport sweep: in-process trait-object storage vs
//! remote-socket storage (spawned `obladi-stored` daemons where the binary
//! is available), across two YCSB mixes, recording epoch throughput and
//! the client-side pipelining ratio.  Writes `BENCH_transport.json`.
fn main() {
    let opts = obladi_bench::BenchOpts::from_args();
    obladi_bench::fig_transport::run_fig_transport(&opts);
    obladi_bench::harness::write_metrics_out(&opts);
}
