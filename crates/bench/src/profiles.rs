//! Shared per-shard storage profiles for the scale-out experiments.
//!
//! `fig_shard_scaleout` and `fig_shard_pipeline` used to re-derive their
//! storage stacks ad hoc; this module is the one place a benchmark says
//! *what the storage under each shard looks like*:
//!
//! * [`StorageProfile::Memory`] — bare in-memory stores (zero latency);
//! * [`StorageProfile::UniformLatency`] — every shard pays the same
//!   simulated round-trip latency;
//! * [`StorageProfile::OneSlowShard`] — a single straggler shard (the
//!   pipeline experiment's win case: everyone else overlaps its decision);
//! * [`StorageProfile::RemoteSocket`] — each shard talks framed RPC to
//!   its own storage server across a real socket: spawned `obladi-stored`
//!   daemons when the binary can be located, in-process socket servers
//!   otherwise (same wire, same codec, no child processes).

use obladi_common::config::BackendKind;
use obladi_common::error::Result;
use obladi_common::latency::{LatencyModel, LatencyProfile};
use obladi_storage::{InMemoryStore, LatencyStore, UntrustedStore};
use obladi_transport::{
    locate_stored_binary, serve, RemoteStore, ServerHandle, SocketSpec, StorageSupervisor,
    TransportStats,
};
use std::sync::Arc;
use std::time::Duration;

/// The storage shape under every shard of a benchmark deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageProfile {
    /// Bare in-memory stores: zero latency, in-process.
    Memory,
    /// Every shard's store simulates the same read/write latency.
    UniformLatency(Duration),
    /// One shard's *reads* are slow; the rest are bare memory.  The
    /// straggler holds the epoch rendezvous open, which is exactly the
    /// window the pipelined barrier monetises.
    OneSlowShard {
        /// Index of the straggler shard.
        shard: usize,
        /// Its simulated read latency.
        read_latency: Duration,
    },
    /// Each shard against its own storage server across a socket.
    RemoteSocket,
}

impl StorageProfile {
    /// Label used in table rows and the JSON records.
    pub fn name(&self) -> String {
        match self {
            StorageProfile::Memory => "memory".to_string(),
            StorageProfile::UniformLatency(latency) => {
                format!("uniform{}us", latency.as_micros())
            }
            StorageProfile::OneSlowShard {
                shard,
                read_latency,
            } => format!("slow-shard{shard}-{}ms", read_latency.as_millis()),
            StorageProfile::RemoteSocket => "remote-socket".to_string(),
        }
    }

    /// Builds one store per shard.  The returned [`BuiltStorage`] owns
    /// whatever infrastructure backs them (daemon processes or in-process
    /// socket servers) — keep it alive for the duration of the run.
    pub fn build(&self, shards: usize, seed: u64) -> Result<BuiltStorage> {
        let mut built = BuiltStorage {
            stores: Vec::with_capacity(shards),
            remotes: Vec::new(),
            mode: "in-process",
            supervisor: None,
            servers: Vec::new(),
        };
        match self {
            StorageProfile::Memory => {
                for _ in 0..shards {
                    built.stores.push(Arc::new(InMemoryStore::new()));
                }
            }
            StorageProfile::UniformLatency(latency) => {
                for index in 0..shards {
                    built.stores.push(latency_store(
                        flat_profile(*latency, *latency),
                        seed ^ (index as u64 + 1),
                    ));
                }
            }
            StorageProfile::OneSlowShard {
                shard,
                read_latency,
            } => {
                for index in 0..shards {
                    if index == *shard {
                        built.stores.push(latency_store(
                            flat_profile(*read_latency, Duration::ZERO),
                            seed ^ (index as u64 + 1),
                        ));
                    } else {
                        built.stores.push(Arc::new(InMemoryStore::new()));
                    }
                }
            }
            StorageProfile::RemoteSocket => match locate_stored_binary() {
                Ok(_) => {
                    let supervisor = StorageSupervisor::spawn(shards)?;
                    for index in 0..shards {
                        let remote = Arc::new(RemoteStore::connect(
                            supervisor.addr(index),
                            Duration::from_secs(10),
                        )?);
                        built.remotes.push(remote.clone());
                        built.stores.push(remote);
                    }
                    built.supervisor = Some(supervisor);
                    built.mode = "daemon";
                }
                Err(_) => {
                    // No daemon binary around (e.g. `cargo run -p
                    // obladi-bench` without building obladi-transport's
                    // bins): host the servers on threads instead.  The
                    // wire, codec and pipelining are identical; only the
                    // process boundary is missing.
                    for _ in 0..shards {
                        let server_store: Arc<dyn UntrustedStore> = Arc::new(InMemoryStore::new());
                        let spec = SocketSpec::parse("tcp:127.0.0.1:0")?;
                        let handle = serve(&spec, server_store)?;
                        let remote = Arc::new(RemoteStore::connect(
                            handle.spec().clone(),
                            Duration::from_secs(10),
                        )?);
                        built.remotes.push(remote.clone());
                        built.stores.push(remote);
                        built.servers.push(handle);
                    }
                    built.mode = "in-thread";
                }
            },
        }
        Ok(built)
    }
}

fn flat_profile(read: Duration, write: Duration) -> LatencyProfile {
    let mut profile = LatencyProfile::for_backend(BackendKind::Dummy);
    profile.read = LatencyModel::with_mean(read);
    profile.write = LatencyModel::with_mean(write);
    profile
}

fn latency_store(profile: LatencyProfile, seed: u64) -> Arc<dyn UntrustedStore> {
    Arc::new(LatencyStore::new(
        Arc::new(InMemoryStore::new()),
        profile,
        seed,
    ))
}

/// The stores built for one benchmark deployment, plus whatever backs
/// them.
pub struct BuiltStorage {
    /// One store per shard, in shard order (feed to
    /// `ShardedDb::open_with_stores`).
    pub stores: Vec<Arc<dyn UntrustedStore>>,
    /// The same stores as typed remote clients when the profile is
    /// [`StorageProfile::RemoteSocket`] (for transport statistics).
    pub remotes: Vec<Arc<RemoteStore>>,
    /// How the remote profile was realised: `daemon` (spawned
    /// `obladi-stored` processes), `in-thread` (socket servers on
    /// threads), or `in-process` for the non-remote profiles.
    pub mode: &'static str,
    supervisor: Option<StorageSupervisor>,
    servers: Vec<ServerHandle>,
}

impl BuiltStorage {
    /// Sum of the remote clients' transport counters (zeros for
    /// non-remote profiles).
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for remote in &self.remotes {
            let stats = remote.transport_stats();
            total.requests += stats.requests;
            total.responses += stats.responses;
            total.flushes += stats.flushes;
            total.connects += stats.connects;
        }
        total
    }

    /// Tears down servers and daemons (also happens on drop).
    pub fn shutdown(mut self) {
        for server in &mut self.servers {
            server.stop();
        }
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.stop_all();
        }
    }
}
