//! In-process vs remote-socket storage: what the process boundary costs,
//! and how much client-side pipelining buys back.
//!
//! The paper's proxy pays a network round trip for every ORAM slot it
//! touches, and survives that only because requests are batched; the
//! reproduction's `RemoteStore` client reproduces the trick by
//! multiplexing all executor threads onto one framed connection and
//! flushing whole bursts at once.  This experiment drives the same YCSB
//! load through a sharded deployment twice per mix — storage as
//! in-process trait objects, then storage across real sockets — and
//! records committed throughput plus the measured `requests / flushes`
//! ratio (`> 1` means concurrent requests genuinely shared wire
//! submissions).  Results go to stdout and `BENCH_transport.json`.

use crate::harness::{fmt1, print_header, print_row};
use crate::opts::BenchOpts;
use crate::profiles::StorageProfile;
use obladi_common::config::{ObladiConfig, ShardConfig};
use obladi_shard::ShardedDb;
use obladi_workloads::{run_deployment, YcsbConfig, YcsbWorkload};
use std::time::Duration;

/// Shard count of the transport experiment (small: the point is the
/// storage boundary, not scale-out).
const SHARDS: usize = 2;

fn shard_template(opts: &BenchOpts) -> ObladiConfig {
    let mut config = ObladiConfig::small_for_tests(if opts.full { 4_096 } else { 1_024 });
    config.oram.block_size = 192;
    config.oram.max_stash = 4_096;
    config.epoch.batch_interval = Duration::from_millis(1);
    config.epoch.read_batches = 4;
    config.epoch.read_batch_size = if opts.full { 64 } else { 32 };
    config.epoch.write_batch_size = if opts.full { 128 } else { 64 };
    // The pipelining ratio is executor concurrency made visible on the
    // wire: size the pool like a deployment, not like a unit test.
    config.epoch.executor_threads = 8;
    config.seed = opts.seed;
    config
}

/// One measured cell.
struct TransportCell {
    backend: String,
    mode: &'static str,
    mix: &'static str,
    committed_per_s: f64,
    abort_rate: f64,
    global_epochs: u64,
    requests: u64,
    flushes: u64,
    requests_per_flush: f64,
}

/// Runs the in-process vs remote-socket sweep over two YCSB mixes.
pub fn run_fig_transport(opts: &BenchOpts) {
    print_header(
        "Transport — in-process vs remote-socket storage",
        &[
            "backend",
            "mix",
            "committed_txn_s",
            "abort_rate",
            "global_epochs",
            "req_per_flush",
        ],
    );
    let clients = opts.clients.max(16);
    let mut cells: Vec<TransportCell> = Vec::new();
    for (mix, read_proportion) in [("read", 1.0f64), ("rw50", 0.5)] {
        let workload = YcsbWorkload::new(YcsbConfig {
            num_keys: if opts.full { 4_096 } else { 1_024 },
            read_proportion,
            ops_per_txn: 1,
            zipf_theta: 0.6,
            value_size: 64,
        });
        for profile in [StorageProfile::Memory, StorageProfile::RemoteSocket] {
            let backend = profile.name();
            let built = match profile.build(SHARDS, opts.seed) {
                Ok(built) => built,
                Err(err) => {
                    print_row(&[
                        backend,
                        mix.to_string(),
                        format!("failed: {err}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            };
            let config = ShardConfig {
                shards: SHARDS,
                shard: shard_template(opts),
                ..ShardConfig::default()
            };
            let db = match ShardedDb::open_with_stores(config, built.stores.clone()) {
                Ok(db) => db,
                Err(err) => {
                    print_row(&[
                        backend,
                        mix.to_string(),
                        format!("failed: {err}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    built.shutdown();
                    continue;
                }
            };
            // Measure the transport counters over the loaded window only:
            // tree initialisation at open is sequential-ish and would
            // dilute the pipelining ratio the run is demonstrating.
            let before = built.transport_stats();
            let (_, stats) = run_deployment(&db, &workload, clients, opts.duration, opts.seed)
                .expect("workload setup failed");
            let after = built.transport_stats();
            let sharded = db.stats();
            let total = stats.committed + stats.aborted;
            let abort_rate = if total == 0 {
                0.0
            } else {
                stats.aborted as f64 / total as f64
            };
            let window = obladi_transport::TransportStats {
                requests: after.requests - before.requests,
                flushes: after.flushes - before.flushes,
                ..Default::default()
            };
            let (requests, flushes) = (window.requests, window.flushes);
            let requests_per_flush = window.requests_per_flush();
            print_row(&[
                backend.clone(),
                mix.to_string(),
                fmt1(stats.throughput()),
                format!("{abort_rate:.3}"),
                sharded.global_epochs.to_string(),
                if flushes == 0 {
                    "-".into()
                } else {
                    format!("{requests_per_flush:.2}")
                },
            ]);
            cells.push(TransportCell {
                backend,
                mode: built.mode,
                mix,
                committed_per_s: stats.throughput(),
                abort_rate,
                global_epochs: sharded.global_epochs,
                requests,
                flushes,
                requests_per_flush,
            });
            db.shutdown();
            built.shutdown();
        }
    }
    write_transport_json(opts, &cells);
}

/// Records the sweep as `BENCH_transport.json` (hand-formatted: the
/// vendored serde shim has no serializer).
fn write_transport_json(opts: &BenchOpts, cells: &[TransportCell]) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"transport\",\n  \"shards\": {SHARDS},\n  \"duration_s\": {:.1},\n  \
         \"seed\": {},\n  \"cells\": [\n",
        opts.duration.as_secs_f64(),
        opts.seed
    ));
    for (index, cell) in cells.iter().enumerate() {
        let comma = if index + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"mix\": \"{}\", \
             \"committed_per_s\": {:.1}, \"abort_rate\": {:.3}, \"global_epochs\": {}, \
             \"requests\": {}, \"flushes\": {}, \"requests_per_flush\": {:.2}}}{comma}\n",
            cell.backend,
            cell.mode,
            cell.mix,
            cell.committed_per_s,
            cell.abort_rate,
            cell.global_epochs,
            cell.requests,
            cell.flushes,
            cell.requests_per_flush,
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_transport.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}
