//! Benchmark harness reproducing the tables and figures of §11.
//!
//! Each figure of the paper's evaluation has a corresponding module and a
//! thin binary wrapper (`cargo run -p obladi-bench --bin fig10a_parallelism`
//! etc.).  The binaries print the same rows / series the paper reports;
//! EXPERIMENTS.md at the repository root records a reference run next to the
//! paper's numbers.
//!
//! Runs are scaled so the default mode finishes in CI-sized time budgets:
//! simulated storage latencies are multiplied by [`BenchOpts::latency_scale`]
//! and table/tree sizes are reduced.  Pass `--full` for larger trees, longer
//! measurement windows and unscaled latencies; the *shape* of every result
//! (who wins, by how much, where crossovers happen) is preserved in both
//! modes.

#![warn(missing_docs)]

pub mod ablation;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig_shard;
pub mod fig_trace_audit;
pub mod fig_transport;
pub mod harness;
pub mod obs_overhead;
pub mod opts;
pub mod profiles;

pub use harness::{print_header, print_row};
pub use opts::BenchOpts;
