//! Differential obliviousness audit over recorded adversary-view traces.
//!
//! The §9 security argument says the cloud's view — which physical
//! operations arrive, when, how large — is independent of the workload.
//! This experiment makes that claim executable: it runs contrasting
//! workloads (uniform read-only, 50/50 read-write, heavily skewed
//! read-only) against a 3-shard deployment whose stores all record into
//! an adversary-view ring, reduces each run to a [`TraceShape`], and
//! requires every pair to be indistinguishable (per-epoch physical-op
//! rates, sealed payload / wire-frame length sets, epoch cadence, and
//! the slot-read level profile).
//!
//! `--mutate` inverts the game to prove the auditor has teeth: it arms
//! the test-only leak in the ORAM client that skips dummy pads (making
//! the physical read rate occupancy-dependent) and *passes* only if the
//! auditor catches the leak.

use crate::fig_shard::shard_template;
use crate::opts::BenchOpts;
use obladi_common::config::ShardConfig;
use obladi_obs::audit::{AuditTolerances, TraceShape};
use obladi_shard::ShardedDb;
use obladi_testkit::audit::{cross_check, level_profile, recording_stores};
use obladi_workloads::{run_deployment, YcsbConfig, YcsbWorkload};
use std::time::Instant;

/// Maximum total-variation distance between slot-read level profiles.
/// Uniform path choice over the same tree keeps observed TVD well under
/// this even for 1-second cells; the dummy-skip leak bends the profile
/// far past it.
pub const MAX_LEVEL_TVD: f64 = 0.12;

/// The contrasting workload cells: `(label, read_proportion, zipf_theta)`.
const CONTRASTS: [(&str, f64, f64); 3] =
    [("read", 1.0, 0.6), ("rw50", 0.5, 0.6), ("zipf", 1.0, 0.95)];

/// Runs one recorded cell and reduces it to `(shape, level_profile)`.
fn run_cell(opts: &BenchOpts, depth: u32, label: &str) -> (TraceShape, Vec<u64>) {
    let (_, read_proportion, zipf_theta) = CONTRASTS
        .iter()
        .find(|(name, _, _)| *name == label)
        .copied()
        .unwrap_or((label, 1.0, 0.6));
    let shards = 3usize;
    let mut config = ShardConfig {
        shards,
        shard: shard_template(opts),
        ..ShardConfig::default()
    };
    config.shard.epoch.pipeline_depth = depth;
    let (stores, ring) = recording_stores(shards);
    let db = ShardedDb::open_with_stores(config, stores).expect("in-memory open cannot fail");
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: if opts.full { 4_096 } else { 1_024 },
        read_proportion,
        ops_per_txn: 1,
        zipf_theta,
        value_size: 64,
    });
    let start = Instant::now();
    run_deployment(
        &db,
        &workload,
        opts.clients.max(8),
        opts.duration,
        opts.seed,
    )
    .expect("workload setup failed");
    let stats = db.stats();
    db.shutdown();
    let wall_us = start.elapsed().as_micros() as u64;
    let ops = ring.ops();
    let shape = TraceShape::from_ops(label, &ops, wall_us, stats.global_epochs);
    let profile = level_profile(&ops);
    (shape, profile)
}

fn print_shapes(depth: u32, shapes: &[(TraceShape, Vec<u64>)]) {
    for (shape, _) in shapes {
        let mut kinds: Vec<String> = Vec::new();
        for (kind, stats) in &shape.kinds {
            kinds.push(format!(
                "{}={:.1}/epoch",
                kind.label(),
                shape.per_epoch(*kind)
            ));
            let _ = stats;
        }
        println!(
            "depth {depth} {:>6}: {} ops over {} epochs ({:.1} epochs/s) [{}]",
            shape.label,
            shape.total_ops,
            shape.epochs,
            shape.epochs_per_sec(),
            kinds.join(", ")
        );
    }
}

/// Runs the differential audit; returns `true` if every contrasting pair
/// is indistinguishable at both pipeline depths.
pub fn run_clean(opts: &BenchOpts) -> bool {
    let tol = AuditTolerances::default();
    let mut all_pass = true;
    for depth in [1u32, 2] {
        let shapes: Vec<(TraceShape, Vec<u64>)> = CONTRASTS
            .iter()
            .map(|(label, _, _)| run_cell(opts, depth, label))
            .collect();
        print_shapes(depth, &shapes);
        let failures = cross_check(&shapes, &tol, MAX_LEVEL_TVD);
        if failures.is_empty() {
            println!("depth {depth}: PASS — contrasting workloads are indistinguishable");
        } else {
            all_pass = false;
            println!("depth {depth}: FAIL — adversary can distinguish workloads:");
            for failure in &failures {
                println!("  {failure}");
            }
        }
    }
    all_pass
}

/// Runs the mutation check; returns `true` if the auditor *catches* the
/// injected dummy-pad leak (i.e. the leaky trace fails the comparison).
pub fn run_mutation(opts: &BenchOpts) -> bool {
    let clean = run_cell(opts, 1, "read");
    obladi_oram::set_leak_skip_dummy_pads(true);
    let leaky = run_cell(opts, 1, "read");
    obladi_oram::set_leak_skip_dummy_pads(false);
    let mut leaky = leaky;
    leaky.0.label = "read-leaky".to_string();
    let shapes = vec![clean, leaky];
    print_shapes(1, &shapes);
    let failures = cross_check(&shapes, &AuditTolerances::default(), MAX_LEVEL_TVD);
    if failures.is_empty() {
        println!("mutation check: FAIL — auditor missed the injected dummy-pad leak");
        false
    } else {
        println!("mutation check: PASS — auditor caught the injected leak:");
        for failure in &failures {
            println!("  {failure}");
        }
        true
    }
}

/// Entry point: clean differential audit, or the `--mutate` teeth check.
/// Returns `true` on success (the bin exits nonzero otherwise).
pub fn run_fig_trace_audit(opts: &BenchOpts, mutate: bool) -> bool {
    println!(
        "== Adversary-view trace audit ({}) ==",
        if mutate {
            "mutation check: injected leak must be caught"
        } else {
            "differential: contrasting workloads must be indistinguishable"
        }
    );
    if mutate {
        run_mutation(opts)
    } else {
        run_clean(opts)
    }
}
