//! Figure 10: impact of parallelism, batching and epochs on the ORAM (§11.2).
//!
//! These experiments instantiate the Ring ORAM executor directly (no
//! transactions) with a 10K/100K-object tree and the four storage backends
//! of the paper: `dummy`, `server` (0.3 ms), `server WAN` (10 ms) and
//! `dynamo` (1 ms reads / 3 ms writes, bounded client parallelism).

use crate::harness::{
    build_store, fmt1, micro_oram_config, parallel_threads, print_header, print_row,
};
use crate::opts::BenchOpts;
use obladi_common::config::BackendKind;
use obladi_common::rng::DetRng;
use obladi_common::types::Key;
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, NoopPathLogger, RingOram};
use obladi_workloads::{FreeHealthConfig, FreeHealthWorkload};
use obladi_workloads::{SmallBankConfig, SmallBankWorkload, TpccConfig, TpccWorkload, Workload};
use std::time::Instant;

/// Number of keys pre-loaded into the micro-benchmark ORAM.
const PRELOADED_KEYS: u64 = 1_000;

fn preload(oram: &mut RingOram) {
    let writes: Vec<(Key, Vec<u8>)> = (0..PRELOADED_KEYS)
        .map(|k| (k, vec![k as u8; 32]))
        .collect();
    for chunk in writes.chunks(256) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
}

fn build(kind: BackendKind, opts: &BenchOpts, exec: ExecOptions) -> RingOram {
    let config = micro_oram_config(opts);
    let store = build_store(kind, opts);
    let keys = KeyMaterial::for_tests(opts.seed);
    let mut oram = RingOram::new(config, &keys, store, exec.with_fast_init(), opts.seed)
        .expect("failed to build ORAM");
    preload(&mut oram);
    oram.reset_stats();
    oram
}

fn random_reads(rng: &mut DetRng, n: usize) -> Vec<Option<Key>> {
    (0..n).map(|_| Some(rng.below(PRELOADED_KEYS))).collect()
}

/// Runs `total_ops` logical reads through the ORAM in batches of
/// `batch_size`, flushing buffered writes every `batches_per_epoch` batches.
/// Returns (ops/s, mean batch latency in ms).
fn run_oram_reads(
    oram: &mut RingOram,
    batch_size: usize,
    total_ops: usize,
    batches_per_epoch: usize,
    rng: &mut DetRng,
) -> (f64, f64) {
    let batches = (total_ops / batch_size.max(1)).max(1);
    let start = Instant::now();
    let mut batch_latencies = Vec::with_capacity(batches);
    for batch in 0..batches {
        let requests = random_reads(rng, batch_size);
        let batch_start = Instant::now();
        oram.read_batch(&requests, &NoopPathLogger).unwrap();
        if (batch + 1) % batches_per_epoch.max(1) == 0 {
            oram.flush_writes(&NoopPathLogger).unwrap();
        }
        batch_latencies.push(batch_start.elapsed().as_secs_f64() * 1000.0);
    }
    oram.flush_writes(&NoopPathLogger).unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let ops = (batches * batch_size) as f64;
    let mean_latency = batch_latencies.iter().sum::<f64>() / batch_latencies.len() as f64;
    (ops / elapsed, mean_latency)
}

/// Figure 10a: sequential vs parallel vs parallel+crypto throughput at batch
/// size 500.
pub fn run_fig10a(opts: &BenchOpts) {
    print_header(
        "Figure 10a — ORAM parallelism (batch size 500)",
        &[
            "backend",
            "sequential_ops_s",
            "parallel_ops_s",
            "parallel_crypto_ops_s",
        ],
    );
    let batch = if opts.full { 500 } else { 200 };
    let seq_ops = if opts.full { 400 } else { 60 };
    let par_ops = batch * 4;

    for kind in BackendKind::ALL {
        let mut rng = DetRng::new(opts.seed);
        // Sequential canonical Ring ORAM: one request at a time, immediate
        // write-back, crypto on.
        let mut seq = build(kind, opts, ExecOptions::sequential());
        let start = Instant::now();
        for _ in 0..seq_ops {
            let key = rng.below(PRELOADED_KEYS);
            seq.read_batch(&[Some(key)], &NoopPathLogger).unwrap();
        }
        let seq_tput = seq_ops as f64 / start.elapsed().as_secs_f64();

        // Parallel executor without crypto.
        let threads = parallel_threads(kind, opts);
        let mut par = build(kind, opts, ExecOptions::parallel(threads).without_crypto());
        let (par_tput, _) = run_oram_reads(&mut par, batch, par_ops, 1, &mut rng);

        // Parallel executor with crypto (the configuration Obladi uses).
        let mut parc = build(kind, opts, ExecOptions::parallel(threads));
        let (parc_tput, _) = run_oram_reads(&mut parc, batch, par_ops, 1, &mut rng);

        print_row(&[
            kind.name().to_string(),
            fmt1(seq_tput),
            fmt1(par_tput),
            fmt1(parc_tput),
        ]);
    }
}

/// Figure 10b/10c: throughput and latency as a function of batch size.
pub fn run_fig10bc(opts: &BenchOpts, print_latency: bool) {
    let title = if print_latency {
        "Figure 10c — batch size vs latency (ms per batch)"
    } else {
        "Figure 10b — batch size vs throughput (ops/s)"
    };
    let batch_sizes: Vec<usize> = if opts.full {
        vec![1, 10, 100, 500, 1000, 2000, 5000]
    } else {
        vec![1, 10, 100, 500, 1000]
    };
    let mut columns = vec!["backend".to_string()];
    columns.extend(batch_sizes.iter().map(|b| format!("b={b}")));
    print_header(
        title,
        &columns.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    for kind in BackendKind::ALL {
        let mut cells = vec![kind.name().to_string()];
        for &batch in &batch_sizes {
            let threads = parallel_threads(kind, opts);
            let mut oram = build(kind, opts, ExecOptions::parallel(threads));
            let mut rng = DetRng::new(opts.seed ^ batch as u64);
            let total = (batch * 3).clamp(60, if opts.full { 6000 } else { 2000 });
            let (tput, latency) = run_oram_reads(&mut oram, batch, total, 1, &mut rng);
            cells.push(if print_latency {
                fmt1(latency)
            } else {
                fmt1(tput)
            });
        }
        print_row(&cells);
    }
}

/// Figure 10d: effect of delayed visibility (buffered, deduplicated bucket
/// write-back) for an epoch of eight batches.
pub fn run_fig10d(opts: &BenchOpts) {
    print_header(
        "Figure 10d — delayed visibility (epoch of 8 batches)",
        &[
            "backend",
            "immediate_writeback_ops_s",
            "buffered_writeback_ops_s",
            "speedup",
        ],
    );
    let batch = if opts.full { 500 } else { 128 };
    let epoch_batches = 8;
    for kind in BackendKind::ALL {
        let threads = parallel_threads(kind, opts);
        let mut rng = DetRng::new(opts.seed);

        let mut normal = build(
            kind,
            opts,
            ExecOptions::parallel(threads).with_deferred_writes(false),
        );
        let (normal_tput, _) =
            run_oram_reads(&mut normal, batch, batch * epoch_batches, 1, &mut rng);

        let mut buffered = build(kind, opts, ExecOptions::parallel(threads));
        let (buffered_tput, _) = run_oram_reads(
            &mut buffered,
            batch,
            batch * epoch_batches,
            epoch_batches,
            &mut rng,
        );

        print_row(&[
            kind.name().to_string(),
            fmt1(normal_tput),
            fmt1(buffered_tput),
            format!("{:.2}x", buffered_tput / normal_tput.max(1e-9)),
        ]);
    }
}

/// Figure 10e: relative ORAM throughput as the epoch grows (batches per
/// epoch swept in powers of two), normalised to a one-batch epoch.
pub fn run_fig10e(opts: &BenchOpts) {
    let epoch_sizes: Vec<usize> = if opts.full {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    let mut columns = vec!["backend".to_string()];
    columns.extend(epoch_sizes.iter().map(|e| format!("epoch={e}")));
    print_header(
        "Figure 10e — epoch size impact on ORAM (relative throughput)",
        &columns.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let batch = if opts.full { 256 } else { 96 };
    for kind in BackendKind::ALL {
        let threads = parallel_threads(kind, opts);
        let mut baseline = 0.0;
        let mut cells = vec![kind.name().to_string()];
        for &epoch in &epoch_sizes {
            let mut oram = build(kind, opts, ExecOptions::parallel(threads));
            let mut rng = DetRng::new(opts.seed ^ epoch as u64);
            let total = batch * epoch.max(4);
            let (tput, _) = run_oram_reads(&mut oram, batch, total, epoch, &mut rng);
            if epoch == 1 {
                baseline = tput;
            }
            cells.push(format!("{:.2}", tput / baseline.max(1e-9)));
        }
        print_row(&cells);
    }
}

/// Figure 10f: end-to-end Obladi throughput as a function of the epoch
/// duration (batch interval sweep) for the three applications.
pub fn run_fig10f(opts: &BenchOpts) {
    use crate::fig09::bench_obladi_only;
    let intervals_ms: Vec<u64> = if opts.full {
        vec![1, 2, 5, 10, 25, 50, 100]
    } else {
        vec![1, 3, 8, 20]
    };
    let mut columns = vec!["app".to_string()];
    columns.extend(intervals_ms.iter().map(|ms| format!("delta={ms}ms")));
    print_header(
        "Figure 10f — epoch duration vs application throughput (txn/s)",
        &columns.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    // SmallBank.
    {
        let workload = SmallBankWorkload::new(if opts.full {
            SmallBankConfig {
                num_accounts: 5_000,
                hotspot_fraction: 0.01,
                hotspot_probability: 0.25,
            }
        } else {
            SmallBankConfig {
                num_accounts: 400,
                hotspot_fraction: 0.05,
                hotspot_probability: 0.25,
            }
        });
        let rows = workload.config().num_accounts * 2;
        sweep_app(
            "smallbank",
            &workload,
            rows,
            &intervals_ms,
            opts,
            bench_obladi_only,
        );
    }
    // FreeHealth.
    {
        let workload = FreeHealthWorkload::new(if opts.full {
            FreeHealthConfig::benchmark()
        } else {
            FreeHealthConfig {
                users: 8,
                patients: 120,
                drugs: 40,
                episodes_per_patient: 2,
                list_limit: 3,
            }
        });
        let cfg = workload.config();
        let rows = cfg.users + cfg.drugs + cfg.patients * (2 + cfg.episodes_per_patient * 2);
        sweep_app(
            "freehealth",
            &workload,
            rows,
            &intervals_ms,
            opts,
            bench_obladi_only,
        );
    }
    // TPC-C.
    {
        let workload = TpccWorkload::new(if opts.full {
            TpccConfig::benchmark(4)
        } else {
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 4,
                customers_per_district: 30,
                items: 100,
                last_names: 8,
                stock_level_orders: 3,
                max_order_lines: 5,
            }
        });
        let cfg = workload.config();
        let rows = cfg.items
            + cfg.warehouses
                * (1 + cfg.items
                    + cfg.districts_per_warehouse
                        * (1 + cfg.customers_per_district + cfg.last_names));
        sweep_app(
            "tpcc",
            &workload,
            rows,
            &intervals_ms,
            opts,
            bench_obladi_only,
        );
    }
}

fn sweep_app<W: Workload>(
    app: &str,
    workload: &W,
    rows: u64,
    intervals_ms: &[u64],
    opts: &BenchOpts,
    bench: fn(&str, &W, u64, u64, &BenchOpts) -> f64,
) {
    let mut cells = vec![app.to_string()];
    for &ms in intervals_ms {
        let tput = bench(app, workload, rows, ms, opts);
        cells.push(fmt1(tput));
    }
    print_row(&cells);
}

/// Smoke-level sanity check used by unit tests: the parallel executor must
/// beat the sequential one on a high-latency backend.
pub fn parallel_beats_sequential_on_wan(opts: &BenchOpts) -> (f64, f64) {
    let mut rng = DetRng::new(opts.seed);
    let mut seq = build(BackendKind::ServerWan, opts, ExecOptions::sequential());
    let seq_ops = 10;
    let start = Instant::now();
    for _ in 0..seq_ops {
        let key = rng.below(PRELOADED_KEYS);
        seq.read_batch(&[Some(key)], &NoopPathLogger).unwrap();
    }
    let seq_tput = seq_ops as f64 / start.elapsed().as_secs_f64();

    let mut par = build(BackendKind::ServerWan, opts, ExecOptions::parallel(64));
    let (par_tput, _) = run_oram_reads(&mut par, 64, 128, 1, &mut rng);
    (seq_tput, par_tput)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_helps_on_wan_even_in_smoke_mode() {
        let mut opts = BenchOpts::smoke();
        // Give the WAN profile a real (but small) latency so parallelism
        // matters; the smoke profile would otherwise be latency-free.
        opts.latency_scale = 0.02;
        let (seq, par) = parallel_beats_sequential_on_wan(&opts);
        assert!(
            par > seq * 1.5,
            "parallel executor ({par:.1} ops/s) should clearly beat sequential ({seq:.1} ops/s)"
        );
    }

    #[test]
    fn run_oram_reads_reports_positive_numbers() {
        let opts = BenchOpts::smoke();
        let mut oram = build(BackendKind::Dummy, &opts, ExecOptions::parallel(2));
        let mut rng = DetRng::new(1);
        let (tput, latency) = run_oram_reads(&mut oram, 16, 64, 2, &mut rng);
        assert!(tput > 0.0);
        assert!(latency >= 0.0);
    }
}
