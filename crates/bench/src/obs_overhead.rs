//! Measures the observability layer's cost and enforces the <1% budget.
//!
//! The registry stays on in release builds, so its overhead must be
//! provably negligible.  This cell runs the same YCSB load with metrics
//! enabled and disabled in *interleaved* rounds (A/B/A/B…), takes the best
//! round of each arm (best-of-N is robust to one-sided scheduler noise),
//! and fails the run if the enabled arm's best throughput falls more than
//! the tolerated fraction below the disabled arm's.

use crate::harness::{fmt1, print_header, print_row, write_metrics_out};
use crate::opts::BenchOpts;
use crate::profiles::StorageProfile;
use obladi_common::config::ShardConfig;
use obladi_obs::audit::AuditRing;
use obladi_shard::ShardedDb;
use obladi_storage::{RecordingStore, UntrustedStore};
use obladi_workloads::{run_deployment, YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

/// Interleaved rounds per arm.
const ROUNDS: usize = 5;

/// Tolerated throughput loss with metrics enabled (the ISSUE's budget).
const MAX_OVERHEAD: f64 = 0.01;

/// One measured round: committed throughput under one arm.
fn run_round(opts: &BenchOpts, duration: Duration, enabled: bool) -> f64 {
    obladi_obs::set_enabled(enabled);
    obladi_obs::global().reset();
    obladi_obs::trace::global().reset();
    let config = ShardConfig {
        shards: 1,
        shard: crate::fig_shard::shard_template(opts),
        ..ShardConfig::default()
    };
    let built = StorageProfile::Memory
        .build(1, opts.seed)
        .expect("memory profile cannot fail");
    // The adversary-view recorder rides on the same kill switch, so the
    // budget measured here covers it too: the enabled arm records every
    // physical op into the ring, the disabled arm early-returns.
    let ring = Arc::new(AuditRing::default());
    let stores: Vec<Arc<dyn UntrustedStore>> = built
        .stores
        .iter()
        .map(|store| {
            Arc::new(RecordingStore::new(store.clone(), ring.clone(), 0)) as Arc<dyn UntrustedStore>
        })
        .collect();
    let db = ShardedDb::open_with_stores(config, stores)
        .expect("single-shard memory deployment cannot fail");
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 1_024,
        read_proportion: 0.5,
        ops_per_txn: 1,
        zipf_theta: 0.6,
        value_size: 64,
    });
    let (_, stats) = run_deployment(&db, &workload, opts.clients.max(8), duration, opts.seed)
        .expect("workload setup failed");
    db.shutdown();
    stats.throughput()
}

/// Runs the interleaved on/off comparison and returns
/// `(best_enabled, best_disabled)` committed throughput.
pub fn measure_overhead(opts: &BenchOpts) -> (f64, f64) {
    // Short rounds keep the total budget near one normal cell while still
    // giving each arm ROUNDS independent shots at an unperturbed run.
    let duration = opts.duration.div_f64(2.0).max(Duration::from_millis(500));
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for round in 0..ROUNDS {
        let on = run_round(opts, duration, true);
        let off = run_round(opts, duration, false);
        best_on = best_on.max(on);
        best_off = best_off.max(off);
        print_row(&[
            format!("round{round}"),
            fmt1(on),
            fmt1(off),
            format!("{:.4}", 1.0 - on / off.max(f64::MIN_POSITIVE)),
        ]);
    }
    // Leave the switch on for whoever runs next in this process.
    obladi_obs::set_enabled(true);
    (best_on, best_off)
}

/// Runs the overhead cell, printing the verdict; exits non-zero if the
/// metrics layer costs more than [`MAX_OVERHEAD`] of throughput.
pub fn run_obs_overhead(opts: &BenchOpts) {
    print_header(
        "Observability overhead — metrics on vs off (interleaved best-of-N)",
        &["round", "on_txn_s", "off_txn_s", "overhead"],
    );
    let (best_on, best_off) = measure_overhead(opts);
    let overhead = 1.0 - best_on / best_off.max(f64::MIN_POSITIVE);
    print_row(&[
        "best".into(),
        fmt1(best_on),
        fmt1(best_off),
        format!("{overhead:.4}"),
    ]);
    write_metrics_out(opts);
    if overhead > MAX_OVERHEAD {
        eprintln!(
            "FAIL: metrics overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: metrics overhead {:.2}% within the {:.0}% budget",
        overhead.max(0.0) * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
