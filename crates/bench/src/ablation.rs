//! Ablation study over Obladi's design choices.
//!
//! The paper's evaluation sweeps epochs, batch sizes and backends; this
//! table isolates the individual proxy-level mechanisms DESIGN.md calls out
//! by switching exactly one of them off (or to a deliberately bad value) at
//! a time and re-running the same YCSB mix on the same backend:
//!
//! * `baseline` — the tuned configuration;
//! * `no-durability` — path logging and checkpointing disabled (upper
//!   bound on what durability costs, Table 11b's "Slowdown" column);
//! * `sequential-exec` — a single executor thread, i.e. no intra- or
//!   inter-request parallelism inside a batch (§7);
//! * `checkpoint-every-epoch` — full metadata checkpoints instead of deltas
//!   amortised over many epochs (Figure 11a's x = 1);
//! * `starved-reads` — too few read batches for the transaction's read
//!   chain, showing why §6.4 sizes `R` to the workload;
//! * `oversized-writes` — a write batch far larger than the write rate,
//!   paying padding for nothing.
//!
//! Reported per variant: committed throughput, mean / p99 latency, abort
//! rate, and physical ORAM requests per committed transaction.

use crate::harness::{fmt1, print_header, print_row};
use crate::opts::BenchOpts;
use obladi_common::config::{BackendKind, EpochConfig, ObladiConfig, OramConfig};
use obladi_core::proxy::ObladiDb;
use obladi_workloads::driver::{run_closed_loop, Workload};
use obladi_workloads::ycsb::{YcsbConfig, YcsbWorkload};
use std::time::Duration;

/// One ablation variant: a name and the configuration it runs with.
struct Variant {
    name: &'static str,
    config: ObladiConfig,
}

fn base_epoch_config() -> EpochConfig {
    EpochConfig::default()
        .with_read_batches(6)
        .with_read_batch_size(48)
        .with_write_batch_size(64)
        .with_batch_interval(Duration::from_millis(2))
        .with_executor_threads(32)
        .with_checkpoint_every(16)
        .with_durability(true)
}

fn base_config(opts: &BenchOpts) -> ObladiConfig {
    let num_keys = ycsb_config(opts).num_keys;
    ObladiConfig {
        oram: OramConfig::for_capacity(num_keys * 2, 16)
            .with_block_size(128)
            .with_max_stash(8_192),
        epoch: base_epoch_config(),
        backend: BackendKind::Server,
        latency_scale: opts.latency_scale,
        seed: opts.seed,
    }
}

fn ycsb_config(opts: &BenchOpts) -> YcsbConfig {
    YcsbConfig {
        num_keys: if opts.full { 10_000 } else { 1_000 },
        read_proportion: 0.5,
        ops_per_txn: 3,
        zipf_theta: 0.9,
        value_size: 64,
    }
}

fn variants(opts: &BenchOpts) -> Vec<Variant> {
    let base = base_config(opts);

    let mut no_durability = base.clone();
    no_durability.epoch.durability = false;

    let mut sequential = base.clone();
    sequential.epoch.executor_threads = 1;

    let mut checkpoint_heavy = base.clone();
    checkpoint_heavy.epoch.checkpoint_every = 1;

    let mut starved_reads = base.clone();
    starved_reads.epoch.read_batches = 1;

    let mut oversized_writes = base.clone();
    oversized_writes.epoch.write_batch_size = base.epoch.write_batch_size * 8;

    vec![
        Variant {
            name: "baseline",
            config: base,
        },
        Variant {
            name: "no-durability",
            config: no_durability,
        },
        Variant {
            name: "sequential-exec",
            config: sequential,
        },
        Variant {
            name: "checkpoint-every-epoch",
            config: checkpoint_heavy,
        },
        Variant {
            name: "starved-reads",
            config: starved_reads,
        },
        Variant {
            name: "oversized-writes",
            config: oversized_writes,
        },
    ]
}

/// Runs one variant and returns its table row.
fn run_variant(variant: &Variant, opts: &BenchOpts) -> Vec<String> {
    let workload = YcsbWorkload::new(ycsb_config(opts));
    let db = ObladiDb::open(variant.config.clone()).expect("failed to open proxy");
    workload.setup(&db).expect("workload setup failed");

    let stats = run_closed_loop(&db, &workload, opts.clients, opts.duration, opts.seed);
    let oram = db.oram_stats().unwrap_or_default();
    let physical = oram.physical_reads + oram.physical_writes;
    let per_txn = if stats.committed > 0 {
        physical as f64 / stats.committed as f64
    } else {
        f64::NAN
    };
    db.shutdown();

    vec![
        variant.name.to_string(),
        fmt1(stats.throughput()),
        fmt1(stats.latency.mean().as_secs_f64() * 1000.0),
        fmt1(stats.latency.p99().as_secs_f64() * 1000.0),
        format!("{:.2}", stats.abort_rate()),
        fmt1(per_txn),
    ]
}

/// Runs the full ablation table.
pub fn run_ablation(opts: &BenchOpts) {
    print_header(
        "Ablation — contribution of individual proxy mechanisms (YCSB, server backend)",
        &[
            "variant",
            "throughput (txn/s)",
            "mean latency (ms)",
            "p99 latency (ms)",
            "abort rate",
            "physical ops / committed txn",
        ],
    );
    for variant in variants(opts) {
        let row = run_variant(&variant, opts);
        print_row(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_configuration_is_valid() {
        let opts = BenchOpts::default();
        let all = variants(&opts);
        assert_eq!(all.len(), 6);
        for variant in &all {
            variant
                .config
                .validate()
                .unwrap_or_else(|err| panic!("variant {}: {err}", variant.name));
        }
        // The ablations differ from the baseline in exactly the advertised
        // dimension.
        assert!(!all[1].config.epoch.durability);
        assert_eq!(all[2].config.epoch.executor_threads, 1);
        assert_eq!(all[3].config.epoch.checkpoint_every, 1);
        assert_eq!(all[4].config.epoch.read_batches, 1);
        assert!(all[5].config.epoch.write_batch_size > all[0].config.epoch.write_batch_size);
    }

    #[test]
    fn baseline_variant_runs_under_smoke_options() {
        let opts = BenchOpts::smoke();
        let baseline = &variants(&opts)[0];
        let row = run_variant(baseline, &opts);
        assert_eq!(row.len(), 6);
        let throughput: f64 = row[1].parse().unwrap();
        assert!(throughput >= 0.0);
    }
}
