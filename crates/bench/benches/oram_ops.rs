//! Criterion microbenchmarks for the Ring ORAM client over zero-latency
//! in-memory storage: batched reads, dummiless writes and epoch flushes.
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use obladi_common::config::OramConfig;
use obladi_common::rng::DetRng;
use obladi_crypto::KeyMaterial;
use obladi_oram::{ExecOptions, NoopPathLogger, RingOram};
use obladi_storage::InMemoryStore;
use std::sync::Arc;

fn build_oram(parallel: bool) -> RingOram {
    let config = OramConfig::for_capacity(4_096, 8).with_block_size(64);
    let keys = KeyMaterial::for_tests(3);
    let store = Arc::new(InMemoryStore::new());
    let exec = if parallel {
        ExecOptions::parallel(8)
    } else {
        ExecOptions::sequential()
    };
    let mut oram = RingOram::new(config, &keys, store, exec.with_fast_init(), 3).unwrap();
    let writes: Vec<(u64, Vec<u8>)> = (0..1024).map(|k| (k, vec![k as u8; 32])).collect();
    for chunk in writes.chunks(256) {
        oram.write_batch(chunk, &NoopPathLogger).unwrap();
        oram.flush_writes(&NoopPathLogger).unwrap();
    }
    oram
}

fn bench_oram(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram");

    group.throughput(Throughput::Elements(64));
    group.bench_function("read_batch_64_parallel", |b| {
        let mut oram = build_oram(true);
        let mut rng = DetRng::new(9);
        b.iter_batched(
            || (0..64).map(|_| Some(rng.below(1024))).collect::<Vec<_>>(),
            |reads| {
                oram.read_batch(&reads, &NoopPathLogger).unwrap();
                oram.flush_writes(&NoopPathLogger).unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("sequential_access", |b| {
        let mut oram = build_oram(false);
        let mut rng = DetRng::new(10);
        b.iter(|| {
            let key = rng.below(1024);
            oram.read_batch(&[Some(key)], &NoopPathLogger).unwrap()
        })
    });

    group.throughput(Throughput::Elements(64));
    group.bench_function("dummiless_write_batch_64", |b| {
        let mut oram = build_oram(true);
        let mut rng = DetRng::new(11);
        b.iter_batched(
            || {
                (0..64)
                    .map(|_| {
                        let k = rng.below(1024);
                        (k, vec![k as u8; 32])
                    })
                    .collect::<Vec<_>>()
            },
            |writes| {
                oram.write_batch(&writes, &NoopPathLogger).unwrap();
                oram.flush_writes(&NoopPathLogger).unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_oram
}
criterion_main!(benches);
