//! Criterion microbenchmarks for the MVTSO concurrency control unit.
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use obladi_core::MvtsoManager;

fn bench_mvtso(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvtso");

    group.bench_function("read_write_commit_cycle", |b| {
        b.iter_batched(
            || {
                let mut m = MvtsoManager::new();
                for key in 0..64u64 {
                    m.register_base(key, Some(vec![0u8; 16]));
                }
                m
            },
            |mut m| {
                for txn in 1..=32u64 {
                    m.begin(txn);
                    let key = txn % 64;
                    let _ = m.read(txn, key);
                    let _ = m.write(txn, key, vec![1u8; 16]);
                    let _ = m.request_commit(txn);
                }
                m.finalize()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("epoch_finalize_with_dependencies", |b| {
        b.iter_batched(
            || {
                let mut m = MvtsoManager::new();
                m.register_base(0, Some(vec![0u8; 8]));
                for txn in 1..=64u64 {
                    m.begin(txn);
                    let _ = m.read(txn, 0);
                    let _ = m.write(txn, 0, vec![txn as u8; 8]);
                    let _ = m.request_commit(txn);
                }
                m
            },
            |mut m| m.finalize(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mvtso
}
criterion_main!(benches);
