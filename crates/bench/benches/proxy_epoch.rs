//! Criterion benchmark for end-to-end transaction cost on the Obladi proxy
//! over a zero-latency backend (epoch overhead in isolation).
use criterion::{criterion_group, criterion_main, Criterion};
use obladi_common::config::ObladiConfig;
use obladi_core::proxy::ObladiDb;
use std::time::Duration;

fn bench_proxy(c: &mut Criterion) {
    let mut config = ObladiConfig::small_for_tests(4_096);
    config.epoch.read_batch_size = 32;
    config.epoch.write_batch_size = 32;
    config.epoch.batch_interval = Duration::from_millis(1);
    let db = ObladiDb::open(config).unwrap();

    let mut group = c.benchmark_group("proxy");
    group.sample_size(20);
    group.bench_function("single_txn_commit", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key += 1;
            let mut txn = db.begin().unwrap();
            txn.write(key % 1024, vec![7u8; 16]).unwrap();
            txn.commit().unwrap()
        })
    });
    group.finish();
    db.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_proxy
}
criterion_main!(benches);
