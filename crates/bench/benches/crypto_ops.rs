//! Criterion microbenchmarks for the crypto substrate: ChaCha20, SHA-256,
//! HMAC and the sealed-block envelope (the per-slot cost behind the
//! `ParallelCrypto` series of Figure 10a).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obladi_crypto::{ChaCha20, Envelope, HmacSha256, KeyMaterial, Sha256};

fn bench_crypto(c: &mut Criterion) {
    let keys = KeyMaterial::for_tests(1);
    let payload = vec![0xA5u8; 256];

    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(payload.len() as u64));

    group.bench_function("chacha20_encrypt_256B", |b| {
        let cipher = ChaCha20::new(keys.enc_key());
        b.iter(|| cipher.encrypt(&[7u8; 12], &payload))
    });
    group.bench_function("sha256_256B", |b| b.iter(|| Sha256::digest(&payload)));
    group.bench_function("hmac_sha256_256B", |b| {
        let hmac = HmacSha256::new(keys.mac_key());
        b.iter(|| hmac.mac(&payload))
    });
    group.bench_function("envelope_seal_256B", |b| {
        let envelope = Envelope::new(&keys);
        b.iter(|| envelope.seal(1, 2, &payload, 256).unwrap())
    });
    group.bench_function("envelope_seal_open_256B", |b| {
        let envelope = Envelope::new(&keys);
        b.iter(|| {
            let sealed = envelope.seal(1, 2, &payload, 256).unwrap();
            envelope.open(1, 2, &sealed).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto
}
criterion_main!(benches);
