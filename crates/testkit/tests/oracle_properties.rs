//! Property-based tests of the test oracles themselves.
//!
//! The serializability checker is only useful if it (a) accepts every
//! genuinely serial execution and (b) rejects histories that have been
//! tampered with.  These properties exercise both directions over randomly
//! generated executions, and check the distribution helpers on synthetic
//! histograms.

use obladi_common::rng::DetRng;
use obladi_testkit::{
    check_serializable, chi_square_uniform, is_plausibly_uniform, tag_value, History, HistoryOp,
    TxnRecord, Violation,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Executes `ops` serially against an in-memory model, producing a history
/// whose commit timestamps follow the execution order.  Such a history is
/// serializable by construction.
fn serial_history(ops: Vec<Vec<(u8, bool)>>) -> History {
    let mut history = History::new();
    let mut store: HashMap<u64, Vec<u8>> = HashMap::new();
    for key in 0..8u64 {
        let value = vec![key as u8; 4];
        history.set_initial(key, value.clone());
        store.insert(key, value);
    }
    for (index, txn_ops) in ops.into_iter().enumerate() {
        let id = index as u64 + 1;
        let mut record = TxnRecord::new(id);
        let mut seq = 0u32;
        for (key, is_write) in txn_ops {
            let key = key as u64 % 8;
            if is_write {
                let value = tag_value(id, seq, b"");
                seq += 1;
                store.insert(key, value.clone());
                record.write(key, value);
            } else {
                record.read(key, store.get(&key).cloned());
            }
        }
        record.commit(id);
        history.push(record);
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every serially executed history is accepted, and the witness order it
    /// reports is a permutation of the committed transactions.
    #[test]
    fn serial_executions_are_always_accepted(
        ops in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<bool>()), 0..6),
            1..12,
        )
    ) {
        let history = serial_history(ops);
        let committed = history.committed_count();
        let report = check_serializable(&history).expect("serial history rejected");
        prop_assert_eq!(report.committed, committed);
        let mut order = report.serial_order.clone();
        order.sort_unstable();
        order.dedup();
        prop_assert_eq!(order.len(), report.serial_order.len());
    }

    /// Corrupting one observed read value to something no writer produced is
    /// always detected.
    #[test]
    fn corrupted_reads_are_always_detected(
        ops in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<bool>()), 1..5),
            2..8,
        ),
        corrupt_byte in any::<u8>(),
    ) {
        let history = serial_history(ops);
        // Rebuild the history, replacing the first committed read with a
        // value that cannot have been produced by any writer.
        let mut corrupted = History::new();
        let mut tampered = false;
        for txn in history.transactions() {
            let mut record = TxnRecord::new(txn.id);
            record.committed = txn.committed;
            record.commit_ts = txn.commit_ts;
            for op in &txn.ops {
                match op {
                    HistoryOp::Read { key, observed } if !tampered && observed.is_some() => {
                        record.read(*key, Some(vec![0xEE, corrupt_byte, 0xEE]));
                        tampered = true;
                    }
                    HistoryOp::Read { key, observed } => record.read(*key, observed.clone()),
                    HistoryOp::Write { key, value } => record.write(*key, value.clone()),
                }
            }
            corrupted.push(record);
        }
        prop_assume!(tampered);
        let err = check_serializable(&corrupted).expect_err("tampered read not detected");
        prop_assert!(matches!(err, Violation::ReadFromUnknownWriter { .. }), "{}", err);
    }

    /// Uniform histograms pass the plausibility check; histograms with one
    /// dominating bin fail it.
    #[test]
    fn uniformity_check_separates_uniform_from_spiked(
        bins in 8usize..64,
        per_bin in 50u64..500,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let total = bins as u64 * per_bin;
        let mut uniform = vec![0u64; bins];
        for _ in 0..total {
            uniform[rng.below(bins as u64) as usize] += 1;
        }
        prop_assert!(is_plausibly_uniform(&uniform),
            "chi2 = {}", chi_square_uniform(&uniform));

        let mut spiked = vec![per_bin / 10 + 1; bins];
        spiked[0] = total;
        prop_assert!(!is_plausibly_uniform(&spiked));
    }
}
