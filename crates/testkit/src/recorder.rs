//! Thread-safe recording of transaction histories.
//!
//! Concurrency tests run many client threads against an engine; each thread
//! records the reads and writes of its transactions into a [`TxnTrace`] and
//! hands the finished trace to the shared [`HistoryRecorder`].  The recorder
//! assembles a [`History`] that [`crate::history::check_serializable`] can
//! then verify offline.
//!
//! The recorder also owns a monotonically increasing commit sequence that
//! engines without an externally visible serialization timestamp (the 2PL
//! baseline) can use as their per-transaction `commit_ts`.

use crate::history::{History, TxnRecord};
use obladi_common::types::{Key, TxnId, Value};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The footprint of one in-flight transaction, owned by the client thread
/// that runs it.
#[derive(Debug, Clone)]
pub struct TxnTrace {
    record: TxnRecord,
    writes: u32,
}

impl TxnTrace {
    /// Starts a trace for transaction `id`.
    pub fn new(id: TxnId) -> Self {
        TxnTrace {
            record: TxnRecord::new(id),
            writes: 0,
        }
    }

    /// The transaction id this trace records.
    pub fn id(&self) -> TxnId {
        self.record.id
    }

    /// Records a read and returns the observed value unchanged (so the call
    /// can be chained around the engine's read).
    pub fn observe(&mut self, key: Key, observed: Option<Value>) -> Option<Value> {
        self.record.read(key, observed.clone());
        observed
    }

    /// Produces a unique tagged value for the next write of this transaction
    /// and records it.  The caller writes the returned bytes to the engine.
    pub fn next_write(&mut self, key: Key, payload: &[u8]) -> Value {
        let value = crate::history::tag_value(self.record.id, self.writes, payload);
        self.writes += 1;
        self.record.write(key, value.clone());
        value
    }

    /// Records a write of an arbitrary (caller-chosen) value.
    ///
    /// The caller is responsible for value uniqueness across the history;
    /// prefer [`TxnTrace::next_write`] unless the test needs specific bytes.
    pub fn record_write(&mut self, key: Key, value: Value) {
        self.record.write(key, value);
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.record.ops.len()
    }

    /// Whether no operation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.record.ops.is_empty()
    }
}

/// Collects finished transaction traces from many threads.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    initial: Mutex<Vec<(Key, Value)>>,
    finished: Mutex<Vec<TxnRecord>>,
    commit_seq: AtomicU64,
}

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    /// Declares a value loaded into the database before the recorded phase.
    pub fn set_initial(&self, key: Key, value: Value) {
        self.initial.lock().push((key, value));
    }

    /// Returns the next commit sequence number.
    ///
    /// Engines whose transaction ids are not serialization timestamps (the
    /// 2PL baseline) call this at commit time, while still holding their
    /// commit-point locks, to obtain a `commit_ts` consistent with the
    /// serialization order.
    pub fn next_commit_seq(&self) -> u64 {
        self.commit_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Records a committed transaction with serialization position
    /// `commit_ts`.
    pub fn finish_committed(&self, mut trace: TxnTrace, commit_ts: u64) {
        trace.record.commit(commit_ts);
        self.finished.lock().push(trace.record);
    }

    /// Records an aborted transaction.
    pub fn finish_aborted(&self, mut trace: TxnTrace) {
        trace.record.abort();
        self.finished.lock().push(trace.record);
    }

    /// Number of transactions recorded so far.
    pub fn len(&self) -> usize {
        self.finished.lock().len()
    }

    /// Whether no transaction has been recorded.
    pub fn is_empty(&self) -> bool {
        self.finished.lock().is_empty()
    }

    /// Assembles the final [`History`].
    pub fn into_history(self) -> History {
        let mut history = History::new();
        for (key, value) in self.initial.into_inner() {
            history.set_initial(key, value);
        }
        for record in self.finished.into_inner() {
            history.push(record);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{check_serializable, parse_tag};

    #[test]
    fn traces_assemble_into_a_checkable_history() {
        let recorder = HistoryRecorder::new();
        recorder.set_initial(1, b"seed".to_vec());

        let mut writer = TxnTrace::new(10);
        assert!(writer.is_empty());
        writer.observe(1, Some(b"seed".to_vec()));
        let written = writer.next_write(1, b"x");
        assert_eq!(parse_tag(&written).unwrap().txn, 10);
        assert_eq!(writer.len(), 2);
        recorder.finish_committed(writer, 10);

        let mut reader = TxnTrace::new(11);
        reader.observe(1, Some(written));
        recorder.finish_committed(reader, 11);

        let mut loser = TxnTrace::new(12);
        loser.next_write(1, b"never committed");
        recorder.finish_aborted(loser);

        assert_eq!(recorder.len(), 3);
        let history = recorder.into_history();
        let report = check_serializable(&history).unwrap();
        assert_eq!(report.committed, 2);
        assert_eq!(report.aborted, 1);
    }

    #[test]
    fn commit_sequence_is_strictly_increasing_across_threads() {
        let recorder = std::sync::Arc::new(HistoryRecorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| recorder.next_commit_seq())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "commit sequence numbers must be unique");
    }

    #[test]
    fn distinct_writes_of_one_transaction_get_distinct_tags() {
        let mut trace = TxnTrace::new(5);
        let a = trace.next_write(1, b"");
        let b = trace.next_write(1, b"");
        assert_ne!(a, b);
        assert_eq!(parse_tag(&a).unwrap().seq, 0);
        assert_eq!(parse_tag(&b).unwrap().seq, 1);
    }
}
