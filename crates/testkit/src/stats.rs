//! Distributional checks used by the obliviousness tests.
//!
//! The security argument of §9 says the adversary's view of a run is a
//! sequence of uniformly random paths.  Tests cannot prove uniformity, but
//! they can reject gross violations: a hot-key workload whose trace piles up
//! on one subtree, or a cached-stash implementation that skews away from the
//! last evicted path (the Figure 6 failure mode).  This module provides a
//! chi-square goodness-of-fit statistic against the uniform distribution,
//! an approximate critical value so tests do not need lookup tables, and a
//! total-variation distance for comparing two traces against each other.

/// Pearson's chi-square statistic of `observed` against a uniform
/// distribution over the same number of bins.
///
/// Returns 0.0 when the histogram is empty or has a single bin.
pub fn chi_square_uniform(observed: &[u64]) -> f64 {
    if observed.len() < 2 {
        return 0.0;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let expected = total as f64 / observed.len() as f64;
    observed
        .iter()
        .map(|&count| {
            let diff = count as f64 - expected;
            diff * diff / expected
        })
        .sum()
}

/// Approximate upper critical value of the chi-square distribution with
/// `dof` degrees of freedom at the given right-tail probability.
///
/// Uses the Wilson–Hilferty cube-root normal approximation, which is
/// accurate to a few percent for `dof >= 3` — plenty for a test oracle that
/// only needs to reject gross non-uniformity.
pub fn chi_square_critical(dof: usize, tail: f64) -> f64 {
    let dof = dof.max(1) as f64;
    let z = normal_quantile(1.0 - tail);
    let term = 1.0 - 2.0 / (9.0 * dof) + z * (2.0 / (9.0 * dof)).sqrt();
    dof * term * term * term
}

/// Returns `true` if `observed` is consistent with a uniform distribution at
/// a very conservative significance level (rejecting only when the statistic
/// exceeds the 99.99th percentile).
///
/// The level is deliberately loose: these are correctness tests that must
/// not flake on ordinary sampling noise, while still failing loudly for the
/// systematic skews a broken implementation produces (which typically push
/// the statistic orders of magnitude past the critical value).
pub fn is_plausibly_uniform(observed: &[u64]) -> bool {
    if observed.len() < 2 {
        return true;
    }
    let statistic = chi_square_uniform(observed);
    statistic <= chi_square_critical(observed.len() - 1, 1e-4)
}

/// Total-variation distance between two histograms (0.0 = identical
/// distributions, 1.0 = disjoint support).
pub fn total_variation_distance(a: &[u64], b: &[u64]) -> f64 {
    let bins = a.len().max(b.len());
    if bins == 0 {
        return 0.0;
    }
    let total_a: u64 = a.iter().sum();
    let total_b: u64 = b.iter().sum();
    if total_a == 0 || total_b == 0 {
        return if total_a == total_b { 0.0 } else { 1.0 };
    }
    let mut distance = 0.0;
    for i in 0..bins {
        let pa = a.get(i).copied().unwrap_or(0) as f64 / total_a as f64;
        let pb = b.get(i).copied().unwrap_or(0) as f64 / total_b as f64;
        distance += (pa - pb).abs();
    }
    distance / 2.0
}

/// Standard normal quantile (inverse CDF) via the Beasley–Springer–Moro
/// rational approximation.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        let numerator = y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0]);
        let denominator = (((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0;
        numerator / denominator
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let r = (-r.ln()).ln();
        let mut x = C[0];
        let mut power = 1.0;
        for coefficient in &C[1..] {
            power *= r;
            x += coefficient * power;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obladi_common::rng::DetRng;

    #[test]
    fn uniform_samples_pass_the_uniformity_check() {
        let mut rng = DetRng::new(99);
        let mut counts = vec![0u64; 64];
        for _ in 0..64 * 200 {
            counts[rng.below(64) as usize] += 1;
        }
        assert!(is_plausibly_uniform(&counts));
    }

    #[test]
    fn heavily_skewed_samples_fail_the_uniformity_check() {
        let mut counts = vec![10u64; 64];
        counts[7] = 10_000;
        assert!(!is_plausibly_uniform(&counts));
    }

    #[test]
    fn chi_square_of_exactly_uniform_histogram_is_zero() {
        let counts = vec![50u64; 16];
        assert_eq!(chi_square_uniform(&counts), 0.0);
        assert!(is_plausibly_uniform(&counts));
    }

    #[test]
    fn degenerate_histograms_are_handled() {
        assert_eq!(chi_square_uniform(&[]), 0.0);
        assert_eq!(chi_square_uniform(&[42]), 0.0);
        assert_eq!(chi_square_uniform(&[0, 0, 0]), 0.0);
        assert!(is_plausibly_uniform(&[]));
        assert!(is_plausibly_uniform(&[0, 0]));
    }

    #[test]
    fn critical_values_are_in_a_sane_range() {
        // Known reference points: chi2(0.999, 10) ~ 29.6, chi2(0.999, 100) ~ 149.4.
        let c10 = chi_square_critical(10, 1e-3);
        assert!((25.0..35.0).contains(&c10), "c10 = {c10}");
        let c100 = chi_square_critical(100, 1e-3);
        assert!((140.0..160.0).contains(&c100), "c100 = {c100}");
        // Tighter tails give larger critical values.
        assert!(chi_square_critical(10, 1e-4) > c10);
    }

    #[test]
    fn total_variation_distance_properties() {
        let a = vec![10u64, 10, 10, 10];
        assert_eq!(total_variation_distance(&a, &a), 0.0);
        let disjoint_left = vec![20u64, 0, 0, 0];
        let disjoint_right = vec![0u64, 0, 0, 20];
        let distance = total_variation_distance(&disjoint_left, &disjoint_right);
        assert!((distance - 1.0).abs() < 1e-9);
        // Similar distributions are close.
        let b = vec![11u64, 9, 10, 10];
        assert!(total_variation_distance(&a, &b) < 0.05);
        // Degenerate inputs.
        assert_eq!(total_variation_distance(&[], &[]), 0.0);
        assert_eq!(total_variation_distance(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(total_variation_distance(&[5], &[0]), 1.0);
    }
}
