//! Transaction histories and a black-box serializability oracle.
//!
//! The integration tests in this repository run concurrent workloads against
//! the Obladi proxy (and against the NoPriv / 2PL baselines) and need a way
//! to decide, from the *observed* reads and writes alone, whether the
//! execution was serializable.  This module implements the standard
//! direct-serialization-graph (DSG) construction of Adya: every committed
//! transaction is a node, and edges record write-read, write-write and
//! read-write (anti-) dependencies.  The history is serializable iff the
//! graph is acyclic; the topological order is then a witness serial order.
//!
//! The oracle requires two things from the harness that records the history:
//!
//! * **Unique written values.**  Every write must install a value that no
//!   other write installs, so a read can be attributed to exactly one
//!   writer.  [`tag_value`] produces such values (and leaves room for an
//!   application payload).
//! * **A per-key version order.**  The checker orders the committed writes
//!   of each key by the transactions' `commit_ts`.  For the MVTSO-based
//!   engines the transaction timestamp is the serialization order, so the
//!   recorded transaction id is the right value; for the 2PL baseline the
//!   harness records a global commit sequence number instead.
//!
//! In addition to the cycle check the oracle reports anomalies that are
//! violations on their own: committed transactions that observed a value
//! written by an aborted transaction (the cascading-abort guarantee of
//! §6.1), reads of values no writer ever produced, and non-repeatable reads
//! inside a single transaction.

use obladi_common::types::{Key, TxnId, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifies a write: the transaction that performed it and the position of
/// the write among that transaction's operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteTag {
    /// Writer transaction id.
    pub txn: TxnId,
    /// Sequence number of the write within the transaction.
    pub seq: u32,
}

const TAG_MAGIC: [u8; 4] = *b"OTKv";

/// Encodes a unique value for `(txn, seq)` with an optional payload suffix.
///
/// The encoding is stable and self-describing so [`parse_tag`] can recover
/// the writer from any value observed by a later read.
pub fn tag_value(txn: TxnId, seq: u32, payload: &[u8]) -> Value {
    let mut value = Vec::with_capacity(16 + payload.len());
    value.extend_from_slice(&TAG_MAGIC);
    value.extend_from_slice(&txn.to_le_bytes());
    value.extend_from_slice(&seq.to_le_bytes());
    value.extend_from_slice(payload);
    value
}

/// Recovers the [`WriteTag`] from a value produced by [`tag_value`].
///
/// Returns `None` for values that were not produced by the tagging helper
/// (for example, initial values loaded outside the recorded phase).
pub fn parse_tag(value: &[u8]) -> Option<WriteTag> {
    if value.len() < 16 || value[..4] != TAG_MAGIC {
        return None;
    }
    let mut txn = [0u8; 8];
    txn.copy_from_slice(&value[4..12]);
    let mut seq = [0u8; 4];
    seq.copy_from_slice(&value[12..16]);
    Some(WriteTag {
        txn: TxnId::from_le_bytes(txn),
        seq: u32::from_le_bytes(seq),
    })
}

/// One operation observed by the recording harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryOp {
    /// A read of `key` that observed `observed` (`None` = key absent).
    Read {
        /// Key read.
        key: Key,
        /// Value the transaction saw.
        observed: Option<Value>,
    },
    /// A write of `value` to `key`.
    Write {
        /// Key written.
        key: Key,
        /// Value installed.
        value: Value,
    },
}

/// The recorded footprint and outcome of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Transaction identifier (unique within the history).
    pub id: TxnId,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Position of the transaction in the engine's serialization order.
    ///
    /// Must be present (and unique) for every committed transaction that
    /// performed a write; the checker uses it as the per-key version order.
    pub commit_ts: Option<u64>,
    /// The operations, in program order.
    pub ops: Vec<HistoryOp>,
}

impl TxnRecord {
    /// Creates an empty record for transaction `id`.
    pub fn new(id: TxnId) -> Self {
        TxnRecord {
            id,
            committed: false,
            commit_ts: None,
            ops: Vec::new(),
        }
    }

    /// Records a read.
    pub fn read(&mut self, key: Key, observed: Option<Value>) {
        self.ops.push(HistoryOp::Read { key, observed });
    }

    /// Records a write.
    pub fn write(&mut self, key: Key, value: Value) {
        self.ops.push(HistoryOp::Write { key, value });
    }

    /// Marks the transaction committed with the given serialization position.
    pub fn commit(&mut self, commit_ts: u64) {
        self.committed = true;
        self.commit_ts = Some(commit_ts);
    }

    /// Marks the transaction aborted.
    pub fn abort(&mut self) {
        self.committed = false;
        self.commit_ts = None;
    }

    fn write_keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.ops.iter().filter_map(|op| match op {
            HistoryOp::Write { key, .. } => Some(*key),
            HistoryOp::Read { .. } => None,
        })
    }
}

/// A complete recorded history: initial database contents plus one record
/// per transaction the harness ran.
#[derive(Debug, Clone, Default)]
pub struct History {
    initial: HashMap<Key, Value>,
    txns: Vec<TxnRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Declares the value `key` held before the recorded phase started.
    pub fn set_initial(&mut self, key: Key, value: Value) {
        self.initial.insert(key, value);
    }

    /// Adds a finished transaction record.
    pub fn push(&mut self, record: TxnRecord) {
        self.txns.push(record);
    }

    /// Merges another history's records (and initial values) into this one
    /// — used to combine per-thread histories after a concurrent drive.
    pub fn extend(&mut self, other: History) {
        self.initial.extend(other.initial);
        self.txns.extend(other.txns);
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the history contains no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// The recorded transactions.
    pub fn transactions(&self) -> &[TxnRecord] {
        &self.txns
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> usize {
        self.txns.iter().filter(|t| t.committed).count()
    }
}

/// The source of the value a read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VersionId {
    /// The initial database state.
    Initial,
    /// A committed transaction in the history.
    Txn(TxnId),
}

/// Why a history failed the serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A committed transaction observed a value written by an aborted
    /// transaction (dirty read that should have cascaded, §6.1).
    DirtyReadOfAborted {
        /// The committed reader.
        reader: TxnId,
        /// The aborted writer whose value it saw.
        writer: TxnId,
        /// Key on which the anomaly occurred.
        key: Key,
    },
    /// A committed transaction observed a value that no recorded write and
    /// no initial value produced.
    ReadFromUnknownWriter {
        /// The reader.
        reader: TxnId,
        /// Key on which the anomaly occurred.
        key: Key,
    },
    /// Two reads of the same key inside one transaction observed different
    /// values, and the transaction wrote nothing in between.
    NonRepeatableRead {
        /// The reader.
        reader: TxnId,
        /// Key on which the anomaly occurred.
        key: Key,
    },
    /// A committed writing transaction is missing its `commit_ts`.
    MissingCommitTimestamp {
        /// The offending transaction.
        txn: TxnId,
    },
    /// Two committed transactions share the same `commit_ts`.
    DuplicateCommitTimestamp {
        /// The shared timestamp.
        commit_ts: u64,
    },
    /// The direct serialization graph contains a cycle.
    CycleDetected {
        /// Transactions on the cycle, in edge order.
        cycle: Vec<TxnId>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DirtyReadOfAborted {
                reader,
                writer,
                key,
            } => write!(
                f,
                "committed txn {reader} read key {key} from aborted txn {writer}"
            ),
            Violation::ReadFromUnknownWriter { reader, key } => write!(
                f,
                "txn {reader} read a value of key {key} that no writer produced"
            ),
            Violation::NonRepeatableRead { reader, key } => {
                write!(f, "txn {reader} observed two versions of key {key}")
            }
            Violation::MissingCommitTimestamp { txn } => {
                write!(f, "committed writer {txn} has no commit timestamp")
            }
            Violation::DuplicateCommitTimestamp { commit_ts } => {
                write!(f, "two committed transactions share commit_ts {commit_ts}")
            }
            Violation::CycleDetected { cycle } => {
                write!(f, "serialization graph cycle: {cycle:?}")
            }
        }
    }
}

/// Summary of a successful serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityReport {
    /// Committed transactions examined.
    pub committed: usize,
    /// Aborted transactions ignored (after checking no one read from them).
    pub aborted: usize,
    /// Number of dependency edges in the serialization graph.
    pub edges: usize,
    /// A witness serial order (topological order of the graph).
    pub serial_order: Vec<TxnId>,
}

/// Checks that the committed transactions of `history` form a serializable
/// execution and that no committed transaction depends on an aborted one.
pub fn check_serializable(history: &History) -> Result<SerializabilityReport, Violation> {
    let committed: Vec<&TxnRecord> = history.txns.iter().filter(|t| t.committed).collect();
    let aborted: HashSet<TxnId> = history
        .txns
        .iter()
        .filter(|t| !t.committed)
        .map(|t| t.id)
        .collect();

    // Attribute every written value to its writer.
    let mut value_writer: HashMap<(Key, Value), TxnId> = HashMap::new();
    for txn in &history.txns {
        for op in &txn.ops {
            if let HistoryOp::Write { key, value } = op {
                value_writer.insert((*key, value.clone()), txn.id);
            }
        }
    }

    // Version order per key: initial value first, then committed writers by
    // commit_ts.
    let mut commit_ts: HashMap<TxnId, u64> = HashMap::new();
    let mut seen_ts: HashSet<u64> = HashSet::new();
    for txn in &committed {
        let writes: Vec<Key> = txn.write_keys().collect();
        if writes.is_empty() {
            continue;
        }
        let ts = txn
            .commit_ts
            .ok_or(Violation::MissingCommitTimestamp { txn: txn.id })?;
        if !seen_ts.insert(ts) {
            return Err(Violation::DuplicateCommitTimestamp { commit_ts: ts });
        }
        commit_ts.insert(txn.id, ts);
    }

    let mut versions: HashMap<Key, Vec<VersionId>> = HashMap::new();
    for key in history.initial.keys() {
        versions.entry(*key).or_default().push(VersionId::Initial);
    }
    let mut writers_by_key: HashMap<Key, Vec<(u64, TxnId)>> = HashMap::new();
    for txn in &committed {
        for key in txn.write_keys() {
            let ts = commit_ts[&txn.id];
            let entry = writers_by_key.entry(key).or_default();
            if entry.last().map(|(_, id)| *id) != Some(txn.id) {
                entry.push((ts, txn.id));
            }
        }
    }
    for (key, mut writers) in writers_by_key {
        writers.sort_unstable();
        let chain = versions
            .entry(key)
            .or_insert_with(|| vec![VersionId::Initial]);
        chain.extend(writers.into_iter().map(|(_, id)| VersionId::Txn(id)));
    }

    // Resolve which version each committed read observed.
    let resolve =
        |key: Key, observed: &Option<Value>, reader: TxnId| -> Result<VersionId, Violation> {
            match observed {
                None => Ok(VersionId::Initial),
                Some(value) => {
                    if let Some(writer) = value_writer.get(&(key, value.clone())) {
                        if aborted.contains(writer) {
                            return Err(Violation::DirtyReadOfAborted {
                                reader,
                                writer: *writer,
                                key,
                            });
                        }
                        Ok(VersionId::Txn(*writer))
                    } else if history.initial.get(&key) == Some(value) {
                        Ok(VersionId::Initial)
                    } else {
                        Err(Violation::ReadFromUnknownWriter { reader, key })
                    }
                }
            }
        };

    // Graph: adjacency over committed transaction ids.
    let ids: Vec<TxnId> = committed.iter().map(|t| t.id).collect();
    let index: HashMap<TxnId, usize> = ids
        .iter()
        .copied()
        .enumerate()
        .map(|(i, id)| (id, i))
        .collect();
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); ids.len()];
    let mut edges = 0usize;
    let mut add_edge = |adj: &mut Vec<HashSet<usize>>, from: VersionId, to: VersionId| {
        if let (VersionId::Txn(a), VersionId::Txn(b)) = (from, to) {
            if a != b && adj[index[&a]].insert(index[&b]) {
                edges += 1;
            }
        }
    };

    // ww edges: consecutive versions of each key.
    for chain in versions.values() {
        for pair in chain.windows(2) {
            add_edge(&mut adj, pair[0], pair[1]);
        }
    }

    // wr and rw edges from committed reads.
    for txn in &committed {
        let mut last_seen: HashMap<Key, Option<Value>> = HashMap::new();
        let mut self_wrote: HashSet<Key> = HashSet::new();
        for op in &txn.ops {
            match op {
                HistoryOp::Write { key, .. } => {
                    self_wrote.insert(*key);
                }
                HistoryOp::Read { key, observed } => {
                    // Repeatable-read check (only meaningful before the
                    // transaction overwrites the key itself).
                    if !self_wrote.contains(key) {
                        if let Some(previous) = last_seen.get(key) {
                            if previous != observed {
                                return Err(Violation::NonRepeatableRead {
                                    reader: txn.id,
                                    key: *key,
                                });
                            }
                        }
                        last_seen.insert(*key, observed.clone());
                    }
                    let source = resolve(*key, observed, txn.id)?;
                    // Reads of the transaction's own writes create no edge.
                    if source == VersionId::Txn(txn.id) {
                        continue;
                    }
                    // wr edge: writer happens before reader.
                    add_edge(&mut adj, source, VersionId::Txn(txn.id));
                    // rw edge: reader happens before the writer of the next
                    // version of the key.
                    if let Some(chain) = versions.get(key) {
                        if let Some(pos) = chain.iter().position(|v| *v == source) {
                            for next in chain.iter().skip(pos + 1) {
                                if *next != VersionId::Txn(txn.id) {
                                    add_edge(&mut adj, VersionId::Txn(txn.id), *next);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection + topological witness (iterative DFS, three colours).
    let n = ids.len();
    let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if colour[start] != 0 {
            continue;
        }
        // Stack of (node, iterator position over its successors).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succ: Vec<usize> = adj[start].iter().copied().collect();
        colour[start] = 1;
        stack.push((start, succ, 0));
        while let Some((node, succ, cursor)) = stack.last_mut() {
            if *cursor < succ.len() {
                let next = succ[*cursor];
                *cursor += 1;
                match colour[next] {
                    0 => {
                        colour[next] = 1;
                        let next_succ: Vec<usize> = adj[next].iter().copied().collect();
                        stack.push((next, next_succ, 0));
                    }
                    1 => {
                        // Grey successor: found a cycle.  Reconstruct it from
                        // the grey stack.
                        let mut cycle: Vec<TxnId> = stack.iter().map(|(i, _, _)| ids[*i]).collect();
                        if let Some(pos) = cycle.iter().position(|id| *id == ids[next]) {
                            cycle.drain(..pos);
                        }
                        return Err(Violation::CycleDetected { cycle });
                    }
                    _ => {}
                }
            } else {
                colour[*node] = 2;
                order.push(*node);
                stack.pop();
            }
        }
    }
    order.reverse();
    let serial_order: Vec<TxnId> = order.into_iter().map(|i| ids[i]).collect();

    Ok(SerializabilityReport {
        committed: committed.len(),
        aborted: aborted.len(),
        edges,
        serial_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(id: TxnId, ts: u64, ops: Vec<HistoryOp>) -> TxnRecord {
        TxnRecord {
            id,
            committed: true,
            commit_ts: Some(ts),
            ops,
        }
    }

    #[test]
    fn tag_roundtrip_and_rejects_foreign_values() {
        let value = tag_value(42, 7, b"payload");
        assert_eq!(parse_tag(&value), Some(WriteTag { txn: 42, seq: 7 }));
        assert_eq!(parse_tag(b"unrelated"), None);
        assert_eq!(parse_tag(&[]), None);
    }

    #[test]
    fn serial_history_is_accepted() {
        let mut history = History::new();
        history.set_initial(1, b"init".to_vec());
        history.push(committed(
            10,
            10,
            vec![
                HistoryOp::Read {
                    key: 1,
                    observed: Some(b"init".to_vec()),
                },
                HistoryOp::Write {
                    key: 1,
                    value: tag_value(10, 0, b""),
                },
            ],
        ));
        history.push(committed(
            11,
            11,
            vec![HistoryOp::Read {
                key: 1,
                observed: Some(tag_value(10, 0, b"")),
            }],
        ));
        let report = check_serializable(&history).unwrap();
        assert_eq!(report.committed, 2);
        assert_eq!(report.serial_order, vec![10, 11]);
    }

    #[test]
    fn lost_update_cycle_is_rejected() {
        // Both transactions read the initial value and both commit a write:
        // each must precede the other (rw then ww), which is a cycle.
        let mut history = History::new();
        history.set_initial(1, b"init".to_vec());
        for (id, ts) in [(1u64, 1u64), (2, 2)] {
            history.push(committed(
                id,
                ts,
                vec![
                    HistoryOp::Read {
                        key: 1,
                        observed: Some(b"init".to_vec()),
                    },
                    HistoryOp::Write {
                        key: 1,
                        value: tag_value(id, 0, b""),
                    },
                ],
            ));
        }
        let err = check_serializable(&history).unwrap_err();
        assert!(matches!(err, Violation::CycleDetected { .. }), "{err}");
    }

    #[test]
    fn write_skew_cycle_is_rejected() {
        // T1 reads y then writes x; T2 reads x then writes y; both see the
        // initial values.  The two rw anti-dependencies form a cycle.
        let mut history = History::new();
        history.set_initial(1, b"x0".to_vec());
        history.set_initial(2, b"y0".to_vec());
        history.push(committed(
            1,
            1,
            vec![
                HistoryOp::Read {
                    key: 2,
                    observed: Some(b"y0".to_vec()),
                },
                HistoryOp::Write {
                    key: 1,
                    value: tag_value(1, 0, b""),
                },
            ],
        ));
        history.push(committed(
            2,
            2,
            vec![
                HistoryOp::Read {
                    key: 1,
                    observed: Some(b"x0".to_vec()),
                },
                HistoryOp::Write {
                    key: 2,
                    value: tag_value(2, 0, b""),
                },
            ],
        ));
        let err = check_serializable(&history).unwrap_err();
        assert!(matches!(err, Violation::CycleDetected { .. }), "{err}");
    }

    #[test]
    fn dirty_read_of_aborted_writer_is_rejected() {
        let mut history = History::new();
        let mut aborted = TxnRecord::new(7);
        aborted.write(3, tag_value(7, 0, b""));
        aborted.abort();
        history.push(aborted);
        history.push(committed(
            8,
            8,
            vec![HistoryOp::Read {
                key: 3,
                observed: Some(tag_value(7, 0, b"")),
            }],
        ));
        let err = check_serializable(&history).unwrap_err();
        assert_eq!(
            err,
            Violation::DirtyReadOfAborted {
                reader: 8,
                writer: 7,
                key: 3
            }
        );
    }

    #[test]
    fn unknown_value_and_missing_timestamp_are_rejected() {
        let mut history = History::new();
        history.push(committed(
            1,
            1,
            vec![HistoryOp::Read {
                key: 9,
                observed: Some(b"from nowhere".to_vec()),
            }],
        ));
        assert_eq!(
            check_serializable(&history).unwrap_err(),
            Violation::ReadFromUnknownWriter { reader: 1, key: 9 }
        );

        let mut history = History::new();
        let mut txn = TxnRecord::new(2);
        txn.write(1, tag_value(2, 0, b""));
        txn.committed = true; // but no commit_ts
        history.push(txn);
        assert_eq!(
            check_serializable(&history).unwrap_err(),
            Violation::MissingCommitTimestamp { txn: 2 }
        );
    }

    #[test]
    fn non_repeatable_read_is_rejected() {
        let mut history = History::new();
        history.set_initial(4, b"a".to_vec());
        history.push(committed(
            1,
            1,
            vec![HistoryOp::Write {
                key: 4,
                value: tag_value(1, 0, b""),
            }],
        ));
        history.push(committed(
            2,
            2,
            vec![
                HistoryOp::Read {
                    key: 4,
                    observed: Some(b"a".to_vec()),
                },
                HistoryOp::Read {
                    key: 4,
                    observed: Some(tag_value(1, 0, b"")),
                },
            ],
        ));
        assert_eq!(
            check_serializable(&history).unwrap_err(),
            Violation::NonRepeatableRead { reader: 2, key: 4 }
        );
    }

    #[test]
    fn reading_own_write_creates_no_edge_and_is_accepted() {
        let mut history = History::new();
        history.push(committed(
            1,
            1,
            vec![
                HistoryOp::Write {
                    key: 1,
                    value: tag_value(1, 0, b""),
                },
                HistoryOp::Read {
                    key: 1,
                    observed: Some(tag_value(1, 0, b"")),
                },
            ],
        ));
        let report = check_serializable(&history).unwrap();
        assert_eq!(report.edges, 0);
    }

    #[test]
    fn long_committed_chain_is_ordered_by_timestamp() {
        let mut history = History::new();
        history.set_initial(1, b"v0".to_vec());
        // Writers committing in timestamp order, each reading the previous
        // value — the witness order must follow the chain.
        let mut previous = b"v0".to_vec();
        for id in 1..=20u64 {
            let value = tag_value(id, 0, b"");
            history.push(committed(
                id,
                id,
                vec![
                    HistoryOp::Read {
                        key: 1,
                        observed: Some(previous.clone()),
                    },
                    HistoryOp::Write {
                        key: 1,
                        value: value.clone(),
                    },
                ],
            ));
            previous = value;
        }
        let report = check_serializable(&history).unwrap();
        assert_eq!(report.serial_order, (1..=20u64).collect::<Vec<_>>());
        assert!(report.edges >= 19);
    }

    #[test]
    fn duplicate_commit_timestamps_are_rejected() {
        let mut history = History::new();
        for id in [1u64, 2] {
            history.push(committed(
                id,
                5,
                vec![HistoryOp::Write {
                    key: id,
                    value: tag_value(id, 0, b""),
                }],
            ));
        }
        assert_eq!(
            check_serializable(&history).unwrap_err(),
            Violation::DuplicateCommitTimestamp { commit_ts: 5 }
        );
    }
}
